//! End-to-end observability tests: a traced suite run produces a span
//! tree and a run manifest, and a live loopback server reports per-op
//! request-latency histograms through the extended `stats` protocol —
//! the library-level counterparts of `servet --trace suite` and
//! `servet query stats`.

use servet::core::{manifest_path, RunManifest, MANIFEST_VERSION};
use servet::prelude::*;
use servet::registry::{serve, AdviceQuery, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn traced_report() -> (servet::core::SuiteReport, SuiteConfig) {
    let mut platform = SimPlatform::tiny_cluster().with_noise(0.003);
    let config = SuiteConfig::small(256 * 1024);
    let report = run_full_suite(&mut platform, &config);
    (report, config)
}

/// The suite's instrumentation end to end: every stage span appears in
/// the global log, nested correctly, and the rendered tree names each
/// phase with a duration.
#[test]
fn suite_run_produces_a_phase_span_tree() {
    let (_report, _config) = traced_report();
    let spans = servet::obs::spans_snapshot();
    // Other tests in this binary run suites concurrently, so the global
    // log can hold several runs' records. Pick one completed `suite`
    // span and require each stage to appear *inside its interval* — a
    // run's own stages always do.
    let suite = spans
        .iter()
        .find(|s| s.name == "suite")
        .expect("suite span missing");
    let within = |name: &str| {
        spans.iter().find(|s| {
            s.name == name
                && s.depth == suite.depth + 1
                && s.start_ns >= suite.start_ns
                && s.start_ns + s.duration_ns <= suite.start_ns + suite.duration_ns
        })
    };
    for stage in [
        "suite.cache_size",
        "suite.shared_caches",
        "suite.memory_overhead",
        "suite.communication",
    ] {
        assert!(within(stage).is_some(), "{stage} not nested under suite");
    }
    // The sweep nests one level deeper, inside the cache-size stage.
    let cache_stage = within("suite.cache_size").unwrap();
    assert!(
        spans.iter().any(|s| s.name == "mcalibrator.sweep"
            && s.depth == cache_stage.depth + 1
            && s.start_ns >= cache_stage.start_ns),
        "mcalibrator.sweep not nested under suite.cache_size"
    );

    let tree = servet::obs::render_span_tree(&spans);
    assert!(tree.contains("suite.cache_size"), "{tree}");
    assert!(tree.lines().count() >= 5, "{tree}");

    // Counters moved too.
    assert!(servet::obs::counter("mcalibrator.samples").get() > 0);
    assert!(servet::obs::counter("cache_detect.candidates_scored").get() > 0);
}

/// The run manifest: captured from a report, saved next to the profile,
/// loaded back identical, with the measurement spans inside.
#[test]
fn manifest_saves_alongside_the_profile() {
    let (report, config) = traced_report();
    let dir = std::env::temp_dir().join(format!(
        "servet-it-manifest-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let profile_path = dir.join("tiny.json");
    report.profile.save(&profile_path).unwrap();

    let manifest = RunManifest::capture(&report, &config);
    let mpath = manifest_path(&profile_path);
    assert_eq!(mpath, dir.join("tiny.manifest.json"));
    manifest.save(&mpath).unwrap();

    let loaded = RunManifest::load(&mpath).unwrap();
    assert_eq!(loaded, manifest);
    assert_eq!(loaded.manifest_version, MANIFEST_VERSION);
    assert_eq!(loaded.machine, report.profile.machine);
    assert_eq!(loaded.config, config);
    assert!(loaded.spans.iter().any(|s| s.name == "suite"));
    assert!(loaded.counters.contains_key("mcalibrator.samples"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The extended stats protocol over a live loopback server: after real
/// traffic, `stats` reports one latency digest per exercised op, and the
/// digests are internally consistent.
#[test]
fn served_stats_reports_per_op_latency_histograms() {
    let dir = std::env::temp_dir().join(format!(
        "servet-it-opstats-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(Registry::open(&dir).unwrap());
    let server = serve(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let (report, _config) = traced_report();
    let mut client = RegistryClient::connect(server.addr()).unwrap();
    client.put(&report.profile, Some("tiny")).unwrap();
    client.get_profile("tiny").unwrap();
    for _ in 0..3 {
        client
            .advise(
                "tiny",
                &AdviceQuery::Tile {
                    level: 1,
                    elem_size: 8,
                    matrices: 3,
                    occupancy: 0.75,
                },
            )
            .unwrap();
    }
    let stats = client.stats().unwrap();

    let op = |name: &str| {
        stats
            .ops
            .iter()
            .find(|o| o.op == name)
            .unwrap_or_else(|| panic!("no latency digest for {name}: {:?}", stats.ops))
    };
    assert_eq!(op("put").count, 1);
    assert_eq!(op("get").count, 1);
    assert_eq!(op("advise").count, 3);
    for name in ["put", "get", "advise"] {
        let o = op(name);
        assert!(o.min_ns <= o.max_ns, "{name}: {o:?}");
        assert!(
            o.p50_ns <= o.p99_ns && o.p99_ns <= o.max_ns,
            "{name}: {o:?}"
        );
        assert!(o.total_ns >= o.max_ns, "{name}: {o:?}");
        assert_eq!(
            o.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
            o.count,
            "{name}: bucket counts must sum to the sample count"
        );
    }
    // The stats request itself records only after its response is built,
    // so the wire copy lacks a `stats` digest — but the in-process view
    // taken afterwards must have one.
    assert!(stats.ops.iter().all(|o| o.op != "stats"));
    let direct = registry.stats();
    assert!(direct.ops.iter().any(|o| o.op == "stats"));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
