//! End-to-end serving tests: a live loopback `servet-registry` server,
//! exercised the way autotuned applications would use it — store a
//! measured profile once, then ask for advice from many concurrent
//! clients (ROADMAP north star: profiles served, not re-parsed).

use servet::prelude::*;
use servet::registry::{profile_digest, serve, AdviceOutcome, AdviceQuery, Response, ServerConfig};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn measured_tiny_profile() -> MachineProfile {
    let mut platform = SimPlatform::tiny_cluster().with_noise(0.003);
    run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024)).profile
}

fn start_server(tag: &str) -> (Arc<Registry>, servet::registry::ServerHandle, SocketAddr) {
    start_server_with(
        tag,
        ServerConfig {
            read_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
}

fn start_server_with(
    tag: &str,
    config: ServerConfig,
) -> (Arc<Registry>, servet::registry::ServerHandle, SocketAddr) {
    let dir = std::env::temp_dir().join(format!(
        "servet-it-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(Registry::open(&dir).unwrap());
    let server = serve(Arc::clone(&registry), "127.0.0.1:0", config).unwrap();
    let addr = server.addr();
    (registry, server, addr)
}

/// Count live threads of this process whose name starts with `prefix`
/// (the kernel truncates names to 15 bytes, so keep prefixes short).
#[cfg(target_os = "linux")]
fn threads_with_prefix(prefix: &str) -> usize {
    let mut count = 0;
    if let Ok(entries) = std::fs::read_dir("/proc/self/task") {
        for entry in entries.flatten() {
            if let Ok(name) = std::fs::read_to_string(entry.path().join("comm")) {
                if name.trim_end().starts_with(prefix) {
                    count += 1;
                }
            }
        }
    }
    count
}

/// The acceptance smoke test: a simulated `tiny` profile served over
/// loopback answers `advise tile` and `advise bcast` *identically* to the
/// in-process CLI path.
#[test]
fn loopback_smoke_matches_in_process_advice() {
    let (_registry, server, addr) = start_server("smoke");
    let profile = measured_tiny_profile();

    let mut client = RegistryClient::connect(addr).unwrap();
    let digest = client.put(&profile, Some("tiny")).unwrap();
    assert_eq!(digest, profile_digest(&profile));

    // The profile itself round-trips the wire bit-for-bit.
    let (got_digest, got_profile) = client.get_profile("tiny").unwrap();
    assert_eq!(got_digest, digest);
    assert_eq!(got_profile, profile);

    let tile_query = AdviceQuery::Tile {
        level: 2,
        elem_size: 8,
        matrices: 3,
        occupancy: 0.75,
    };
    let bcast_query = AdviceQuery::Bcast {
        ranks: 0,
        bytes: 8 * 1024,
    };
    for query in [tile_query, bcast_query] {
        let in_process = compute_advice(&profile, &query).unwrap();
        let (_, _, over_the_wire) = client.advise("tiny", &query).unwrap();
        assert_eq!(
            over_the_wire, in_process,
            "wire and in-process advice must be identical for {query:?}"
        );
    }
    server.shutdown();
}

/// The second identical advise is served from the memoization cache,
/// observable through the exposed hit counter and the `cached` flag.
#[test]
fn repeated_advise_hits_the_memo_cache() {
    let (registry, server, addr) = start_server("memo");
    let profile = measured_tiny_profile();

    let mut client = RegistryClient::connect(addr).unwrap();
    client.put(&profile, Some("tiny")).unwrap();

    let query = AdviceQuery::Bcast {
        ranks: 0,
        bytes: 16 * 1024,
    };
    let hits_before = client.stats().unwrap().advice_hits;

    let (_, cached_first, first) = client.advise("tiny", &query).unwrap();
    assert!(!cached_first, "first query computes");
    let (_, cached_second, second) = client.advise("tiny", &query).unwrap();
    assert!(cached_second, "second identical query must be memoized");
    assert_eq!(first, second);

    let stats = client.stats().unwrap();
    assert!(
        stats.advice_hits > hits_before,
        "advice hit counter must increase: {stats:?}"
    );
    assert_eq!(registry.stats().advice_hits, stats.advice_hits);
    server.shutdown();
}

/// ≥ 8 concurrent client threads doing mixed put/get/advise against a
/// live loopback server, all of them checking their answers.
#[test]
fn hammer_mixed_operations_from_many_threads() {
    const THREADS: usize = 10;
    const ROUNDS: usize = 12;

    let (registry, server, addr) = start_server("hammer");
    let base = measured_tiny_profile();

    // Seed one shared profile every thread queries.
    RegistryClient::connect(addr)
        .unwrap()
        .put(&base, Some("shared"))
        .unwrap();
    let shared_tile = compute_advice(
        &base,
        &AdviceQuery::Tile {
            level: 1,
            elem_size: 8,
            matrices: 3,
            occupancy: 0.75,
        },
    )
    .unwrap();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let base = &base;
            let shared_tile = &shared_tile;
            s.spawn(move || {
                let mut client = RegistryClient::connect(addr).unwrap();
                for round in 0..ROUNDS {
                    // put: a thread-distinct variant of the profile.
                    let mut mine = base.clone();
                    mine.machine = format!("tiny-{t}");
                    let my_name = format!("tiny-{t}");
                    let my_digest = client.put(&mine, Some(&my_name)).unwrap();

                    // get: both the shared alias and my own.
                    let (_, got) = client.get_profile("shared").unwrap();
                    assert_eq!(&got, base, "thread {t} round {round}");
                    let (d, got_mine) = client.get_profile(&my_name).unwrap();
                    assert_eq!(d, my_digest);
                    assert_eq!(got_mine.machine, format!("tiny-{t}"));

                    // advise: answers must match the in-process path.
                    let (_, _, outcome) = client
                        .advise(
                            "shared",
                            &AdviceQuery::Tile {
                                level: 1,
                                elem_size: 8,
                                matrices: 3,
                                occupancy: 0.75,
                            },
                        )
                        .unwrap();
                    assert_eq!(&outcome, shared_tile, "thread {t} round {round}");

                    let (_, _, bcast) = client
                        .advise(
                            &my_name,
                            &AdviceQuery::Bcast {
                                ranks: 0,
                                bytes: 4096 * (1 + t),
                            },
                        )
                        .unwrap();
                    match bcast {
                        AdviceOutcome::Bcast { predictions, .. } => {
                            assert!(!predictions.is_empty())
                        }
                        other => panic!("thread {t}: unexpected {other:?}"),
                    }

                    // An unknown key is an error, not a hang or a panic.
                    match client.get("nonesuch").unwrap() {
                        Response::Error { .. } => {}
                        other => panic!("thread {t}: unexpected {other:?}"),
                    }
                }
            });
        }
    });

    let stats = registry.stats();
    // One shared profile + one per thread.
    assert_eq!(stats.profiles, 1 + THREADS);
    // Every thread re-asked the same shared tile query each round: after
    // a thread's first round, its queries must all hit the memo cache
    // (only first-round queries can race the initial computation).
    assert!(
        stats.advice_hits >= (THREADS * (ROUNDS - 1)) as u64,
        "expected heavy memoization, got {stats:?}"
    );
    let entries = registry.list().unwrap();
    assert_eq!(entries.len(), 1 + THREADS);
    assert!(entries
        .iter()
        .any(|e| e.aliases == vec!["shared".to_string()]));
    server.shutdown();
}

/// The worker-pool acceptance bar: 64 genuinely concurrent connections
/// (all connected before any issues a request) are every one served
/// correctly while the server runs exactly `workers + 1` threads, and
/// the per-op latency digests keep flowing.
#[test]
fn hammer_64_concurrent_connections_with_bounded_pool() {
    const CLIENTS: usize = 64;
    const WORKERS: usize = 8;
    let (registry, server, addr) = start_server_with(
        "pool64",
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            workers: WORKERS,
            backlog: CLIENTS,
            thread_prefix: "hammer64".into(),
            ..ServerConfig::default()
        },
    );
    let base = measured_tiny_profile();
    RegistryClient::connect(addr)
        .unwrap()
        .put(&base, Some("shared"))
        .unwrap();

    let barrier = Arc::new(std::sync::Barrier::new(CLIENTS));
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let barrier = Arc::clone(&barrier);
            let base = &base;
            s.spawn(move || {
                let mut client = RegistryClient::connect(addr).unwrap();
                // Hold until all 64 connections are established so they
                // are genuinely concurrent, then do real work.
                barrier.wait();
                for _ in 0..3 {
                    let (_, got) = client.get_profile("shared").unwrap();
                    assert_eq!(&got, base);
                }
            });
        }

        // Sample the server's thread count while the storm is live: the
        // seed client plus all 64 have been admitted, yet the pool is
        // exactly workers + acceptor.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while registry.stats().accept.accepted < (CLIENTS + 1) as u64 {
            assert!(
                std::time::Instant::now() < deadline,
                "accept stalled: {:?}",
                registry.stats().accept
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        #[cfg(target_os = "linux")]
        assert_eq!(
            threads_with_prefix("hammer64"),
            WORKERS + 1,
            "server must not spawn per-connection threads"
        );
    });

    let stats = registry.stats();
    assert!(stats.accept.accepted >= (CLIENTS + 1) as u64);
    assert_eq!(stats.accept.rejected, 0, "backlog sized to fit: {stats:?}");
    assert!(stats.accept.queue_depth_max >= 1);
    let get_op = stats
        .ops
        .iter()
        .find(|o| o.op == "get")
        .expect("per-op latency digest for get");
    assert!(
        get_op.count >= (CLIENTS * 3) as u64,
        "expected ≥ {} gets, got {}",
        CLIENTS * 3,
        get_op.count
    );
    server.shutdown();
    #[cfg(target_os = "linux")]
    assert_eq!(threads_with_prefix("hammer64"), 0, "pool threads leaked");
}

/// Stale server sockets must not leak between tests: after shutdown the
/// port refuses further protocol exchanges.
#[test]
fn shutdown_stops_serving() {
    let (_registry, server, addr) = start_server("stop");
    let mut client = RegistryClient::connect(addr).unwrap();
    client.list().unwrap();
    server.shutdown();
    // Either the connect fails or the first call does; both prove the
    // server is gone.
    match RegistryClient::connect(addr) {
        Ok(mut c) => {
            c.set_timeout(Some(Duration::from_millis(500))).unwrap();
            assert!(c.list().is_err());
        }
        Err(_) => {}
    }
}
