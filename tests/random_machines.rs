//! Property-based end-to-end tests: the Servet benchmarks must recover
//! the ground truth of *randomly generated* machines, not just the
//! hand-built presets.

use proptest::prelude::*;
use servet::core::comm::{characterize_communication, CommConfig};
use servet::core::mem_overhead::{characterize_memory, MemOverheadConfig};
use servet::core::shared_cache::{detect_shared_caches, SharedCacheConfig};
use servet::core::SimPlatform;
use servet::net::model::{CommModel, LayerModel, ProtocolSegment};
use servet::net::topology::{ClusterTopology, Layer};
use servet::net::VirtualCluster;
use servet::sim::spec::{MachineSpec, MemResource};
use servet::sim::{Machine, KB};

/// A random partition of `0..cores` into groups of size `group`.
fn grouping(cores: usize, group: usize, shuffle_seed: u64) -> Vec<Vec<usize>> {
    // Deterministic pseudo-shuffle: rotate by the seed.
    let mut ids: Vec<usize> = (0..cores).collect();
    ids.rotate_left((shuffle_seed as usize) % cores);
    ids.chunks(group).map(|c| c.to_vec()).collect()
}

fn machine_with_l2_groups(groups: Vec<Vec<usize>>) -> MachineSpec {
    let mut spec = servet::sim::presets::tiny_smp();
    spec.name = "random_l2".into();
    spec.caches[1].sharing = groups;
    spec.caches[1].size = 128 * KB;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The shared-cache benchmark recovers arbitrary L2 pairings.
    #[test]
    fn shared_cache_recovers_random_pairings(rot in 0u64..4) {
        let groups = grouping(4, 2, rot);
        let spec = machine_with_l2_groups(groups.clone());
        let truth = spec.sharing_pairs(2);
        let machine = Machine::with_seed(spec, 1000 + rot);
        let mut platform = SimPlatform::new(machine, None).with_noise(0.003);
        let result = detect_shared_caches(
            &mut platform,
            &[8 * KB, 128 * KB],
            &SharedCacheConfig::default(),
        );
        prop_assert_eq!(&result.levels[1].sharing_pairs, &truth);
        prop_assert!(result.levels[0].sharing_pairs.is_empty());
    }

    /// The memory-overhead benchmark recovers arbitrary bus groupings.
    #[test]
    fn memory_groups_recover_random_buses(rot in 0u64..8, cap in 1.2f64..3.0) {
        let cores = 8usize;
        let mut spec = servet::sim::presets::tiny_smp();
        spec.name = "random_mem".into();
        spec.num_cores = cores;
        for c in &mut spec.caches {
            c.sharing = (0..cores).map(|x| vec![x]).collect();
        }
        let groups = grouping(cores, 2, rot);
        spec.memory.resources = groups
            .iter()
            .enumerate()
            .map(|(i, g)| MemResource {
                name: format!("bus{i}"),
                capacity_gbs: cap,
                cores: g.clone(),
            })
            .collect();
        spec.memory.core_stream_gbs = 2.0;
        let machine = Machine::with_seed(spec, 2000 + rot);
        let mut platform = SimPlatform::new(machine, None).with_noise(0.003);
        let result = characterize_memory(&mut platform, &MemOverheadConfig::default());
        // One overhead class whose groups are exactly the buses (sorted).
        prop_assert_eq!(result.num_classes(), 1);
        let mut expected: Vec<Vec<usize>> = groups
            .into_iter()
            .map(|mut g| { g.sort_unstable(); g })
            .collect();
        expected.sort();
        let mut got = result.overheads[0].groups.clone();
        got.sort();
        prop_assert_eq!(got, expected);
        // And the magnitude is the fair share of the bus.
        let bw = result.overheads[0].bandwidth_gbs;
        prop_assert!((bw - (cap / 2.0).min(2.0)).abs() < 0.1, "bw = {bw}");
    }

    /// The communication benchmark finds exactly the layers a random
    /// cluster topology exhibits, and classifies every pair correctly.
    #[test]
    fn comm_layers_recover_random_topologies(
        nodes in 1usize..3,
        procs_per_node in 1usize..3,
        rot in 0u64..4,
    ) {
        let cores_per_node = procs_per_node * 2;
        let mut proc_of: Vec<usize> = (0..cores_per_node).map(|c| c / 2).collect();
        proc_of.rotate_left((rot as usize) % cores_per_node);
        let topo = ClusterTopology {
            name: "random".into(),
            num_nodes: nodes,
            cores_per_node,
            cell_of: vec![0; cores_per_node],
            proc_of,
            l2_group_of: (0..cores_per_node).collect(),
        };
        let expected_layers = topo.layers_present(None);
        let seg = |max: usize, base: f64, per: f64| ProtocolSegment {
            max_size: max,
            base_us: base,
            per_byte_ns: per,
        };
        let model = CommModel::new(
            vec![
                (Layer::IntraProcessor, LayerModel::new(vec![seg(usize::MAX, 0.5, 0.15)])),
                (Layer::IntraNode, LayerModel::new(vec![seg(usize::MAX, 1.0, 0.3)])),
                (Layer::InterNode, LayerModel::new(vec![seg(usize::MAX, 3.0, 0.4)])),
            ],
            0.015,
        );
        let cluster = VirtualCluster::new(
            topo.clone(),
            model,
            servet::net::presets::contention_default(),
        );
        let machine = Machine::new(machine_with_l2_groups(
            (0..4).map(|c| vec![c]).collect(),
        ));
        let mut platform = SimPlatform::new(machine, Some(cluster)).with_noise(0.0);
        let result = characterize_communication(&mut platform, &CommConfig::small(8 * KB));
        prop_assert_eq!(result.num_layers(), expected_layers.len());
        // Every measured pair sits in the layer matching the topology:
        // layers are sorted fastest-first and so is `expected_layers`.
        for &((a, b), _) in &result.pair_latency {
            let truth = topo.layer_between(a, b);
            let idx = expected_layers.iter().position(|&l| l == truth).unwrap();
            prop_assert_eq!(result.layer_of(a, b), Some(idx), "pair ({}, {})", a, b);
        }
    }
}
