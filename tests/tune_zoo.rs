//! The population-wide acceptance gate for search-based autotuning:
//! across the seeded machine zoo, the cheap search strategies must land
//! within 1 % of the analytically-advised configuration on at least
//! 90 % of machines. This is the claim `servet-tune` makes in
//! `TUNING.md` — search and advice check each other — enforced over the
//! same 64-machine population the zoo accuracy gates use.
//!
//! Deliberately serde-free end to end (space digests, the comparison,
//! and the report are all hand-rolled), so the gate holds even in build
//! environments where `serde_json` is stubbed out.

use servet::tune::{run_compare, CompareConfig, Strategy};

#[test]
fn search_reaches_analytic_parity_across_the_zoo() {
    let mut config = CompareConfig::new(64, 2, 42);
    config.n = 16; // keeps the debug-build gate in seconds, parity unaffected
    let report = run_compare(&config);

    assert_eq!(report.per_machine.len(), 64);
    for summary in &report.summary {
        assert!(
            summary.parity >= 0.90,
            "{} parity {:.1}% below the 90% gate (matched {}/{})",
            summary.strategy,
            100.0 * summary.parity,
            summary.matched,
            summary.total
        );
        // Geometric-mean ratio near 1 means the matches are not a few
        // lucky machines padding out large losses elsewhere.
        assert!(
            summary.mean_ratio <= 1.02,
            "{} geo-mean ratio {:.3} drifted from parity",
            summary.strategy,
            summary.mean_ratio
        );
        assert!(summary.mean_evaluations > 0.0);
    }
    assert!(report.parity(Strategy::Line).is_some());
    assert!(report.parity(Strategy::MonteCarlo).is_some());

    // The report is worker-count invariant: a serial rerun of a slice
    // of the population reproduces the parallel run's rows exactly.
    let mut serial = CompareConfig::new(8, 1, 42);
    serial.n = 16;
    let serial_report = run_compare(&serial);
    for (a, b) in serial_report
        .per_machine
        .iter()
        .zip(report.per_machine.iter().take(8))
    {
        assert_eq!(a, b, "machine {} differs between worker counts", a.index);
    }
}
