//! Smoke tests of the real-hardware backend: the suite must run to
//! completion on whatever machine executes the tests, even a unicore
//! container. Assertions are deliberately loose — shared CI machines are
//! noisy — but the *plumbing* (benchmark over trait over real kernels) is
//! exercised end to end.

use servet::prelude::*;

#[test]
fn host_mcalibrator_sweep_runs() {
    let mut host = HostPlatform::new();
    // A short sweep (to 2 MB) keeps this test quick.
    let config = McalibratorConfig {
        min_size: 4 * 1024,
        max_size: 2 * 1024 * 1024,
        stride: 1024,
        double_until: 2 * 1024 * 1024,
        linear_step: 1024 * 1024,
    };
    let sweep = mcalibrator(&mut host, 0, &config);
    assert_eq!(sweep.len(), config.sizes().len());
    assert!(sweep.cycles.iter().all(|&c| c > 0.0 && c.is_finite()));
}

#[test]
fn host_full_suite_smoke() {
    let mut host = HostPlatform::new().with_core_override(2);
    let config = SuiteConfig {
        mcalibrator: McalibratorConfig {
            min_size: 8 * 1024,
            max_size: 1024 * 1024,
            stride: 1024,
            double_until: 1024 * 1024,
            linear_step: 512 * 1024,
        },
        ..SuiteConfig::small(1024 * 1024)
    };
    let report = run_full_suite(&mut host, &config);
    // Every stage ran and produced *something*; exact values depend on
    // the machine.
    assert!(report.profile.shared_caches.is_some());
    assert!(report.profile.memory.is_some());
    assert!(report.profile.communication.is_some());
    assert!(report.timings.total_s() > 0.0);
    // The profile serializes regardless of what was measured.
    let json = report.profile.to_json();
    let back = MachineProfile::from_json(&json).unwrap();
    assert_eq!(back, report.profile);
}

#[test]
fn host_memory_reference_positive() {
    let mut host = HostPlatform::new();
    let reference = host.copy_bandwidth_gbs(&[0])[0];
    assert!(reference > 0.05, "implausibly low bandwidth: {reference}");
}
