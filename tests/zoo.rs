//! Machine-zoo acceptance tests (ISSUE 6): the batched driver measures a
//! deterministic population of perturbed machines, scores detection
//! against ground truth, and streams every profile into a live registry.
//!
//! The bars promoted here from the crate-level unit tests:
//! * the report is a pure function of `(seed, machines)` — any worker
//!   count produces byte-identical `zoo_report.json`;
//! * cache-size detection stays ≥ 95% correct over a 64-machine zoo;
//! * a live loopback registry receives one profile per machine.

use servet::core::zoo::{run_zoo, ProfileSink, ZooConfig, ZooMachine};
use servet::core::{RunManifest, SuiteReport};
use servet::prelude::*;
use servet::registry::{serve, RetryPolicy, RetryingRegistryClient, ServerConfig};
use std::io;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn zoo_report_is_a_pure_function_of_seed_and_population() {
    let a = run_zoo(&ZooConfig::new(10, 1, 42), |_| Ok(None)).unwrap();
    let b = run_zoo(&ZooConfig::new(10, 3, 42), |_| Ok(None)).unwrap();
    assert_eq!(a, b, "worker count leaked into the report");
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "zoo_report.json differs across worker counts"
    );

    let c = run_zoo(&ZooConfig::new(10, 3, 43), |_| Ok(None)).unwrap();
    let names = |r: &servet::core::zoo::ZooReport| {
        r.per_machine
            .iter()
            .map(|m| m.name.clone())
            .collect::<Vec<_>>()
    };
    assert_ne!(names(&a), names(&c), "seed had no effect on the population");
}

#[test]
fn sixty_four_machine_zoo_hits_the_accuracy_bar() {
    let report = run_zoo(&ZooConfig::new(64, 8, 42), |_| Ok(None)).unwrap();
    assert_eq!(report.machines, 64);
    assert_eq!(report.per_machine.len(), 64);

    let acc = &report.accuracy;
    assert!(
        acc.cache_size_accuracy() >= 0.95,
        "cache-size detection accuracy {:.3} below the 0.95 bar \
         ({} of {} sizes correct over {} machines)",
        acc.cache_size_accuracy(),
        acc.cache_sizes_correct,
        acc.cache_sizes_total,
        acc.machines
    );
    // A machine that fell back to the configured comm probe size must be
    // counted as a fallback, never silently scored as a detection.
    for row in &report.per_machine {
        if row.eval.probe_size_fallback {
            assert_eq!(row.eval.detected_levels, 0, "fallback with levels detected");
        }
    }
    // Per-run scope purity at population scale: every manifest carries
    // its own suite span tree, none is empty, none absorbed a sibling's.
    for row in &report.per_machine {
        assert!(
            row.manifest_spans >= 1,
            "machine {} produced an empty manifest",
            row.name
        );
    }
    // Stage timings aggregate only stages that actually ran.
    assert!(report.stage_times.contains_key("cache_size"));
    assert!(!report.stage_times.contains_key("memory_overhead"));
    // The false-sharing stage runs zoo-wide: every machine is scored,
    // and the advised padding covers the machine's true line size even
    // under coherence-latency perturbation (the classification counts
    // MESI invalidations, which noise and latency scaling cannot move).
    assert_eq!(
        acc.padding_total, 64,
        "false-sharing stage skipped machines"
    );
    assert!(
        acc.padding_accuracy() >= 0.95,
        "padding advice accuracy {:.3} below the 0.95 bar ({} of {})",
        acc.padding_accuracy(),
        acc.padding_correct,
        acc.padding_total
    );
    assert!(report.stage_times.contains_key("false_sharing"));
}

/// The sink the `servet zoo` CLI uses, reduced to its essentials: each
/// worker owns a retrying client and puts every measured profile under
/// the machine's (unique) perturbed name.
struct TestSink {
    client: RetryingRegistryClient,
}

impl ProfileSink for TestSink {
    fn publish(
        &mut self,
        machine: &ZooMachine,
        report: &SuiteReport,
        _manifest: &RunManifest,
    ) -> io::Result<()> {
        self.client
            .put(&report.profile, Some(&machine.spec.name))
            .map(|_| ())
    }
}

#[test]
fn zoo_streams_one_profile_per_machine_into_a_live_registry() {
    const MACHINES: usize = 8;
    let dir = std::env::temp_dir().join(format!(
        "servet-zoo-it-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(Registry::open(&dir).unwrap());
    let server = serve(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Duration::from_secs(10),
            // A deliberately tight pool so the zoo's fan-in exercises
            // the busy/retry path now and then.
            workers: 2,
            backlog: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let report = run_zoo(&ZooConfig::new(MACHINES, 4, 7), |_worker| {
        Ok(Some(Box::new(TestSink {
            client: RetryingRegistryClient::new(addr, RetryPolicy::default()),
        }) as Box<dyn ProfileSink>))
    })
    .unwrap();
    assert_eq!(report.per_machine.len(), MACHINES);

    let mut client = RegistryClient::connect(addr).unwrap();
    let entries = client.list().unwrap();
    assert_eq!(
        entries.iter().flat_map(|e| e.aliases.iter()).count(),
        MACHINES,
        "each zoo machine must land under its own alias"
    );
    for row in &report.per_machine {
        assert!(
            entries.iter().any(|e| e.aliases.contains(&row.name)),
            "machine {} never reached the registry",
            row.name
        );
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
