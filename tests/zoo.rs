//! Machine-zoo acceptance tests (ISSUE 6): the batched driver measures a
//! deterministic population of perturbed machines, scores detection
//! against ground truth, and streams every profile into a live registry.
//!
//! The bars promoted here from the crate-level unit tests:
//! * the report is a pure function of `(seed, machines)` — any worker
//!   count produces byte-identical `zoo_report.json`;
//! * cache-size detection stays ≥ 95% correct over a 64-machine zoo;
//! * a live loopback registry receives one profile per machine.

use servet::core::zoo::{run_zoo, ProfileSink, ZooConfig, ZooMachine};
use servet::core::{RunManifest, SuiteReport};
use servet::prelude::*;
use servet::registry::{serve, RetryPolicy, RetryingRegistryClient, ServerConfig};
use std::io;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn zoo_report_is_a_pure_function_of_seed_and_population() {
    let a = run_zoo(&ZooConfig::new(10, 1, 42), |_| Ok(None)).unwrap();
    let b = run_zoo(&ZooConfig::new(10, 3, 42), |_| Ok(None)).unwrap();
    assert_eq!(a, b, "worker count leaked into the report");
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "zoo_report.json differs across worker counts"
    );

    let c = run_zoo(&ZooConfig::new(10, 3, 43), |_| Ok(None)).unwrap();
    let names = |r: &servet::core::zoo::ZooReport| {
        r.per_machine
            .iter()
            .map(|m| m.name.clone())
            .collect::<Vec<_>>()
    };
    assert_ne!(names(&a), names(&c), "seed had no effect on the population");
}

#[test]
fn sixty_four_machine_zoo_hits_the_accuracy_bar() {
    let report = run_zoo(&ZooConfig::new(64, 8, 42), |_| Ok(None)).unwrap();
    assert_eq!(report.machines, 64);
    assert_eq!(report.per_machine.len(), 64);

    let acc = &report.accuracy;
    assert!(
        acc.cache_size_accuracy() >= 0.95,
        "cache-size detection accuracy {:.3} below the 0.95 bar \
         ({} of {} sizes correct over {} machines)",
        acc.cache_size_accuracy(),
        acc.cache_sizes_correct,
        acc.cache_sizes_total,
        acc.machines
    );
    // A machine that fell back to the configured comm probe size must be
    // counted as a fallback, never silently scored as a detection.
    for row in &report.per_machine {
        if row.eval.probe_size_fallback {
            assert_eq!(row.eval.detected_levels, 0, "fallback with levels detected");
        }
    }
    // Per-run scope purity at population scale: every manifest carries
    // its own suite span tree, none is empty, none absorbed a sibling's.
    for row in &report.per_machine {
        assert!(
            row.manifest_spans >= 1,
            "machine {} produced an empty manifest",
            row.name
        );
    }
    // Stage timings aggregate only stages that actually ran.
    assert!(report.stage_times.contains_key("cache_size"));
    assert!(!report.stage_times.contains_key("memory_overhead"));
    // The false-sharing stage runs zoo-wide: every machine is scored,
    // and the advised padding covers the machine's true line size even
    // under coherence-latency perturbation (the classification counts
    // MESI invalidations, which noise and latency scaling cannot move).
    assert_eq!(
        acc.padding_total, 64,
        "false-sharing stage skipped machines"
    );
    assert!(
        acc.padding_accuracy() >= 0.95,
        "padding advice accuracy {:.3} below the 0.95 bar ({} of {})",
        acc.padding_accuracy(),
        acc.padding_correct,
        acc.padding_total
    );
    assert!(report.stage_times.contains_key("false_sharing"));
}

/// The MB-range member (ISSUE 10): a perturbed `mb_smp` — 32 KB L1 over
/// a 2 MB shared L2 — runs the full zoo suite with the wide mcalibrator
/// sweep. Affordable only on the packed fast-path engine; the generous
/// wall-clock bound is there to catch a throughput regression that would
/// make MB-range sweeps unaffordable again, not to time the machine.
#[test]
fn mb_range_machine_completes_its_sweep_within_budget() {
    let mut cfg = ZooConfig::new(0, 1, 42);
    cfg.mb_machines = 1;
    let start = std::time::Instant::now();
    let report = run_zoo(&cfg, |_| Ok(None)).unwrap();
    let wall = start.elapsed();

    assert_eq!(report.machines, 1);
    let row = &report.per_machine[0];
    assert_eq!(row.base, "mb_smp");
    assert_eq!(row.eval.true_levels, 2);
    assert!(
        row.eval
            .level_sizes
            .iter()
            .any(|(_, true_size, _)| *true_size >= 1024 * 1024),
        "perturbed mb_smp lost its MB-range level: {:?}",
        row.eval.level_sizes
    );
    // The sweep must actually produce its stage-time lines — the
    // cache-size row is the expensive one, and the coherence extension
    // must have run too.
    assert!(
        report.stage_times.contains_key("cache_size"),
        "no cache_size stage-time line: {:?}",
        report.stage_times.keys().collect::<Vec<_>>()
    );
    assert!(report.stage_times.contains_key("false_sharing"));
    assert!(
        row.timings.cache_size_s > 0.0,
        "cache-size sweep reported zero virtual time"
    );
    assert!(
        wall < Duration::from_secs(120),
        "MB-range sweep took {wall:?} — fast-path regression?"
    );
}

/// The sink the `servet zoo` CLI uses, reduced to its essentials: each
/// worker owns a retrying client and puts every measured profile under
/// the machine's (unique) perturbed name.
struct TestSink {
    client: RetryingRegistryClient,
}

impl ProfileSink for TestSink {
    fn publish(
        &mut self,
        machine: &ZooMachine,
        report: &SuiteReport,
        _manifest: &RunManifest,
    ) -> io::Result<()> {
        self.client
            .put(&report.profile, Some(&machine.spec.name))
            .map(|_| ())
    }
}

#[test]
fn zoo_streams_one_profile_per_machine_into_a_live_registry() {
    const MACHINES: usize = 8;
    let dir = std::env::temp_dir().join(format!(
        "servet-zoo-it-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(Registry::open(&dir).unwrap());
    let server = serve(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Duration::from_secs(10),
            // A deliberately tight pool so the zoo's fan-in exercises
            // the busy/retry path now and then.
            workers: 2,
            backlog: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let report = run_zoo(&ZooConfig::new(MACHINES, 4, 7), |_worker| {
        Ok(Some(Box::new(TestSink {
            client: RetryingRegistryClient::new(addr, RetryPolicy::default()),
        }) as Box<dyn ProfileSink>))
    })
    .unwrap();
    assert_eq!(report.per_machine.len(), MACHINES);

    let mut client = RegistryClient::connect(addr).unwrap();
    let entries = client.list().unwrap();
    assert_eq!(
        entries.iter().flat_map(|e| e.aliases.iter()).count(),
        MACHINES,
        "each zoo machine must land under its own alias"
    );
    for row in &report.per_machine {
        assert!(
            entries.iter().any(|e| e.aliases.contains(&row.name)),
            "machine {} never reached the registry",
            row.name
        );
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
