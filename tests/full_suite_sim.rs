//! End-to-end suite runs on simulated machines.
//!
//! Fast cases (tiny machines) run in every profile; the paper-scale
//! machines are release-only (`--release`), since the cycle engine in
//! debug mode makes the full sweeps slow.

use servet::prelude::*;

#[test]
fn tiny_cluster_full_pipeline() {
    let mut platform = SimPlatform::tiny_cluster().with_noise(0.003);
    let report = run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024));
    let profile = &report.profile;

    // Ground truth of the tiny machine: 8 KB L1, 64 KB L2, all private,
    // one FSB contention class, four communication layers.
    assert_eq!(profile.cache_size(1), Some(8 * 1024));
    assert_eq!(profile.cache_size(2), Some(64 * 1024));
    assert!(!profile.shared_caches.as_ref().unwrap().any_shared());
    assert_eq!(profile.memory.as_ref().unwrap().num_classes(), 1);
    assert_eq!(profile.communication.as_ref().unwrap().num_layers(), 4);
    assert!(report.timings.total_s() > 0.0);
}

#[test]
fn tiny_shared_l2_topology_recovered() {
    let mut platform = SimPlatform::tiny_shared_l2().with_noise(0.003);
    let report = run_full_suite(&mut platform, &SuiteConfig::small(384 * 1024));
    let shared = report.profile.shared_caches.as_ref().unwrap();
    assert_eq!(shared.levels[1].groups, vec![vec![0, 1], vec![2, 3]]);
    assert_eq!(report.profile.cores_sharing_cache(2, 0), vec![1]);
    assert!(report.profile.cores_sharing_cache(1, 0).is_empty());
}

#[test]
fn tiny_numa_memory_structure_recovered() {
    let mut platform = SimPlatform::tiny_numa().with_noise(0.003);
    let report = run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024));
    let memory = report.profile.memory.as_ref().unwrap();
    assert_eq!(memory.num_classes(), 2);
    assert_eq!(memory.overheads[0].groups[0], vec![0, 1]);
    assert_eq!(memory.overheads[1].groups[0], vec![0, 1, 2, 3]);
}

#[test]
fn suite_is_deterministic_for_fixed_seed() {
    let run = || {
        let mut platform = SimPlatform::tiny_cluster().with_seed(99).with_noise(0.004);
        run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024))
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn profile_json_file_round_trip() {
    let mut platform = SimPlatform::tiny_cluster().with_noise(0.002);
    let report = run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024));
    let dir = std::env::temp_dir().join("servet-int-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("profile.json");
    report.profile.save(&path).unwrap();
    let loaded = MachineProfile::load(&path).unwrap();
    assert_eq!(loaded, report.profile);
    std::fs::remove_file(&path).ok();
}

#[cfg_attr(debug_assertions, ignore = "paper-scale machine; run with --release")]
#[test]
fn dunnington_full_suite_matches_paper() {
    let mut platform = SimPlatform::dunnington();
    let report = run_full_suite(&mut platform, &SuiteConfig::default());
    let profile = &report.profile;

    // §IV-A: cache sizes.
    assert_eq!(profile.cache_size(1), Some(32 * 1024));
    assert_eq!(profile.cache_size(2), Some(3 * 1024 * 1024));
    assert_eq!(profile.cache_size(3), Some(12 * 1024 * 1024));

    // Fig. 8a: core 0 shares L2 with 12, L3 with {1,2,12,13,14}.
    assert_eq!(profile.cores_sharing_cache(2, 0), vec![12]);
    assert_eq!(profile.cores_sharing_cache(3, 0), vec![1, 2, 12, 13, 14]);

    // Fig. 9a: a single uniform overhead class.
    assert_eq!(profile.memory.as_ref().unwrap().num_classes(), 1);

    // Fig. 10a: three communication layers, shared-L2 fastest.
    let comm = profile.communication.as_ref().unwrap();
    assert_eq!(comm.num_layers(), 3);
    assert_eq!(comm.layer_of(0, 12), Some(0));
}

#[cfg_attr(debug_assertions, ignore = "paper-scale machine; run with --release")]
#[test]
fn finis_terrae_full_suite_matches_paper() {
    let mut platform = SimPlatform::finis_terrae(2);
    let report = run_full_suite(&mut platform, &SuiteConfig::default());
    let profile = &report.profile;

    assert_eq!(profile.cache_size(1), Some(16 * 1024));
    assert_eq!(profile.cache_size(2), Some(256 * 1024));
    assert_eq!(profile.cache_size(3), Some(9 * 1024 * 1024));
    assert!(!profile.shared_caches.as_ref().unwrap().any_shared());

    // Fig. 9a: bus and cell overhead classes.
    let memory = profile.memory.as_ref().unwrap();
    assert_eq!(memory.num_classes(), 2);
    assert_eq!(memory.overheads[0].groups[0], vec![0, 1, 2, 3]);
    assert_eq!(memory.overheads[1].groups[0], (0..8).collect::<Vec<_>>());

    // Fig. 10: four layers; the paper's 7x InfiniBand degradation.
    let comm = profile.communication.as_ref().unwrap();
    assert_eq!(comm.num_layers(), 4);
    let ib = comm.layers.last().unwrap();
    let at32 = ib
        .scalability
        .iter()
        .find(|&&(n, _, _)| n == 32)
        .expect("32-message sweep");
    assert!((6.0..8.0).contains(&at32.2), "slowdown = {}", at32.2);
}

#[cfg_attr(debug_assertions, ignore = "paper-scale machines; run with --release")]
#[test]
fn cache_detection_robust_across_seeds() {
    // The paper's 10/10 result should not depend on one lucky page-
    // allocation seed.
    for seed in [11u64, 222, 3333] {
        for (spec, truth) in [
            (
                servet::sim::presets::dempsey(),
                vec![16 * 1024, 2 * 1024 * 1024],
            ),
            (
                servet::sim::presets::finis_terrae_node(),
                vec![16 * 1024, 256 * 1024, 9 * 1024 * 1024],
            ),
        ] {
            let name = spec.name.clone();
            let machine = servet::sim::Machine::with_seed(spec, seed);
            let mut platform = servet::core::SimPlatform::new(machine, None).with_seed(seed);
            let sweep = mcalibrator(&mut platform, 0, &McalibratorConfig::default());
            let levels =
                detect_cache_levels(&sweep, platform.page_size(), &DetectConfig::default());
            let sizes: Vec<usize> = levels.iter().map(|l| l.size).collect();
            assert_eq!(sizes, truth, "{name} seed {seed}");
        }
    }
}
