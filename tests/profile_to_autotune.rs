//! Cross-crate flow: measure with servet-core, persist the profile, and
//! drive every servet-autotune consumer from the reloaded file — the
//! paper's install-once / consult-at-runtime workflow (§IV-E).

use servet::autotune::aggregation::aggregation_decision;
use servet::autotune::collectives::{select_broadcast, BcastAlgorithm};
use servet::autotune::placement::{CommPattern, Placer};
use servet::autotune::tiling::select_tile;
use servet::prelude::*;

fn measured_profile() -> MachineProfile {
    let mut platform = SimPlatform::tiny_cluster().with_noise(0.003);
    let report = run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024));
    // Persist and reload, as a real application would.
    let dir = std::env::temp_dir().join("servet-autotune-flow");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("profile.json");
    report.profile.save(&path).unwrap();
    MachineProfile::load(&path).unwrap()
}

#[test]
fn placement_from_reloaded_profile() {
    let profile = measured_profile();
    let placer = Placer::new(&profile);
    // Ranks 0..3 exchange with ranks 4..7 (shift by 4): linear placement
    // puts each pair across sockets; the placer should do better or equal.
    let pattern = CommPattern::shift(8, 4, 8 * 1024);
    let linear = placer.linear(&pattern);
    let greedy = placer.greedy(&pattern);
    assert!(greedy.cost_us <= linear.cost_us);
    // Mapping is a valid assignment of distinct cores.
    let mut cores = greedy.mapping.clone();
    cores.sort_unstable();
    cores.dedup();
    assert_eq!(cores.len(), pattern.ranks);
}

#[test]
fn tiling_from_reloaded_profile() {
    let profile = measured_profile();
    let l1 = select_tile(&profile, 1, 8, 3, 0.75).unwrap();
    let l2 = select_tile(&profile, 2, 8, 3, 0.75).unwrap();
    assert!(l1.tile < l2.tile);
    assert!(3 * l2.tile * l2.tile * 8 <= profile.cache_size(2).unwrap());
}

#[test]
fn aggregation_from_reloaded_profile() {
    let profile = measured_profile();
    let comm = profile.communication.as_ref().unwrap();
    let inter = comm.num_layers() - 1;
    // Tiny messages over the degrading inter-node layer: gather.
    let d = aggregation_decision(comm, inter, 8, 128, 0.3);
    assert!(d.aggregate, "{d:?}");
    // Huge intra-node messages: keep separate.
    let d = aggregation_decision(comm, 0, 2, 512 * 1024, 0.3);
    assert!(!d.aggregate, "{d:?}");
}

#[test]
fn collective_selection_from_reloaded_profile() {
    let profile = measured_profile();
    let predictions = select_broadcast(&profile, 8, 8 * 1024);
    assert_eq!(predictions.len(), 3);
    // Flat broadcast can never be predicted fastest on an 8-rank,
    // two-node machine.
    assert_ne!(predictions[0].algorithm, BcastAlgorithm::Flat);
}

#[test]
fn profile_queries_consistent_with_raw_results() {
    let profile = measured_profile();
    let comm = profile.communication.as_ref().unwrap();
    // The profile's latency query must agree with the layer data it wraps.
    for &(a, b) in &[(0usize, 1usize), (0, 4), (2, 3)] {
        let via_profile = profile.latency_us(a, b, 4096).unwrap();
        let layer = comm.layer_of(a, b).unwrap();
        let via_layer = comm.layers[layer].latency_for_size(4096);
        assert_eq!(via_profile, via_layer);
    }
    // Memory prediction for the full machine equals the measured
    // scalability endpoint.
    let memory = profile.memory.as_ref().unwrap();
    let all: Vec<usize> = (0..profile.cores_per_node).collect();
    let predicted = profile.memory_bandwidth_gbs(&all).unwrap();
    let endpoint = memory.overheads[0]
        .scalability
        .last()
        .map(|&(_, bw)| bw)
        .unwrap();
    assert!((predicted - endpoint).abs() < 1e-9);
}
