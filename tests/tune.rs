//! End-to-end search-based autotuning: the `servet-tune` strategies
//! driven through the public facade, against both oracles, plus the
//! registry `tune` operation over a live loopback server.

use servet::prelude::*;
use servet::registry::TuneQuery;
use servet::sim::presets;
use servet::tune::compare::ground_truth_profile;
use servet::tune::{
    analytic_config, tune, Oracle, ProfileOracle, SimOracle, Strategy, TuneOptions,
};

/// Every strategy must return the *identical* outcome for any positive
/// worker count: candidate batches are scored in parallel but landed in
/// index-ordered slots, and ties break on the point, not on arrival.
#[test]
fn tuning_is_deterministic_across_worker_counts() {
    let oracle = SimOracle::new(presets::tiny_smp(), 7, 16);
    let space = oracle.space();
    for strategy in Strategy::ALL {
        let options = TuneOptions::new(strategy).with_seed(11);
        let one = tune(&oracle, &space, &options, 1);
        let many = tune(&oracle, &space, &options, 4);
        assert_eq!(one, many, "{strategy} must not depend on worker count");
        assert_eq!(
            one.best_score.to_bits(),
            many.best_score.to_bits(),
            "{strategy} scores must be bit-identical"
        );
    }
}

/// Exhaustive search can never lose to the analytic advice, because the
/// advice is snapped onto the same grid exhaustive enumerates; the
/// cheaper strategies must stay close behind on the simulator oracle.
#[test]
fn search_matches_or_beats_analytic_advice_on_tiny_smp() {
    let n = 64; // 3·n²·8 = 96 KB spills tiny_smp's 64 KB L2, so tiling matters
    let oracle = SimOracle::new(presets::tiny_smp(), 42, n);
    let space = oracle.space();
    let truth = ground_truth_profile(oracle.spec());
    let advised = analytic_config(&truth, &space);
    let advised_score = oracle.evaluate(&advised);

    let exhaustive = tune(&oracle, &space, &TuneOptions::new(Strategy::Exhaustive), 2);
    assert!(
        exhaustive.best_score <= advised_score,
        "exhaustive ({}) lost to the analytic config ({advised_score})",
        exhaustive.best_score
    );
    assert_eq!(exhaustive.evaluations, space.len());

    for strategy in [Strategy::Line, Strategy::MonteCarlo] {
        let outcome = tune(&oracle, &space, &TuneOptions::new(strategy), 2);
        assert!(
            outcome.best_score <= advised_score * 1.05,
            "{strategy} ended {}x off the analytic score",
            outcome.best_score / advised_score
        );
        assert!(
            outcome.evaluations < space.len(),
            "{strategy} must search less than the full space"
        );
    }
}

/// The profile oracle prices the same kernel from a measured profile —
/// the registry's view of a machine it never ran on. Its surface is
/// convex enough that line search lands on the exhaustive optimum.
#[test]
fn line_search_converges_on_the_profile_oracle() {
    let profile = ground_truth_profile(&presets::tiny_shared_l2());
    let oracle = ProfileOracle::new(profile, 48);
    let space = oracle.space();
    let best = tune(&oracle, &space, &TuneOptions::new(Strategy::Exhaustive), 1);
    let line = tune(&oracle, &space, &TuneOptions::new(Strategy::Line), 1);
    assert_eq!(
        line.best_score.to_bits(),
        best.best_score.to_bits(),
        "line search must find the exhaustive optimum on the closed-form surface"
    );
    assert!(line.evaluations < best.evaluations);
}

/// The `tune` wire operation: computed once, memoized on repeat, and
/// identical to the in-process engine. Skips (loudly) when the build
/// environment stubs out `serde_json`, which the wire protocol needs.
#[test]
fn registry_tune_memoizes_over_the_wire() {
    use servet::registry::{serve, Registry, ServerConfig};
    use std::sync::Arc;

    let profile = {
        let mut platform = SimPlatform::tiny_cluster().with_noise(0.003);
        run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024)).profile
    };

    let dir = std::env::temp_dir().join(format!(
        "servet-it-tune-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(Registry::open(&dir).unwrap());
    let server = serve(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr();

    // Probe serde availability first: the wire protocol needs a working
    // `serde_json`, which some build environments stub out. Only this
    // probe is guarded — real assertion failures below still propagate.
    let seeded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut client = RegistryClient::connect(addr).unwrap();
        client.put(&profile, Some("tiny")).unwrap();
    }));
    if seeded.is_err() {
        eprintln!("serde_json unavailable (stubbed build); skipping the wire assertions");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }

    {
        let mut client = RegistryClient::connect(addr).unwrap();

        let query = TuneQuery {
            space: None,
            options: TuneOptions::new(Strategy::Line),
            n: 48,
        };
        let (digest, cached_first, first) = client.tune("tiny", &query).unwrap();
        assert!(!cached_first, "first tune computes");
        let (digest2, cached_second, second) = client.tune("tiny", &query).unwrap();
        assert!(cached_second, "identical repeat must be memoized");
        assert_eq!(digest, digest2);
        assert_eq!(first, second);

        // The wire answer is the in-process answer.
        let oracle = ProfileOracle::new(profile.clone(), 48);
        let space = oracle.space();
        let local = tune(&oracle, &space, &query.options, 1);
        assert_eq!(first.best, local.best);
        assert_eq!(first.best_score.to_bits(), local.best_score.to_bits());

        // A different seed is a different memo entry.
        let reseeded = TuneQuery {
            options: TuneOptions::new(Strategy::MonteCarlo).with_seed(99),
            ..query
        };
        let (_, cached_third, _) = client.tune("tiny", &reseeded).unwrap();
        assert!(!cached_third, "new options must compute fresh");
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
