//! Evaluation oracles: what a search strategy asks "how fast is this
//! configuration?".
//!
//! Two implementations with deliberately different semantics:
//!
//! * [`SimOracle`] **simulates** the kernel. It replays the exact access
//!   trace of a threaded, blocked matrix multiply on a
//!   [`servet_sim::Machine`] (via the lockstep
//!   [`servet_sim::machine::TraceJob`] engine) and scores a
//!   configuration by its makespan in cycles. Tiling, thread count,
//!   placement, and accumulator padding all change the trace or the
//!   core mapping, so their costs emerge from the cache/coherence/bus
//!   models for the same reasons they do on hardware.
//! * [`ProfileOracle`] **prices** the kernel with a closed-form cost
//!   model over a measured [`MachineProfile`] — the mcalibrator curve
//!   for the tile's working set, the §III-C concurrency advice for bus
//!   saturation, the Fig. 5 sharing groups for placement, and the
//!   false-sharing sweep for padding. It is not a simulation: it is the
//!   cheap oracle a *registry* can serve about a machine it has never
//!   run on, and the cross-check that search over it lands near the
//!   analytic advice derived from the same profile.
//!
//! Both are deterministic and [`Sync`], so strategies may score
//! candidates from parallel workers in any order and still produce
//! bit-identical results.

use crate::space::{Config, Param, ParamSpace};
use serde::{Deserialize, Serialize};
use servet_autotune::concurrency::advise_memory_threads;
use servet_autotune::padding::advise_padding;
use servet_autotune::tiling::select_tile;
use servet_core::profile::MachineProfile;
use servet_sim::{Machine, MachineSpec, TraceJob};

/// Dimension name of the tile edge (elements).
pub const TILE: &str = "tile";
/// Dimension name of the thread count.
pub const THREADS: &str = "threads";
/// Dimension name of the placement policy: `0` = compact (thread *t* on
/// core *t*), `1` = spread (threads strided across the cores, one per
/// sharing group first).
pub const PLACEMENT: &str = "placement";
/// Dimension name of the per-thread accumulator padding (bytes between
/// per-thread slots of the shared accumulator array).
pub const PAD: &str = "pad";

/// Largest accumulator padding the kernel arena reserves room for.
const MAX_PAD: u64 = 4096;
/// One accumulator store is issued every this many inner-loop updates.
const ACC_EVERY: usize = 16;

/// A deterministic, thread-safe cost function over configurations.
/// Lower scores are better.
pub trait Oracle: Sync {
    /// Human-readable oracle name, recorded in tune reports.
    fn name(&self) -> String;
    /// Score one configuration. Must be deterministic and free of
    /// interior mutability — strategies call it from several threads.
    fn evaluate(&self, config: &Config) -> f64;
}

/// The standard kernel space for an `n × n` blocked matmul on a machine
/// with `cores` cores: tile edges (powers of two from 8 up to
/// `min(n, 64)`), thread counts (powers of two up to `cores`), the
/// placement policy, and the accumulator padding (packed / one line /
/// four lines).
pub fn kernel_space(cores: usize, n: usize) -> ParamSpace {
    assert!(n >= 8, "kernel needs n >= 8");
    let max_tile_exp = (n.min(64) as f64).log2() as u32;
    let max_thread_exp = (cores.max(1) as f64).log2() as u32;
    ParamSpace::new(vec![
        Param::log2(TILE, 3, max_tile_exp.max(3)),
        Param::log2(THREADS, 0, max_thread_exp),
        Param::fixed_set(PLACEMENT, &[0, 1]),
        Param::fixed_set(PAD, &[8, 64, 256]),
    ])
}

/// Read a dimension with a default, so oracles accept partial configs
/// (a space without a `pad` dimension still evaluates).
fn value(config: &Config, name: &str, default: u64) -> u64 {
    config.get(name).copied().unwrap_or(default)
}

/// The access trace of one thread's share of the blocked multiply:
/// rows `[r0, r1)` of `C += A × B` in i-k-j tile order, with a store to
/// this thread's accumulator slot every [`ACC_EVERY`] updates.
fn thread_trace(n: usize, tile: usize, rows: (usize, usize), acc_addr: u64) -> Vec<(u64, bool)> {
    let elem = 8u64;
    let b_base = (n * n) as u64 * elem;
    let c_base = 2 * b_base;
    let addr = |base: u64, r: usize, c: usize| base + ((r * n + c) as u64) * elem;
    let t = tile.clamp(1, n);
    let mut steps = Vec::new();
    let mut since_acc = 0usize;
    let mut ib = rows.0;
    while ib < rows.1 {
        let mut kb = 0;
        while kb < n {
            let mut jb = 0;
            while jb < n {
                for i in ib..(ib + t).min(rows.1) {
                    for k in kb..(kb + t).min(n) {
                        steps.push((addr(0, i, k), false));
                        for j in jb..(jb + t).min(n) {
                            steps.push((addr(b_base, k, j), false));
                            steps.push((addr(c_base, i, j), true));
                            since_acc += 1;
                            if since_acc == ACC_EVERY {
                                steps.push((acc_addr, true));
                                since_acc = 0;
                            }
                        }
                    }
                }
                jb += t;
            }
            kb += t;
        }
        ib += t;
    }
    steps
}

/// Cycle cost of the threaded blocked matmul on a simulated machine.
///
/// Every evaluation builds a fresh [`Machine`] from the spec and seed
/// (page placement included), allocates one *shared* arena holding A, B,
/// C and the per-thread accumulators, and replays all thread traces in
/// lockstep. The score is the makespan: the slowest thread's finish
/// time in cycles.
pub struct SimOracle {
    spec: MachineSpec,
    seed: u64,
    n: usize,
}

impl SimOracle {
    /// An oracle for an `n × n` matmul on `spec`, with `seed` driving
    /// the simulator's page allocator.
    pub fn new(spec: MachineSpec, seed: u64, n: usize) -> Self {
        assert!(n >= 8, "kernel needs n >= 8");
        Self { spec, seed, n }
    }

    /// The machine being simulated.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Matrix edge length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The standard kernel space for this machine and problem size.
    pub fn space(&self) -> ParamSpace {
        kernel_space(self.spec.num_cores, self.n)
    }
}

impl Oracle for SimOracle {
    fn name(&self) -> String {
        format!("sim:{}:n{}", self.spec.name, self.n)
    }

    fn evaluate(&self, config: &Config) -> f64 {
        let n = self.n;
        let cores = self.spec.num_cores;
        let tile = value(config, TILE, 8).clamp(1, n as u64) as usize;
        let threads = value(config, THREADS, 1).clamp(1, cores as u64) as usize;
        let spread = value(config, PLACEMENT, 0) != 0;
        let pad = value(config, PAD, 64).clamp(8, MAX_PAD);

        let mut m = Machine::with_seed(self.spec.clone(), self.seed);
        let arena = m.alloc_shared_array(3 * n * n * 8 + cores * MAX_PAD as usize + 64);
        m.reset();
        let acc_base = (3 * n * n * 8) as u64;
        let stride = (cores / threads).max(1);
        let traces: Vec<(usize, Vec<(u64, bool)>)> = (0..threads)
            .filter_map(|t| {
                let rows = (t * n / threads, (t + 1) * n / threads);
                if rows.0 == rows.1 {
                    return None; // more threads than rows: this one idles
                }
                let core = if spread {
                    (t * stride) % cores
                } else {
                    t % cores
                };
                let acc = acc_base + t as u64 * pad;
                Some((core, thread_trace(n, tile, rows, acc)))
            })
            .collect();
        let jobs: Vec<TraceJob<'_>> = traces
            .iter()
            .map(|(core, steps)| TraceJob {
                core: *core,
                array: &arena,
                steps,
            })
            .collect();
        m.run_traces(&jobs)
            .into_iter()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Closed-form cost model of the same kernel over a measured profile.
///
/// The score is *predicted* cycles: per-access cost of the tile's
/// working set read off the mcalibrator curve (or classified against
/// the detected cache sizes when the curve is absent), divided by the
/// thread count, then multiplied by contention factors for bus
/// saturation (§III-C advice), compact placement into shared caches
/// (Fig. 5 groups), and under-padded accumulators (false-sharing
/// sweep). Scores are comparable *within* this oracle, not against
/// [`SimOracle`] cycles.
pub struct ProfileOracle {
    profile: MachineProfile,
    n: usize,
}

impl ProfileOracle {
    /// An oracle pricing an `n × n` matmul against `profile`.
    pub fn new(profile: MachineProfile, n: usize) -> Self {
        assert!(n >= 8, "kernel needs n >= 8");
        Self { profile, n }
    }

    /// The profile being priced against.
    pub fn profile(&self) -> &MachineProfile {
        &self.profile
    }

    /// Matrix edge length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The standard kernel space for the profiled machine.
    pub fn space(&self) -> ParamSpace {
        kernel_space(self.profile.total_cores.max(1), self.n)
    }

    /// Per-access cycles at working-set size `ws`: linear interpolation
    /// on the measured mcalibrator curve, else a coarse classification
    /// against the detected cache sizes.
    fn per_access_cycles(&self, ws: usize) -> f64 {
        if let Some(mc) = &self.profile.mcalibrator {
            if !mc.sizes.is_empty() && mc.sizes.len() == mc.cycles.len() {
                let w = ws as f64;
                if w <= mc.sizes[0] as f64 {
                    return mc.cycles[0];
                }
                for i in 1..mc.sizes.len() {
                    let (s0, s1) = (mc.sizes[i - 1] as f64, mc.sizes[i] as f64);
                    if w <= s1 {
                        let f = (w - s0) / (s1 - s0).max(1.0);
                        return mc.cycles[i - 1] + f * (mc.cycles[i] - mc.cycles[i - 1]);
                    }
                }
                return *mc.cycles.last().expect("non-empty");
            }
        }
        // No curve: hit costs grow roughly 5× per level in the machines
        // this repo models; beyond the last level, memory.
        let mut sizes: Vec<usize> = self.profile.cache_levels.iter().map(|l| l.size).collect();
        sizes.sort_unstable();
        for (i, size) in sizes.iter().enumerate() {
            if ws as f64 <= 0.75 * *size as f64 {
                return 2.0 * 5f64.powi(i as i32);
            }
        }
        120.0
    }

    /// Size of the largest group of cores sharing any cache level (1 if
    /// every level is private or undetected).
    fn max_sharing_group(&self) -> usize {
        let Some(shared) = &self.profile.shared_caches else {
            return 1;
        };
        shared
            .levels
            .iter()
            .flat_map(|l| l.groups.iter().map(Vec::len))
            .max()
            .unwrap_or(1)
            .max(1)
    }
}

impl Oracle for ProfileOracle {
    fn name(&self) -> String {
        format!("profile:{}:n{}", self.profile.machine, self.n)
    }

    fn evaluate(&self, config: &Config) -> f64 {
        let n = self.n;
        let cores = self.profile.total_cores.max(1);
        let tile = value(config, TILE, 8).clamp(1, n as u64) as usize;
        let threads = value(config, THREADS, 1).clamp(1, cores as u64) as usize;
        let spread = value(config, PLACEMENT, 0) != 0;
        let pad = value(config, PAD, 64) as usize;

        let work = (2 * n * n * n + n * n) as f64; // B+C inner accesses, A loads
        let per = self.per_access_cycles(3 * tile * tile * 8);
        let mut cycles = per * work / threads as f64;

        // Bus saturation: when the full problem spills the last cache,
        // threads beyond the measured sweet spot serialize on memory.
        let last_cache = self.profile.cache_levels.iter().map(|l| l.size).max();
        let spills = last_cache.is_none_or(|c| 3 * n * n * 8 > c);
        if spills {
            if let Some(memory) = &self.profile.memory {
                if let Some(adv) = advise_memory_threads(memory, 0.05) {
                    if threads > adv.threads_per_group {
                        cycles *= threads as f64 / adv.threads_per_group as f64;
                    }
                }
            }
        }

        // Compact placement stacks threads into one sharing group; they
        // evict each other (Fig. 5's mutual-eviction slowdown, linearized).
        if !spread {
            let sharers = threads.min(self.max_sharing_group());
            cycles *= 1.0 + 0.10 * (sharers.saturating_sub(1)) as f64;
        }

        // Under-padded accumulators ping-pong at the measured cost.
        if threads > 1 {
            if let Some(advice) = advise_padding(&self.profile) {
                if pad < advice.pad_bytes {
                    cycles *= advice.worst_ratio.unwrap_or(1.5).max(1.0);
                }
            }
        }
        cycles
    }
}

/// The purely analytic configuration `servet-autotune` derives from a
/// profile, snapped onto `space`'s grid — the baseline every search is
/// compared against.
///
/// Tile from [`select_tile`] (L1, the usual innermost-blocking target),
/// threads = every core, placement spread when a *partial* sharing
/// group exists (so co-scheduled threads avoid mutual eviction), pad
/// from [`advise_padding`] (falling back to one 64-byte line). Each
/// value is clamped to the nearest grid value (below for tile/threads,
/// above for pad), so the analytic config is always a point of the
/// space — an exhaustive search can never lose to it.
pub fn analytic_config(profile: &MachineProfile, space: &ParamSpace) -> Config {
    let pick_le = |values: &[u64], target: u64| {
        values
            .iter()
            .copied()
            .filter(|&v| v <= target)
            .max()
            .unwrap_or_else(|| values.iter().copied().min().expect("non-empty"))
    };
    let pick_ge = |values: &[u64], target: u64| {
        values
            .iter()
            .copied()
            .filter(|&v| v >= target)
            .min()
            .unwrap_or_else(|| values.iter().copied().max().expect("non-empty"))
    };
    let total = profile.total_cores.max(1);
    space
        .params
        .iter()
        .map(|p| {
            let v = match p.name.as_str() {
                TILE => {
                    let tile = select_tile(profile, 1, 8, 3, 0.75)
                        .map(|c| c.tile as u64)
                        .unwrap_or(8);
                    pick_le(&p.values, tile)
                }
                THREADS => pick_le(&p.values, total as u64),
                PLACEMENT => {
                    let partial_group = (1..=profile.num_cache_levels() as u8).any(|l| {
                        let peers = profile.cores_sharing_cache(l, 0);
                        !peers.is_empty() && peers.len() + 1 < total
                    });
                    if partial_group && p.values.contains(&1) {
                        1
                    } else {
                        p.values[0]
                    }
                }
                PAD => {
                    let advised = advise_padding(profile)
                        .map(|a| a.pad_bytes as u64)
                        .unwrap_or(64);
                    pick_ge(&p.values, advised)
                }
                _ => p.values[0],
            };
            (p.name.clone(), v)
        })
        .collect()
}

/// Tune query/report serde shapes shared by the CLI, the registry wire
/// protocol, and the zoo comparison — all defined next to the oracles
/// they configure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum OracleKind {
    /// Simulate the kernel on a preset machine ([`SimOracle`]).
    Sim,
    /// Price the kernel against a stored profile ([`ProfileOracle`]).
    Profile,
}

#[cfg(test)]
mod tests {
    use super::*;
    use servet_core::cache_detect::{CacheLevelEstimate, DetectionMethod};

    fn profile_with_caches(sizes: &[usize], cores: usize) -> MachineProfile {
        MachineProfile {
            schema_version: servet_core::profile::SCHEMA_VERSION,
            machine: "synthetic".into(),
            cores_per_node: cores,
            total_cores: cores,
            page_size: 1024,
            mcalibrator: None,
            cache_levels: sizes
                .iter()
                .enumerate()
                .map(|(i, &size)| CacheLevelEstimate {
                    level: (i + 1) as u8,
                    size,
                    method: DetectionMethod::GradientPeak,
                })
                .collect(),
            shared_caches: None,
            memory: None,
            communication: None,
            micro: None,
            false_sharing: None,
        }
    }

    #[test]
    fn kernel_space_has_the_four_dimensions() {
        let s = kernel_space(4, 32);
        let names: Vec<&str> = s.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec![TILE, THREADS, PLACEMENT, PAD]);
        assert_eq!(s.params[0].values, vec![8, 16, 32]);
        assert_eq!(s.params[1].values, vec![1, 2, 4]);
    }

    #[test]
    fn sim_oracle_is_deterministic() {
        let o = SimOracle::new(servet_sim::presets::tiny_smp(), 7, 16);
        let cfg = o.space().config(&o.space().midpoint());
        assert_eq!(o.evaluate(&cfg).to_bits(), o.evaluate(&cfg).to_bits());
    }

    #[test]
    fn sim_oracle_prefers_fitting_tiles() {
        // At n = 64 the 96 KB problem spills tiny_smp's 64 KB L2, so the
        // untiled order streams from memory while 16-element tiles stay
        // cache-resident (the same contrast the autotune tiling test
        // uses; below L2 size the stride prefetcher hides the order).
        let o = SimOracle::new(servet_sim::presets::tiny_smp(), 7, 64);
        let cfg = |tile: u64| {
            let mut c = Config::new();
            c.insert(TILE.into(), tile);
            c.insert(THREADS.into(), 1);
            c.insert(PLACEMENT.into(), 0);
            c.insert(PAD.into(), 64);
            c
        };
        let tiled = o.evaluate(&cfg(16));
        let untiled = o.evaluate(&cfg(64));
        assert!(tiled < untiled, "tiled {tiled} vs untiled {untiled}");
    }

    #[test]
    fn sim_oracle_threads_beat_serial_on_private_caches() {
        let o = SimOracle::new(servet_sim::presets::tiny_smp(), 7, 32);
        let cfg = |threads: u64| {
            let mut c = Config::new();
            c.insert(TILE.into(), 8);
            c.insert(THREADS.into(), threads);
            c.insert(PLACEMENT.into(), 0);
            c.insert(PAD.into(), 64);
            c
        };
        let serial = o.evaluate(&cfg(1));
        let quad = o.evaluate(&cfg(4));
        assert!(quad < serial, "4 threads {quad} vs serial {serial}");
    }

    #[test]
    fn sim_oracle_charges_packed_accumulators() {
        let o = SimOracle::new(servet_sim::presets::tiny_smp(), 7, 16);
        let cfg = |pad: u64| {
            let mut c = Config::new();
            c.insert(TILE.into(), 8);
            c.insert(THREADS.into(), 4);
            c.insert(PLACEMENT.into(), 0);
            c.insert(PAD.into(), pad);
            c
        };
        let packed = o.evaluate(&cfg(8));
        let padded = o.evaluate(&cfg(64));
        assert!(
            packed > padded,
            "packed accumulators {packed} should cost more than padded {padded}"
        );
    }

    #[test]
    fn profile_oracle_orders_tiles_by_cache_fit() {
        let profile = profile_with_caches(&[8 * 1024, 64 * 1024], 4);
        let o = ProfileOracle::new(profile, 64);
        let cfg = |tile: u64| {
            let mut c = Config::new();
            c.insert(TILE.into(), tile);
            c.insert(THREADS.into(), 1);
            c
        };
        // 16² tiles (6 KB) fit L1; 64² (96 KB) spill to memory.
        assert!(o.evaluate(&cfg(16)) < o.evaluate(&cfg(64)));
    }

    #[test]
    fn analytic_config_is_a_space_point() {
        let profile = profile_with_caches(&[8 * 1024, 64 * 1024], 4);
        let space = kernel_space(4, 32);
        let cfg = analytic_config(&profile, &space);
        for p in &space.params {
            assert!(
                p.values.contains(&cfg[&p.name]),
                "{} = {} not on the grid",
                p.name,
                cfg[&p.name]
            );
        }
        assert_eq!(cfg[THREADS], 4);
        assert_eq!(cfg[PLACEMENT], 0, "private caches: compact");
        assert_eq!(cfg[PAD], 64, "no measurement: one line");
        assert_eq!(cfg[TILE], 16, "0.75·8 KB budget → 16-element tiles");
    }
}
