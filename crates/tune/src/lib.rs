//! # servet-tune
//!
//! Search-based autotuning over countable parameter spaces.
//!
//! §IV-E of the paper closes with the point of Servet: the measured
//! machine parameters "guide optimizations" — pick the tile, the thread
//! count, the placement, the padding. `servet-autotune` does that
//! *analytically*, one closed-form rule per decision. This crate adds
//! the other school of autotuning (ATLAS, FFTW, AutoTuneTMP): declare
//! the decision space, then *search* it against an evaluation oracle,
//! and let the two schools check each other.
//!
//! * [`space`] — countable parameter spaces: named dimensions
//!   (`fixed_set`, `log2`, `range`) with a mixed-radix index, neighbor
//!   and axis enumeration, and a stable digest the registry memoizes by.
//! * [`oracle`] — what "fast" means: [`oracle::SimOracle`] replays the
//!   kernel's access trace on the machine simulator (makespan in
//!   cycles); [`oracle::ProfileOracle`] prices the same kernel with a
//!   closed-form model over a measured profile, which is what a registry
//!   can serve for machines it has never run on.
//!   [`oracle::analytic_config`] snaps `servet-autotune`'s advice onto a
//!   space's grid as the baseline.
//! * [`search`] — the strategies: exhaustive, line (coordinate
//!   descent), neighborhood (hill climbing), and seeded monte-carlo.
//!   All score candidates through one memoizing parallel scorer and are
//!   bit-deterministic in `(strategy, seed)` for any worker count.
//! * [`compare`] — the zoo gate: race every strategy against the
//!   analytic config across the seeded machine population and report
//!   per-strategy parity.

#![warn(missing_docs)]

pub mod compare;
pub mod oracle;
pub mod search;
pub mod space;

pub use compare::{run_compare, CompareConfig, CompareReport, MachineComparison, StrategySummary};
pub use oracle::{analytic_config, kernel_space, Oracle, OracleKind, ProfileOracle, SimOracle};
pub use search::{tune, Strategy, TuneOptions, TuneOutcome};
pub use space::{Config, Param, ParamSpace, Point};
