//! Countable parameter spaces: named dimensions with finite value sets,
//! a cartesian-product index, and neighbor enumeration.
//!
//! This is the AutoTuneTMP `countable_set` idea reduced to its essence:
//! a space is a list of [`Param`]s, each a finite ordered list of `u64`
//! values; a **point** is one value index per dimension; the whole space
//! is addressable by a single mixed-radix integer, so any strategy can
//! enumerate, sample, or walk it without knowing what the dimensions
//! mean. The declaration sugar (`fixed_set`, `log2`, `range`)
//! materializes to plain value lists at construction, so two spaces
//! declared differently but containing the same values are *the same
//! space* — they serialize identically and share a [`ParamSpace::digest`],
//! which is what the registry memoizes tuning sessions by.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One tunable dimension: a name and its finite, ordered value list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Param {
    /// Dimension name, the key under which configs report the value.
    pub name: String,
    /// The values a point may take, in declaration order. Order matters
    /// to neighbor enumeration: index ±1 is "adjacent".
    pub values: Vec<u64>,
}

impl Param {
    /// An explicit value set, kept in the given order.
    ///
    /// Panics on an empty set — a zero-valued dimension would make the
    /// whole space empty, which is always a declaration bug.
    pub fn fixed_set(name: &str, values: &[u64]) -> Self {
        assert!(!values.is_empty(), "parameter {name:?} has no values");
        Self {
            name: name.to_string(),
            values: values.to_vec(),
        }
    }

    /// Powers of two from `2^min_exp` through `2^max_exp` inclusive —
    /// the AutoTuneTMP `log_parameter` shape (thread counts, tile edges).
    pub fn log2(name: &str, min_exp: u32, max_exp: u32) -> Self {
        assert!(
            min_exp <= max_exp,
            "parameter {name:?}: empty exponent range"
        );
        assert!(
            max_exp < 64,
            "parameter {name:?}: 2^{max_exp} overflows u64"
        );
        Self {
            name: name.to_string(),
            values: (min_exp..=max_exp).map(|e| 1u64 << e).collect(),
        }
    }

    /// An arithmetic progression `min, min+step, …` not exceeding `max`.
    pub fn range(name: &str, min: u64, max: u64, step: u64) -> Self {
        assert!(step > 0, "parameter {name:?}: zero step");
        assert!(min <= max, "parameter {name:?}: empty range");
        Self {
            name: name.to_string(),
            values: (min..=max).step_by(step as usize).collect(),
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the value list is empty (never true for a constructed
    /// param; present for completeness).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A point in a space: one value index per dimension, in dimension order.
pub type Point = Vec<usize>;

/// A resolved configuration: dimension name → chosen value. This is what
/// oracles evaluate and reports record; `BTreeMap` so the JSON key order
/// is stable.
pub type Config = BTreeMap<String, u64>;

/// A countable cartesian product of [`Param`]s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSpace {
    /// The dimensions, slowest-varying first under [`Self::point`].
    pub params: Vec<Param>,
}

impl ParamSpace {
    /// Build a space. Panics if two dimensions share a name or any
    /// dimension is empty — both are declaration bugs, not user input.
    pub fn new(params: Vec<Param>) -> Self {
        assert!(!params.is_empty(), "a space needs at least one parameter");
        for (i, p) in params.iter().enumerate() {
            assert!(!p.values.is_empty(), "parameter {:?} has no values", p.name);
            assert!(
                params[..i].iter().all(|q| q.name != p.name),
                "duplicate parameter name {:?}",
                p.name
            );
        }
        Self { params }
    }

    /// Total number of points (the product of the dimension sizes).
    pub fn len(&self) -> usize {
        self.params
            .iter()
            .fold(1usize, |acc, p| acc.saturating_mul(p.len()))
    }

    /// Whether the space has no points (never true for a constructed
    /// space).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode a flat index into a point (mixed radix, last dimension
    /// fastest — an odometer).
    pub fn point(&self, mut index: usize) -> Point {
        assert!(index < self.len(), "index {index} out of space");
        let mut digits = vec![0usize; self.params.len()];
        for (d, p) in self.params.iter().enumerate().rev() {
            digits[d] = index % p.len();
            index /= p.len();
        }
        digits
    }

    /// Encode a point back into its flat index — the inverse of
    /// [`Self::point`].
    pub fn index(&self, point: &Point) -> usize {
        assert_eq!(point.len(), self.params.len(), "point/space rank mismatch");
        self.params.iter().zip(point).fold(0usize, |acc, (p, &i)| {
            assert!(i < p.len(), "index {i} out of parameter {:?}", p.name);
            acc * p.len() + i
        })
    }

    /// Resolve a point to its named configuration.
    pub fn config(&self, point: &Point) -> Config {
        self.params
            .iter()
            .zip(point)
            .map(|(p, &i)| (p.name.clone(), p.values[i]))
            .collect()
    }

    /// The point whose every coordinate sits mid-range — a deterministic,
    /// seed-free starting position for local strategies.
    pub fn midpoint(&self) -> Point {
        self.params.iter().map(|p| p.len() / 2).collect()
    }

    /// All points reachable by moving exactly one coordinate by ±1 —
    /// the neighborhood a local search explores. Edge coordinates have
    /// one-sided neighborhoods; the result never includes `point` itself.
    pub fn neighbors(&self, point: &Point) -> Vec<Point> {
        let mut out = Vec::with_capacity(2 * point.len());
        for (d, p) in self.params.iter().enumerate() {
            if point[d] > 0 {
                let mut q = point.clone();
                q[d] -= 1;
                out.push(q);
            }
            if point[d] + 1 < p.len() {
                let mut q = point.clone();
                q[d] += 1;
                out.push(q);
            }
        }
        out
    }

    /// Every point obtained by sweeping dimension `dim` over all its
    /// values with the other coordinates fixed — one "line" of a line
    /// search. Includes the base point itself.
    pub fn axis(&self, base: &Point, dim: usize) -> Vec<Point> {
        (0..self.params[dim].len())
            .map(|i| {
                let mut q = base.clone();
                q[dim] = i;
                q
            })
            .collect()
    }

    /// Draw a uniformly-ish random point from a splitmix64 state (the
    /// modulo bias is irrelevant at these dimension sizes). Advances the
    /// state; the same state sequence always yields the same points.
    pub fn random_point(&self, state: &mut u64) -> Point {
        self.params
            .iter()
            .map(|p| (splitmix64(state) % p.len() as u64) as usize)
            .collect()
    }

    /// A short stable digest of the space: FNV-1a 64 over a canonical
    /// `name=v1,v2,…;` rendering of the dimensions. Two spaces with the
    /// same dimensions and values share it, however they were declared —
    /// this is the `space` component of the registry's tune-memoization
    /// key. (Hand-rolled rather than hashed serde output so the digest
    /// never depends on a serializer's formatting choices.)
    pub fn digest(&self) -> String {
        let mut canon = String::new();
        for p in &self.params {
            canon.push_str(&p.name);
            canon.push('=');
            for (i, v) in p.values.iter().enumerate() {
                if i > 0 {
                    canon.push(',');
                }
                canon.push_str(&v.to_string());
            }
            canon.push(';');
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in canon.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

/// One step of the splitmix64 generator — the same mixing the zoo uses
/// for per-machine seeds, so tune seeds inherit its avalanche behavior.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            Param::log2("tile", 3, 5),          // 8, 16, 32
            Param::fixed_set("place", &[0, 1]), // 2
            Param::range("pad", 8, 72, 32),     // 8, 40, 72
        ])
    }

    #[test]
    fn constructors_materialize() {
        assert_eq!(Param::log2("t", 3, 5).values, vec![8, 16, 32]);
        assert_eq!(Param::range("r", 8, 72, 32).values, vec![8, 40, 72]);
        assert_eq!(Param::fixed_set("f", &[5, 3]).values, vec![5, 3]);
    }

    #[test]
    fn index_point_round_trip() {
        let s = space();
        assert_eq!(s.len(), 3 * 2 * 3);
        for i in 0..s.len() {
            let p = s.point(i);
            assert_eq!(s.index(&p), i);
        }
        // Last dimension varies fastest.
        assert_eq!(s.point(0), vec![0, 0, 0]);
        assert_eq!(s.point(1), vec![0, 0, 1]);
        assert_eq!(s.point(3), vec![0, 1, 0]);
    }

    #[test]
    fn config_resolves_names_and_values() {
        let s = space();
        let c = s.config(&vec![1, 0, 2]);
        assert_eq!(c["tile"], 16);
        assert_eq!(c["place"], 0);
        assert_eq!(c["pad"], 72);
    }

    #[test]
    fn neighbors_respect_edges() {
        let s = space();
        // Corner point: one-sided in every dimension.
        assert_eq!(s.neighbors(&vec![0, 0, 0]).len(), 3);
        // Interior in tile & pad, edge in place.
        let n = s.neighbors(&vec![1, 1, 1]);
        assert_eq!(n.len(), 5);
        assert!(!n.contains(&vec![1, 1, 1]));
    }

    #[test]
    fn axis_sweeps_one_dimension() {
        let s = space();
        let line = s.axis(&vec![1, 1, 1], 0);
        assert_eq!(line, vec![vec![0, 1, 1], vec![1, 1, 1], vec![2, 1, 1]]);
    }

    #[test]
    fn random_points_are_reproducible_and_in_range() {
        let s = space();
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..32 {
            let pa = s.random_point(&mut a);
            assert_eq!(pa, s.random_point(&mut b));
            assert!(s.index(&pa) < s.len());
        }
    }

    #[test]
    fn digest_is_declaration_independent() {
        let sugar = ParamSpace::new(vec![Param::log2("t", 3, 5)]);
        let explicit = ParamSpace::new(vec![Param::fixed_set("t", &[8, 16, 32])]);
        assert_eq!(sugar.digest(), explicit.digest());
        let other = ParamSpace::new(vec![Param::fixed_set("t", &[8, 16, 64])]);
        assert_ne!(sugar.digest(), other.digest());
    }

    #[test]
    #[should_panic]
    fn duplicate_names_rejected() {
        ParamSpace::new(vec![
            Param::fixed_set("x", &[1]),
            Param::fixed_set("x", &[2]),
        ]);
    }

    #[test]
    fn serde_round_trip() {
        let s = space();
        // Some build environments stub serde_json out with panicking
        // bodies; skip the round-trip there rather than fail on the stub.
        let Ok(json) = std::panic::catch_unwind(|| serde_json::to_string(&s).unwrap()) else {
            eprintln!("serde_json unavailable (stub); skipping round-trip");
            return;
        };
        assert_eq!(serde_json::from_str::<ParamSpace>(&json).unwrap(), s);
    }
}
