//! Zoo-scale validation: does *search* find configurations as good as
//! the *analytic* advice, machine after machine?
//!
//! `servet-autotune` derives its advice (tile size, thread count,
//! placement, padding) analytically from a profile. This module runs the
//! other road on the whole machine zoo: for each member of the seeded
//! population, build the ground-truth profile straight from the spec,
//! snap the analytic advice onto the kernel space, then let each search
//! strategy loose on the [`SimOracle`] and
//! score both on the same simulator. A strategy "matches" a machine when
//! its best makespan is within `epsilon` of the analytic config's (and
//! "improves" when it is more than `epsilon` better). The report's
//! per-strategy parity fraction is the CI gate: informed search should
//! match or beat the closed-form advice on at least 90 % of machines —
//! if it doesn't, either a strategy regressed or the advice and the
//! simulator have drifted apart.

use crate::oracle::{analytic_config, kernel_space, Oracle, SimOracle};
use crate::search::{tune, Strategy, TuneOptions, TuneOutcome};
use crate::space::Config;
use serde::{Deserialize, Serialize};
use servet_core::cache_detect::{CacheLevelEstimate, DetectionMethod};
use servet_core::micro::MicroProfile;
use servet_core::profile::{MachineProfile, SCHEMA_VERSION};
use servet_core::shared_cache::{SharedCacheResult, SharedLevel};
use servet_core::zoo::{generate_population, ZooConfig};
use servet_sim::spec::MachineSpec;
use std::thread;

/// Parameters of one comparison run.
#[derive(Debug, Clone)]
pub struct CompareConfig {
    /// Population size (the zoo's `machines`).
    pub machines: usize,
    /// Worker threads; machines are compared in parallel, results land
    /// in index-ordered slots, so the report is worker-count invariant.
    pub workers: usize,
    /// Master seed shared with the zoo population generator.
    pub seed: u64,
    /// Matrix edge of the kernel being tuned.
    pub n: usize,
    /// Strategies to race against the analytic config.
    pub strategies: Vec<Strategy>,
    /// Relative tolerance: a strategy matches a machine when
    /// `best / analytic <= 1 + epsilon`.
    pub epsilon: f64,
}

impl CompareConfig {
    /// A comparison over `machines` zoo members with the default kernel
    /// size (n = 24), tolerance (1 %), and the two cheap strategies the
    /// CI smoke runs (line search and monte-carlo).
    pub fn new(machines: usize, workers: usize, seed: u64) -> Self {
        Self {
            machines,
            workers: workers.max(1),
            seed,
            n: 24,
            strategies: vec![Strategy::Line, Strategy::MonteCarlo],
            epsilon: 0.01,
        }
    }
}

/// The profile an *omniscient* Servet run would produce for a spec:
/// exact cache sizes, exact sharing groups, exact line size. This is
/// what the analytic advice is derived from in the comparison, so any
/// parity gap measures search-vs-advice, never detection error.
pub fn ground_truth_profile(spec: &MachineSpec) -> MachineProfile {
    let levels = spec
        .caches
        .iter()
        .map(|c| {
            let groups: Vec<Vec<usize>> =
                c.sharing.iter().filter(|g| g.len() > 1).cloned().collect();
            let mut sharing_pairs = Vec::new();
            for g in &groups {
                for (i, &a) in g.iter().enumerate() {
                    for &b in &g[i + 1..] {
                        sharing_pairs.push((a, b));
                    }
                }
            }
            SharedLevel {
                level: c.level,
                cache_size: c.size,
                reference_cycles: 0.0,
                pair_ratios: Vec::new(),
                sharing_pairs,
                groups,
            }
        })
        .collect();
    MachineProfile {
        schema_version: SCHEMA_VERSION,
        machine: spec.name.clone(),
        cores_per_node: spec.num_cores,
        total_cores: spec.num_cores,
        page_size: spec.page_size,
        mcalibrator: None,
        cache_levels: spec
            .caches
            .iter()
            .map(|c| CacheLevelEstimate {
                level: c.level,
                size: c.size,
                method: DetectionMethod::GradientPeak,
            })
            .collect(),
        shared_caches: Some(SharedCacheResult {
            levels,
            miss_decomposition: Vec::new(),
        }),
        memory: None,
        communication: None,
        micro: Some(MicroProfile {
            line_size: spec.caches.first().map(|c| c.line_size),
            l1_associativity: spec.caches.first().map(|c| c.associativity),
            tlb_entries: None,
        }),
        false_sharing: None,
    }
}

/// One strategy's showing on one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyResult {
    /// Strategy that ran.
    pub strategy: Strategy,
    /// Its winning configuration.
    pub best: Config,
    /// Winning makespan, cycles.
    pub best_score: f64,
    /// Distinct configurations it evaluated.
    pub evaluations: usize,
    /// `best_score / analytic_score` — below 1 means search won.
    pub ratio: f64,
    /// Whether the ratio is within the run's epsilon of parity.
    pub matched: bool,
}

/// Search vs analytic on one zoo machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineComparison {
    /// Population index.
    pub index: usize,
    /// Preset the machine was perturbed from.
    pub base: String,
    /// Perturbed machine name.
    pub machine: String,
    /// Core count.
    pub cores: usize,
    /// The analytic configuration on the kernel grid.
    pub analytic: Config,
    /// Its simulated makespan, cycles.
    pub analytic_score: f64,
    /// One entry per strategy, in [`CompareConfig::strategies`] order.
    pub results: Vec<StrategyResult>,
}

/// Aggregate of one strategy across the population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategySummary {
    /// Strategy summarized.
    pub strategy: Strategy,
    /// Machines where the strategy matched or beat the analytic config.
    pub matched: usize,
    /// Machines where it was more than epsilon *better*.
    pub improved: usize,
    /// Population size.
    pub total: usize,
    /// `matched / total` — the CI gate reads this.
    pub parity: f64,
    /// Geometric mean of the per-machine score ratios.
    pub mean_ratio: f64,
    /// Mean evaluations per machine (search cost).
    pub mean_evaluations: f64,
}

/// The full comparison report (`BENCH_tune.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompareReport {
    /// Population size.
    pub machines: usize,
    /// Master seed.
    pub seed: u64,
    /// Kernel matrix edge.
    pub n: usize,
    /// Parity tolerance.
    pub epsilon: f64,
    /// Per-machine detail, population order.
    pub per_machine: Vec<MachineComparison>,
    /// Per-strategy aggregates, [`CompareConfig::strategies`] order.
    pub summary: Vec<StrategySummary>,
}

impl CompareReport {
    /// Parity fraction for a strategy, if it was part of the run.
    pub fn parity(&self, strategy: Strategy) -> Option<f64> {
        self.summary
            .iter()
            .find(|s| s.strategy == strategy)
            .map(|s| s.parity)
    }

    /// Render as JSON without serde (serde parses the shape back) —
    /// this is the `BENCH_tune.json` artifact.
    pub fn to_json(&self) -> String {
        use crate::search::{config_json, fmt_f64};
        let machines: Vec<String> = self
            .per_machine
            .iter()
            .map(|m| {
                let results: Vec<String> = m
                    .results
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"strategy\":\"{}\",\"best\":{},\"best_score\":{},\
                             \"evaluations\":{},\"ratio\":{},\"matched\":{}}}",
                            r.strategy.wire_name(),
                            config_json(&r.best),
                            fmt_f64(r.best_score),
                            r.evaluations,
                            fmt_f64(r.ratio),
                            r.matched,
                        )
                    })
                    .collect();
                format!(
                    "{{\"index\":{},\"base\":\"{}\",\"machine\":\"{}\",\"cores\":{},\
                     \"analytic\":{},\"analytic_score\":{},\"results\":[{}]}}",
                    m.index,
                    servet_obs::json_escape(&m.base),
                    servet_obs::json_escape(&m.machine),
                    m.cores,
                    config_json(&m.analytic),
                    fmt_f64(m.analytic_score),
                    results.join(","),
                )
            })
            .collect();
        let summary: Vec<String> = self
            .summary
            .iter()
            .map(|s| {
                format!(
                    "{{\"strategy\":\"{}\",\"matched\":{},\"improved\":{},\"total\":{},\
                     \"parity\":{},\"mean_ratio\":{},\"mean_evaluations\":{}}}",
                    s.strategy.wire_name(),
                    s.matched,
                    s.improved,
                    s.total,
                    fmt_f64(s.parity),
                    fmt_f64(s.mean_ratio),
                    fmt_f64(s.mean_evaluations),
                )
            })
            .collect();
        format!(
            "{{\"machines\":{},\"seed\":{},\"n\":{},\"epsilon\":{},\
             \"per_machine\":[{}],\"summary\":[{}]}}",
            self.machines,
            self.seed,
            self.n,
            fmt_f64(self.epsilon),
            machines.join(","),
            summary.join(","),
        )
    }
}

/// Compare one machine: analytic config vs every requested strategy,
/// all scored by the same fresh-machine simulator oracle.
fn compare_machine(
    index: usize,
    base: &str,
    spec: &MachineSpec,
    sim_seed: u64,
    config: &CompareConfig,
) -> MachineComparison {
    let oracle = SimOracle::new(spec.clone(), sim_seed, config.n);
    let space = kernel_space(spec.num_cores, config.n);
    let truth = ground_truth_profile(spec);
    let analytic = analytic_config(&truth, &space);
    let analytic_score = oracle.evaluate(&analytic);
    let results = config
        .strategies
        .iter()
        .map(|&strategy| {
            let opts = TuneOptions::new(strategy).with_seed(sim_seed);
            let TuneOutcome {
                best,
                best_score,
                evaluations,
                ..
            } = tune(&oracle, &space, &opts, 1);
            let ratio = best_score / analytic_score;
            StrategyResult {
                strategy,
                best,
                best_score,
                evaluations,
                ratio,
                matched: ratio <= 1.0 + config.epsilon,
            }
        })
        .collect();
    MachineComparison {
        index,
        base: base.to_string(),
        machine: spec.name.clone(),
        cores: spec.num_cores,
        analytic,
        analytic_score,
        results,
    }
}

/// Run the comparison over the zoo population. Machines are processed
/// by `workers` threads into index-ordered slots; the report is
/// byte-identical for any worker count.
pub fn run_compare(config: &CompareConfig) -> CompareReport {
    let _span = servet_obs::span("tune.compare");
    let population = generate_population(&ZooConfig::new(
        config.machines,
        config.workers,
        config.seed,
    ));
    let mut slots: Vec<Option<MachineComparison>> = Vec::new();
    slots.resize_with(population.len(), || None);
    let chunk = population.len().div_ceil(config.workers.max(1)).max(1);
    thread::scope(|s| {
        for (members, out) in population.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            s.spawn(move || {
                for (m, slot) in members.iter().zip(out.iter_mut()) {
                    *slot = Some(compare_machine(
                        m.index, &m.base, &m.spec, m.sim_seed, config,
                    ));
                }
            });
        }
    });
    let per_machine: Vec<MachineComparison> =
        slots.into_iter().map(|s| s.expect("slot filled")).collect();
    let total = per_machine.len();
    let summary = config
        .strategies
        .iter()
        .enumerate()
        .map(|(si, &strategy)| {
            let rows: Vec<&StrategyResult> = per_machine.iter().map(|m| &m.results[si]).collect();
            let matched = rows.iter().filter(|r| r.matched).count();
            let improved = rows
                .iter()
                .filter(|r| r.ratio < 1.0 - config.epsilon)
                .count();
            let mean_ratio = if rows.is_empty() {
                1.0
            } else {
                (rows.iter().map(|r| r.ratio.max(1e-12).ln()).sum::<f64>() / rows.len() as f64)
                    .exp()
            };
            let mean_evaluations = if rows.is_empty() {
                0.0
            } else {
                rows.iter().map(|r| r.evaluations as f64).sum::<f64>() / rows.len() as f64
            };
            StrategySummary {
                strategy,
                matched,
                improved,
                total,
                parity: if total == 0 {
                    1.0
                } else {
                    matched as f64 / total as f64
                },
                mean_ratio,
                mean_evaluations,
            }
        })
        .collect();
    CompareReport {
        machines: config.machines,
        seed: config.seed,
        n: config.n,
        epsilon: config.epsilon,
        per_machine,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_profile_mirrors_the_spec() {
        let spec = servet_sim::presets::tiny_shared_l2();
        let p = ground_truth_profile(&spec);
        assert_eq!(p.total_cores, spec.num_cores);
        assert_eq!(p.num_cache_levels(), spec.caches.len());
        // tiny_shared_l2's L2 is shared by {0,1} and {2,3}.
        assert_eq!(p.cores_sharing_cache(2, 0), vec![1]);
        assert_eq!(p.cores_sharing_cache(2, 3), vec![2]);
        assert!(p.cores_sharing_cache(1, 0).is_empty(), "L1s are private");
        assert_eq!(p.line_size(), Some(spec.caches[0].line_size));
    }

    #[test]
    fn compare_runs_are_worker_count_invariant() {
        let mut config = CompareConfig::new(3, 1, 42);
        config.n = 16;
        config.strategies = vec![Strategy::MonteCarlo];
        let one = run_compare(&config);
        config.workers = 3;
        let three = run_compare(&config);
        assert_eq!(one, three);
        assert_eq!(one.per_machine.len(), 3);
        assert_eq!(one.summary.len(), 1);
    }
}
