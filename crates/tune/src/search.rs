//! Search strategies over a [`ParamSpace`], scored by an [`Oracle`].
//!
//! Four strategies, in the AutoTuneTMP lineage:
//!
//! * **exhaustive** — score every point; the ground truth the others are
//!   judged against.
//! * **line** — coordinate descent: sweep one dimension at a time with
//!   the others held fixed, repeat for a few sweeps or until a whole
//!   sweep stops moving. Cheap and exact on separable cost surfaces.
//! * **neighborhood** — steepest-descent hill climbing over the ±1
//!   neighborhood; stops at the first local minimum.
//! * **monte-carlo** — a seeded uniform sample of the space; the
//!   baseline that needs no structure at all.
//!
//! Every strategy funnels its candidate points through one memoizing
//! scorer that evaluates previously-unseen configurations in parallel
//! with `std::thread::scope` (the `cache_detect` worker pattern). Each
//! point's score depends only on the point, candidate batches are
//! sorted before they are split across workers, and the final argmin
//! tie-breaks by `(score, point)` — so the winner is bit-identical for
//! any worker count, and reruns with the same seed replay exactly.

use crate::oracle::Oracle;
use crate::space::{Config, ParamSpace, Point};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::thread;

/// Hard cap on points an exhaustive search will enumerate; beyond this
/// the space is declared wrong for the strategy, not worth hours of
/// simulation.
const EXHAUSTIVE_LIMIT: usize = 1 << 20;

/// Which search strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Strategy {
    /// Score every point of the space.
    Exhaustive,
    /// Coordinate descent: per-dimension sweeps.
    Line,
    /// Steepest-descent over the ±1 neighborhood.
    Neighborhood,
    /// Seeded uniform random sampling.
    MonteCarlo,
}

impl Strategy {
    /// All strategies, in report order.
    pub const ALL: [Strategy; 4] = [
        Strategy::Exhaustive,
        Strategy::Line,
        Strategy::Neighborhood,
        Strategy::MonteCarlo,
    ];

    /// CLI-style name (`monte-carlo`, not `monte_carlo`).
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Exhaustive => "exhaustive",
            Strategy::Line => "line",
            Strategy::Neighborhood => "neighborhood",
            Strategy::MonteCarlo => "monte-carlo",
        }
    }

    /// Wire name — matches this enum's serde `snake_case` rename, so
    /// hand-rendered JSON parses back through serde.
    pub fn wire_name(&self) -> &'static str {
        match self {
            Strategy::Exhaustive => "exhaustive",
            Strategy::Line => "line",
            Strategy::Neighborhood => "neighborhood",
            Strategy::MonteCarlo => "monte_carlo",
        }
    }

    /// Parse a CLI or wire name; accepts both `-` and `_` separators.
    pub fn parse(s: &str) -> Option<Strategy> {
        match s.replace('_', "-").as_str() {
            "exhaustive" | "brute-force" => Some(Strategy::Exhaustive),
            "line" | "line-search" => Some(Strategy::Line),
            "neighborhood" | "neighbourhood" => Some(Strategy::Neighborhood),
            "monte-carlo" | "mc" => Some(Strategy::MonteCarlo),
            _ => None,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn default_seed() -> u64 {
    0x5EED
}
fn default_sweeps() -> usize {
    2
}
fn default_steps() -> usize {
    16
}
fn default_samples() -> usize {
    24
}

/// Knobs of a tuning session. This struct (minus the worker count,
/// which never changes the result) is what the registry hashes into its
/// memoization key, so every field has a serde default: an old client
/// omitting a new knob still lands on the same cache entry as one
/// sending the default explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuneOptions {
    /// Strategy to run.
    pub strategy: Strategy,
    /// Seed for the monte-carlo sampler (ignored by the deterministic
    /// strategies, but always part of the memo key).
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// Full coordinate-descent passes for [`Strategy::Line`].
    #[serde(default = "default_sweeps")]
    pub sweeps: usize,
    /// Maximum downhill moves for [`Strategy::Neighborhood`].
    #[serde(default = "default_steps")]
    pub steps: usize,
    /// Points drawn by [`Strategy::MonteCarlo`].
    #[serde(default = "default_samples")]
    pub samples: usize,
}

impl TuneOptions {
    /// Defaults for a strategy.
    pub fn new(strategy: Strategy) -> Self {
        Self {
            strategy,
            seed: default_seed(),
            sweeps: default_sweeps(),
            steps: default_steps(),
            samples: default_samples(),
        }
    }

    /// Same options, different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What a tuning session found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneOutcome {
    /// Name of the oracle that scored the candidates.
    pub oracle: String,
    /// Strategy that ran.
    pub strategy: Strategy,
    /// Digest of the space that was searched (the registry memoizes by
    /// this plus the profile digest and options).
    pub space_digest: String,
    /// Number of points in the space.
    pub space_len: usize,
    /// Distinct configurations actually evaluated.
    pub evaluations: usize,
    /// The winning configuration.
    pub best: Config,
    /// Its score (oracle-specific units; lower is better).
    pub best_score: f64,
}

/// Render a resolved configuration as a JSON object (keys already
/// sorted — [`Config`] is a `BTreeMap`).
pub(crate) fn config_json(config: &Config) -> String {
    let fields: Vec<String> = config
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", servet_obs::json_escape(k)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

impl TuneOutcome {
    /// Render as JSON, without going through serde — serde's derives
    /// still parse this exact shape back. Keeps reporting alive in
    /// build environments where `serde_json` is stubbed out.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"oracle\":\"{}\",\"strategy\":\"{}\",\"space_digest\":\"{}\",\
             \"space_len\":{},\"evaluations\":{},\"best\":{},\"best_score\":{}}}",
            servet_obs::json_escape(&self.oracle),
            self.strategy.wire_name(),
            self.space_digest,
            self.space_len,
            self.evaluations,
            config_json(&self.best),
            fmt_f64(self.best_score),
        )
    }
}

/// JSON-safe float rendering (JSON has no NaN/inf literals).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Memoizing, parallel scorer shared by all strategies.
struct Scorer<'a> {
    oracle: &'a dyn Oracle,
    space: &'a ParamSpace,
    workers: usize,
    memo: BTreeMap<Point, f64>,
}

impl<'a> Scorer<'a> {
    fn new(oracle: &'a dyn Oracle, space: &'a ParamSpace, workers: usize) -> Self {
        Self {
            oracle,
            space,
            workers: workers.max(1),
            memo: BTreeMap::new(),
        }
    }

    /// Score every not-yet-seen point in `points`, fanning the batch out
    /// across workers. Each slot depends only on its own point, so the
    /// chunking is invisible in the results.
    fn score_batch(&mut self, points: &[Point]) {
        let mut todo: Vec<Point> = points
            .iter()
            .filter(|p| !self.memo.contains_key(*p))
            .cloned()
            .collect();
        todo.sort_unstable();
        todo.dedup();
        if todo.is_empty() {
            return;
        }
        let _span = servet_obs::span("tune.score_batch");
        servet_obs::counter("tune.evaluations").add(todo.len() as u64);
        let mut scores = vec![0.0f64; todo.len()];
        let chunk = todo.len().div_ceil(self.workers);
        let (oracle, space) = (self.oracle, self.space);
        thread::scope(|s| {
            for (pts, out) in todo.chunks(chunk).zip(scores.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (p, slot) in pts.iter().zip(out.iter_mut()) {
                        *slot = oracle.evaluate(&space.config(p));
                    }
                });
            }
        });
        for (p, score) in todo.into_iter().zip(scores) {
            self.memo.insert(p, score);
        }
    }

    /// Best point among an explicit candidate list (must be scored),
    /// tie-breaking by `(score, point)`.
    fn best_of<'p>(&self, candidates: impl Iterator<Item = &'p Point>) -> (Point, f64) {
        candidates
            .map(|p| (p, self.memo[p]))
            .min_by(|(pa, sa), (pb, sb)| sa.total_cmp(sb).then_with(|| pa.cmp(pb)))
            .map(|(p, s)| (p.clone(), s))
            .expect("non-empty candidate list")
    }

    /// Best point over everything evaluated so far.
    fn best(&self) -> (Point, f64) {
        self.best_of(self.memo.keys())
    }
}

/// Run one tuning session. `workers` threads score candidates in
/// parallel; the result is identical for any positive worker count.
pub fn tune(
    oracle: &dyn Oracle,
    space: &ParamSpace,
    options: &TuneOptions,
    workers: usize,
) -> TuneOutcome {
    let _span = servet_obs::span("tune.search");
    let mut scorer = Scorer::new(oracle, space, workers);
    match options.strategy {
        Strategy::Exhaustive => {
            assert!(
                space.len() <= EXHAUSTIVE_LIMIT,
                "space of {} points is too large for exhaustive search",
                space.len()
            );
            let all: Vec<Point> = (0..space.len()).map(|i| space.point(i)).collect();
            scorer.score_batch(&all);
        }
        Strategy::Line => {
            let mut at = space.midpoint();
            for _ in 0..options.sweeps.max(1) {
                let before = at.clone();
                for dim in 0..space.params.len() {
                    let line = space.axis(&at, dim);
                    scorer.score_batch(&line);
                    at = scorer.best_of(line.iter()).0;
                }
                if at == before {
                    break; // a full sweep moved nothing: converged
                }
            }
        }
        Strategy::Neighborhood => {
            let mut at = space.midpoint();
            scorer.score_batch(std::slice::from_ref(&at));
            for _ in 0..options.steps.max(1) {
                let hood = space.neighbors(&at);
                scorer.score_batch(&hood);
                let (next, next_score) = scorer.best_of(hood.iter());
                if next_score < scorer.memo[&at] {
                    at = next;
                } else {
                    break; // local minimum
                }
            }
        }
        Strategy::MonteCarlo => {
            let mut state = options.seed;
            let draws: Vec<Point> = (0..options.samples.max(1))
                .map(|_| space.random_point(&mut state))
                .collect();
            scorer.score_batch(&draws);
        }
    }
    let (best_point, best_score) = scorer.best();
    servet_obs::counter("tune.sessions").incr();
    TuneOutcome {
        oracle: oracle.name(),
        strategy: options.strategy,
        space_digest: space.digest(),
        space_len: space.len(),
        evaluations: scorer.memo.len(),
        best: space.config(&best_point),
        best_score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Param;

    /// Deterministic synthetic oracle: a convex bowl over the value
    /// grid, with an optional per-call jitter keyed off the point so
    /// ties exist.
    struct Bowl {
        target: Vec<f64>,
    }

    impl Oracle for Bowl {
        fn name(&self) -> String {
            "bowl".into()
        }
        fn evaluate(&self, config: &Config) -> f64 {
            // Separable quadratic in the *values*, minimized at target.
            config
                .values()
                .zip(&self.target)
                .map(|(&v, t)| {
                    let d = v as f64 - t;
                    d * d
                })
                .sum()
        }
    }

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            Param::log2("a", 0, 5),       // 1..32
            Param::range("b", 0, 40, 10), // 0,10,20,30,40
            Param::fixed_set("c", &[3, 7, 11]),
        ])
    }

    fn bowl() -> Bowl {
        // BTreeMap iterates a, b, c.
        Bowl {
            target: vec![8.0, 20.0, 7.0],
        }
    }

    fn expect_best(outcome: &TuneOutcome) {
        assert_eq!(outcome.best["a"], 8);
        assert_eq!(outcome.best["b"], 20);
        assert_eq!(outcome.best["c"], 7);
        assert_eq!(outcome.best_score, 0.0);
    }

    #[test]
    fn exhaustive_finds_the_global_minimum() {
        let s = space();
        let out = tune(&bowl(), &s, &TuneOptions::new(Strategy::Exhaustive), 2);
        expect_best(&out);
        assert_eq!(out.evaluations, s.len());
        assert_eq!(out.space_len, s.len());
    }

    #[test]
    fn line_search_converges_on_separable_surface() {
        let s = space();
        let out = tune(&bowl(), &s, &TuneOptions::new(Strategy::Line), 2);
        expect_best(&out);
        assert!(out.evaluations < s.len(), "line search must not enumerate");
    }

    #[test]
    fn neighborhood_descends_to_the_minimum() {
        let s = space();
        let out = tune(&bowl(), &s, &TuneOptions::new(Strategy::Neighborhood), 2);
        expect_best(&out);
        assert!(out.evaluations < s.len());
    }

    #[test]
    fn monte_carlo_is_seed_deterministic() {
        let s = space();
        let opts = TuneOptions::new(Strategy::MonteCarlo).with_seed(99);
        let a = tune(&bowl(), &s, &opts, 1);
        let b = tune(&bowl(), &s, &opts, 3);
        assert_eq!(a, b, "same seed, different workers: identical outcome");
        let c = tune(&bowl(), &s, &opts.with_seed(100), 1);
        // A different seed draws different points (scores may tie, the
        // evaluation count almost surely differs on this space).
        assert!(c.evaluations <= opts.samples);
    }

    #[test]
    fn every_strategy_is_worker_count_invariant() {
        let s = space();
        for strategy in Strategy::ALL {
            let opts = TuneOptions::new(strategy);
            let one = tune(&bowl(), &s, &opts, 1);
            let many = tune(&bowl(), &s, &opts, 5);
            assert_eq!(one, many, "{strategy} varies with worker count");
        }
    }

    #[test]
    fn strategy_names_round_trip() {
        for strategy in Strategy::ALL {
            assert_eq!(Strategy::parse(strategy.name()), Some(strategy));
        }
        assert_eq!(Strategy::parse("monte_carlo"), Some(Strategy::MonteCarlo));
        assert_eq!(Strategy::parse("nope"), None);
    }

    #[test]
    fn options_deserialize_with_defaults() {
        // Skipped where serde_json is a panicking stub.
        let Ok(parsed) = std::panic::catch_unwind(|| {
            serde_json::from_str::<TuneOptions>(r#"{"strategy":"line"}"#)
        }) else {
            eprintln!("serde_json unavailable (stub); skipping");
            return;
        };
        assert_eq!(parsed.unwrap(), TuneOptions::new(Strategy::Line));
    }
}
