//! Gradients of a measurement series and peak detection.
//!
//! The paper's cache-level detection (Fig. 4) works on the *gradient* of the
//! mcalibrator output — `G[k] = C[k+1] / C[k]` — and looks for its peaks:
//! array sizes where the cycles-per-access curve turns upward because a cache
//! level has been exhausted.

/// Gradient of a positive series: `G[k] = c[k+1] / c[k]`, length `n - 1`.
///
/// Zero (or negative) denominators yield a gradient of 1.0 — a flat segment —
/// rather than infinities, so downstream peak detection stays well-behaved on
/// degenerate measurements.
pub fn gradient(c: &[f64]) -> Vec<f64> {
    c.windows(2)
        .map(|w| if w[0] > 0.0 { w[1] / w[0] } else { 1.0 })
        .collect()
}

/// A detected peak in a gradient series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Index of the peak's maximum within the gradient array.
    pub index: usize,
    /// Gradient value at the maximum.
    pub value: f64,
    /// First index of the contiguous above-threshold region containing the
    /// peak.
    pub start: usize,
    /// Last index (inclusive) of that region.
    pub end: usize,
}

impl Peak {
    /// Whether the above-threshold region spans a single sample.
    ///
    /// The paper's Fig. 4 branches on this: a sharp single-size peak means
    /// the cache behaves as virtually indexed (or the OS applies page
    /// coloring) and its position gives the size directly; a wide region
    /// requires the probabilistic algorithm.
    pub fn is_sharp(&self) -> bool {
        self.start == self.end
    }

    /// Number of samples in the above-threshold region.
    pub fn width(&self) -> usize {
        self.end - self.start + 1
    }
}

/// Find peaks in a gradient series.
///
/// A peak is a contiguous run of samples with value `> threshold`; the
/// reported `index`/`value` is the run's maximum. The paper treats any
/// gradient meaningfully above 1.0 as a rise; callers typically pass a
/// threshold like `1.0 + margin` where the margin rejects measurement noise.
pub fn find_peaks(g: &[f64], threshold: f64) -> Vec<Peak> {
    let mut peaks = Vec::new();
    let mut run_start: Option<usize> = None;
    for (i, &v) in g.iter().enumerate() {
        if v > threshold {
            if run_start.is_none() {
                run_start = Some(i);
            }
        } else if let Some(start) = run_start.take() {
            peaks.push(summarize_run(g, start, i - 1));
        }
    }
    if let Some(start) = run_start {
        peaks.push(summarize_run(g, start, g.len() - 1));
    }
    peaks
}

/// Merge peaks whose above-threshold regions are separated by at most
/// `max_gap` below-threshold samples.
///
/// Real miss-rate transitions of physically indexed caches are sampled
/// binomials: a wide rise can dip under the threshold for a sample or two
/// in the middle. Merging reunites such wobbly regions before the Fig. 4
/// classification decides sharp-vs-wide.
pub fn merge_peaks(peaks: Vec<Peak>, g: &[f64], max_gap: usize) -> Vec<Peak> {
    let mut out: Vec<Peak> = Vec::with_capacity(peaks.len());
    for p in peaks {
        match out.last_mut() {
            Some(prev) if p.start - prev.end - 1 <= max_gap => {
                *prev = summarize_run(g, prev.start, p.end);
            }
            _ => out.push(p),
        }
    }
    out
}

fn summarize_run(g: &[f64], start: usize, end: usize) -> Peak {
    let (index, value) = (start..=end)
        .map(|i| (i, g[i]))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty run");
    Peak {
        index,
        value,
        start,
        end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_of_constant_is_one() {
        let g = gradient(&[3.0, 3.0, 3.0, 3.0]);
        assert_eq!(g, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn gradient_length() {
        assert_eq!(gradient(&[1.0]).len(), 0);
        assert_eq!(gradient(&[1.0, 2.0, 4.0]).len(), 2);
    }

    #[test]
    fn gradient_values() {
        let g = gradient(&[2.0, 4.0, 4.0, 8.0]);
        assert_eq!(g, vec![2.0, 1.0, 2.0]);
    }

    #[test]
    fn gradient_zero_denominator_is_flat() {
        let g = gradient(&[0.0, 5.0]);
        assert_eq!(g, vec![1.0]);
    }

    #[test]
    fn no_peaks_in_flat_series() {
        assert!(find_peaks(&[1.0, 1.0, 1.0], 1.05).is_empty());
    }

    #[test]
    fn single_sharp_peak() {
        let g = [1.0, 1.0, 3.0, 1.0, 1.0];
        let peaks = find_peaks(&g, 1.1);
        assert_eq!(peaks.len(), 1);
        let p = peaks[0];
        assert_eq!(p.index, 2);
        assert_eq!(p.value, 3.0);
        assert!(p.is_sharp());
        assert_eq!(p.width(), 1);
    }

    #[test]
    fn wide_peak_region() {
        // Like Dempsey's smeared L2 transition: several consecutive sizes
        // with gradient > 1.
        let g = [1.0, 1.2, 1.5, 1.3, 1.0, 1.0];
        let peaks = find_peaks(&g, 1.1);
        assert_eq!(peaks.len(), 1);
        let p = peaks[0];
        assert_eq!((p.start, p.end), (1, 3));
        assert_eq!(p.index, 2);
        assert!(!p.is_sharp());
        assert_eq!(p.width(), 3);
    }

    #[test]
    fn multiple_separate_peaks() {
        let g = [1.0, 2.0, 1.0, 1.0, 1.8, 1.9, 1.0];
        let peaks = find_peaks(&g, 1.1);
        assert_eq!(peaks.len(), 2);
        assert_eq!(peaks[0].index, 1);
        assert_eq!((peaks[1].start, peaks[1].end), (4, 5));
        assert_eq!(peaks[1].index, 5);
    }

    #[test]
    fn trailing_peak_is_reported() {
        // Gradient still above threshold at the largest sizes — the paper's
        // Fig. 4 sends this case to the probabilistic algorithm.
        let g = [1.0, 1.0, 1.4, 1.6];
        let peaks = find_peaks(&g, 1.1);
        assert_eq!(peaks.len(), 1);
        assert_eq!((peaks[0].start, peaks[0].end), (2, 3));
    }

    #[test]
    fn merge_bridges_small_gaps() {
        let g = [1.0, 1.5, 1.0, 1.6, 1.0, 1.0, 1.0, 1.7, 1.0];
        let peaks = find_peaks(&g, 1.1);
        assert_eq!(peaks.len(), 3);
        let merged = merge_peaks(peaks, &g, 1);
        assert_eq!(merged.len(), 2);
        assert_eq!((merged[0].start, merged[0].end), (1, 3));
        assert_eq!(merged[0].index, 3); // max of the merged span
        assert_eq!((merged[1].start, merged[1].end), (7, 7));
    }

    #[test]
    fn merge_with_zero_gap_keeps_separate_runs() {
        let g = [1.5, 1.0, 1.5];
        let peaks = find_peaks(&g, 1.1);
        let merged = merge_peaks(peaks.clone(), &g, 0);
        assert_eq!(merged.len(), 2);
        let merged = merge_peaks(peaks, &g, 1);
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn merge_empty_is_empty() {
        assert!(merge_peaks(Vec::new(), &[], 3).is_empty());
    }

    #[test]
    fn threshold_is_exclusive() {
        let g = [1.5, 1.5];
        assert!(find_peaks(&g, 1.5).is_empty());
        assert_eq!(find_peaks(&g, 1.49).len(), 1);
    }
}
