//! # servet-stats
//!
//! Statistics substrate for the Servet benchmark suite.
//!
//! Every detection algorithm in the paper reduces raw timing series to a
//! handful of statistical primitives, collected here:
//!
//! * [`binomial`] — the binomial tail probability `P(X > K)` that drives the
//!   probabilistic cache-size algorithm (paper Fig. 3), computed stably in
//!   log space so that page counts in the tens of thousands do not overflow,
//!   and cheaply via mode-seeded incremental recurrences (one log-gamma
//!   evaluation per tail sum, plus the batched [`sf_curve`] that yields a
//!   candidate's whole predicted curve in a single pass).
//! * [`gradient`](mod@gradient) — gradients `C[k+1]/C[k]` of a measurement series and peak
//!   detection over them (paper Figs. 2b and 4).
//! * [`cluster`] — one-dimensional tolerance clustering used to group "similar"
//!   bandwidths (paper Fig. 6) and latencies (paper Fig. 7).
//! * [`groups`] — a union-find (disjoint-set) structure plus the pair-list →
//!   core-group inference the paper describes in §III-C ("the pairs
//!   (0,1),(0,2),(3,4),(3,5) identify two groups {0,1,2} and {3,4,5}").
//! * [`regress`] — least-squares line fitting, used by the Hockney / LogGP
//!   baseline communication models of §III-D.
//! * [`summary`] — means, medians, modes, percentiles and relative-error
//!   helpers shared by all benchmarks.

pub mod binomial;
pub mod cluster;
pub mod gradient;
pub mod groups;
pub mod regress;
pub mod summary;

pub use binomial::{sf_curve, Binomial};
pub use cluster::{cluster_by_tolerance, Cluster};
pub use gradient::{find_peaks, gradient, merge_peaks, Peak};
pub use groups::{groups_from_pairs, DisjointSet};
pub use regress::{fit_line, LineFit};
pub use summary::{geometric_mean, mean, median, mode, percentile, relative_error, stddev};
