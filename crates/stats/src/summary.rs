//! Summary statistics shared by all benchmarks.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Geometric mean of positive values. Returns 0.0 for an empty slice.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Sample standard deviation (n - 1 denominator). Returns 0.0 for fewer than
/// two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() as f64 - 1.0);
    var.sqrt()
}

/// Median (average of the two central elements for even lengths). Returns
/// 0.0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// `q`-th percentile (0.0 ..= 1.0) by linear interpolation between closest
/// ranks. Returns 0.0 for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() as f64 - 1.0);
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Statistical mode of a discrete series: the most frequent value; ties are
/// broken toward the smallest value. Returns `None` for an empty slice.
///
/// The probabilistic cache-size algorithm (paper Fig. 3) returns "the
/// statistical mode of CS using the five elements of div with the lowest
/// values".
pub fn mode<T: Ord + Copy>(xs: &[T]) -> Option<T> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort();
    let mut best = sorted[0];
    let mut best_count = 0usize;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j < sorted.len() && sorted[j] == sorted[i] {
            j += 1;
        }
        let count = j - i;
        if count > best_count {
            best = sorted[i];
            best_count = count;
        }
        i = j;
    }
    Some(best)
}

/// `|measured - expected| / |expected|`; 0.0 when both are zero, infinite
/// when only `expected` is.
pub fn relative_error(measured: f64, expected: f64) -> f64 {
    if expected == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((measured - expected) / expected).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stddev_basics() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is ~2.138.
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138).abs() < 1e-3, "s = {s}");
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 1.0), 40.0);
        assert!((percentile(&xs, 0.5) - 25.0).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn mode_picks_most_frequent() {
        assert_eq!(mode(&[1, 2, 2, 3]), Some(2));
        assert_eq!(mode::<u32>(&[]), None);
        assert_eq!(mode(&[7]), Some(7));
    }

    #[test]
    fn mode_tie_breaks_low() {
        assert_eq!(mode(&[4, 4, 9, 9, 1]), Some(4));
    }

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(9.0, 10.0) - 0.1).abs() < 1e-12);
    }
}
