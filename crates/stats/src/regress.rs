//! Least-squares line fitting.
//!
//! Used by the baseline communication models of §III-D: Hockney's linear
//! model `T(s) = L + s / B` is an ordinary least-squares fit of latency
//! against message size, and the LogGP fit reuses the same kernel per
//! protocol segment.

/// Result of fitting `y = intercept + slope * x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// `y` value at `x = 0`.
    pub intercept: f64,
    /// Change in `y` per unit `x`.
    pub slope: f64,
    /// Coefficient of determination in `[0, 1]`; 1 means a perfect fit.
    pub r_squared: f64,
}

impl LineFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Mean relative error of the fit over the given points.
    pub fn mean_relative_error(&self, xs: &[f64], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return 0.0;
        }
        let total: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let pred = self.predict(x);
                if y != 0.0 {
                    ((pred - y) / y).abs()
                } else {
                    pred.abs()
                }
            })
            .sum();
        total / xs.len() as f64
    }
}

/// Ordinary least-squares fit of `y` on `x`.
///
/// Returns `None` for fewer than two points or when all `x` are identical
/// (vertical line).
pub fn fit_line(xs: &[f64], ys: &[f64]) -> Option<LineFit> {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = xs.iter().sum::<f64>() / nf;
    let mean_y = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0 // constant y, perfectly explained by slope 0
    } else {
        (sxy * sxy / (sxx * syy)).clamp(0.0, 1.0)
    };
    Some(LineFit {
        intercept,
        slope,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 + 0.5 * x).collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!((fit.intercept - 2.5).abs() < 1e-12);
        assert!((fit.slope - 0.5).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn too_few_points() {
        assert!(fit_line(&[1.0], &[2.0]).is_none());
        assert!(fit_line(&[], &[]).is_none());
    }

    #[test]
    fn vertical_line_rejected() {
        assert!(fit_line(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn constant_y() {
        let fit = fit_line(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]).unwrap();
        assert!((fit.slope).abs() < 1e-12);
        assert!((fit.intercept - 4.0).abs() < 1e-12);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn noisy_fit_has_partial_r_squared() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.0, 1.2, 1.8, 3.3, 3.7];
        let fit = fit_line(&xs, &ys).unwrap();
        assert!(fit.r_squared > 0.9 && fit.r_squared < 1.0);
    }

    #[test]
    fn mean_relative_error_zero_for_exact() {
        let xs = [1.0, 2.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x).collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!(fit.mean_relative_error(&xs, &ys) < 1e-12);
    }

    #[test]
    fn hockney_misfits_piecewise_data() {
        // Latency with a protocol switch at s = 8: a single line cannot fit
        // both segments well — this is the paper's argument for the layered
        // characterization.
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
        let ys: Vec<f64> = xs
            .iter()
            .map(|&s| {
                if s < 8.0 {
                    1.0 + 0.1 * s
                } else {
                    10.0 + 0.5 * s
                }
            })
            .collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!(fit.mean_relative_error(&xs, &ys) > 0.2);
    }
}
