//! Union-find and pair-list → group inference.
//!
//! §III-C of the paper: "if the list in `Pm[i]` has the pairs (0,1), (0,2),
//! (3,4) and (3,5), it allows to identify two groups for the overhead
//! `BW[i]`: {0,1,2} and {3,4,5}". That is connected components over the
//! pair graph, computed here with a classic disjoint-set structure (path
//! halving + union by size).

/// Disjoint-set (union-find) over `0..n` with path halving and union by size.
#[derive(Debug, Clone)]
pub struct DisjointSet {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl DisjointSet {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x;
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets containing `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }

    /// All sets as sorted vectors, ordered by their smallest element.
    pub fn sets(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: Vec<Vec<usize>> = vec![Vec::new(); n];
        for x in 0..n {
            let r = self.find(x);
            by_root[r].push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_iter().filter(|s| !s.is_empty()).collect();
        out.sort_by_key(|s| s[0]);
        out
    }
}

/// Infer the groups of mutually colliding elements from a list of pairs,
/// exactly as the paper does for `Pm[i]` / `Pl[i]`.
///
/// Only elements that appear in at least one pair are returned (an isolated
/// core suffers no overhead and belongs to no group). Groups are sorted and
/// ordered by smallest member.
pub fn groups_from_pairs(pairs: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let Some(max) = pairs.iter().map(|&(a, b)| a.max(b)).max() else {
        return Vec::new();
    };
    let mut ds = DisjointSet::new(max + 1);
    let mut seen = vec![false; max + 1];
    for &(a, b) in pairs {
        ds.union(a, b);
        seen[a] = true;
        seen[b] = true;
    }
    ds.sets()
        .into_iter()
        .filter(|s| s.iter().any(|&x| seen[x]) && s.len() > 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example() {
        let groups = groups_from_pairs(&[(0, 1), (0, 2), (3, 4), (3, 5)]);
        assert_eq!(groups, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn empty_pairs() {
        assert!(groups_from_pairs(&[]).is_empty());
    }

    #[test]
    fn unseen_elements_excluded() {
        // Element 2 never appears in a pair: not part of any group.
        let groups = groups_from_pairs(&[(0, 1), (3, 4)]);
        assert_eq!(groups, vec![vec![0, 1], vec![3, 4]]);
    }

    #[test]
    fn transitive_chain_merges() {
        let groups = groups_from_pairs(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(groups, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn duplicate_pairs_are_idempotent() {
        let groups = groups_from_pairs(&[(5, 6), (6, 5), (5, 6)]);
        assert_eq!(groups, vec![vec![5, 6]]);
    }

    #[test]
    fn union_find_basics() {
        let mut ds = DisjointSet::new(5);
        assert_eq!(ds.components(), 5);
        assert!(ds.union(0, 1));
        assert!(!ds.union(1, 0));
        assert!(ds.connected(0, 1));
        assert!(!ds.connected(0, 2));
        assert_eq!(ds.components(), 4);
        assert_eq!(ds.set_size(0), 2);
        assert_eq!(ds.set_size(3), 1);
        assert_eq!(ds.len(), 5);
        assert!(!ds.is_empty());
    }

    #[test]
    fn sets_partition_everything() {
        let mut ds = DisjointSet::new(6);
        ds.union(0, 3);
        ds.union(4, 5);
        let sets = ds.sets();
        let total: usize = sets.iter().map(|s| s.len()).sum();
        assert_eq!(total, 6);
        assert_eq!(sets, vec![vec![0, 3], vec![1], vec![2], vec![4, 5]]);
    }

    #[test]
    fn union_by_size_keeps_find_consistent() {
        let mut ds = DisjointSet::new(8);
        for i in 0..7 {
            ds.union(i, i + 1);
        }
        assert_eq!(ds.components(), 1);
        let root = ds.find(0);
        for i in 0..8 {
            assert_eq!(ds.find(i), root);
        }
        assert_eq!(ds.set_size(7), 8);
    }
}
