//! Binomial distribution with numerically stable tail probabilities.
//!
//! The probabilistic cache-size algorithm (paper Fig. 3) models the number of
//! virtual pages `X` that land in one *page set* of a physically indexed
//! cache as `X ~ B(NP, K*PS/CS)`, where `NP` is the number of pages touched,
//! `K` the associativity, `PS` the page size and `CS` the tentative cache
//! size. The predicted steady-state miss rate of a cyclic traversal is then
//! `P(X > K)`: a set holding more than `K` pages thrashes under LRU.
//!
//! `NP` can reach tens of thousands (a 64 MB array of 4 KB pages), so the
//! probability mass function is evaluated in log space via a Lanczos
//! log-gamma.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 for positive arguments, which is far more than the
/// divergence comparison in the cache-size search needs.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for the Lanczos approximation with g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma domain error: x = {x}");
    if x < 0.5 {
        // Reflection formula keeps small arguments accurate.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)` — log of the binomial coefficient.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// A binomial distribution `B(n, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create `B(n, p)`. `p` is clamped to `[0, 1]` so callers sweeping
    /// tentative cache sizes never panic on a degenerate candidate.
    pub fn new(n: u64, p: f64) -> Self {
        Self {
            n,
            p: p.clamp(0.0, 1.0),
        }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Expected value `n * p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n * p * (1 - p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Probability mass function `P(X = k)`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        let ln = ln_choose(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln();
        ln.exp()
    }

    /// Cumulative distribution `P(X <= k)`.
    ///
    /// Sums from the lighter tail for both speed and accuracy: the cache-size
    /// search evaluates this for every `(CS, K)` candidate and every array
    /// size, so the sum is truncated once terms become negligible relative to
    /// the accumulated mass.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        let mean = self.mean();
        if (k as f64) < mean {
            // Left tail is the lighter one: sum it directly.
            self.sum_pmf_range(0, k)
        } else {
            1.0 - self.sum_pmf_range(k + 1, self.n)
        }
    }

    /// Survival function `P(X > k)` — the predicted miss rate of the paper's
    /// Fig. 3 when `k` is the cache associativity.
    pub fn sf(&self, k: u64) -> f64 {
        (1.0 - self.cdf(k)).clamp(0.0, 1.0)
    }

    /// Sum `P(X = i)` for `i` in `[lo, hi]`, walking outward from the mode so
    /// that the largest terms are accumulated first and the walk can stop
    /// early once terms underflow relative to the running sum.
    fn sum_pmf_range(&self, lo: u64, hi: u64) -> f64 {
        debug_assert!(lo <= hi);
        let mode = (self.mean().floor() as u64).clamp(lo, hi);
        // Walk down from the in-range point closest to the mode, then up.
        let mut total = 0.0f64;
        let mut k = mode;
        loop {
            let term = self.pmf(k);
            total += term;
            if term < total * 1e-16 && k < mode {
                break;
            }
            if k == lo {
                break;
            }
            k -= 1;
        }
        let mut k = mode + 1;
        while k <= hi {
            let term = self.pmf(k);
            total += term;
            if term < total * 1e-16 {
                break;
            }
            k += 1;
        }
        total.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n+1) = n!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let got = ln_gamma(n as f64 + 1.0);
            assert!(
                close(got, (f as f64).ln(), 1e-10),
                "ln_gamma({}) = {got}, want {}",
                n + 1,
                (f as f64).ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Gamma(1/2) = sqrt(pi)
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-10
        ));
    }

    #[test]
    fn ln_choose_small_values() {
        assert!(close(ln_choose(5, 2), 10.0f64.ln(), 1e-10));
        assert!(close(ln_choose(10, 5), 252.0f64.ln(), 1e-10));
        assert_eq!(ln_choose(3, 7), f64::NEG_INFINITY);
        assert!(close(ln_choose(7, 0), 0.0, 1e-12));
        assert!(close(ln_choose(7, 7), 0.0, 1e-12));
    }

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(40, 0.3);
        let total: f64 = (0..=40).map(|k| b.pmf(k)).sum();
        assert!(close(total, 1.0, 1e-12), "total = {total}");
    }

    #[test]
    fn pmf_degenerate_p() {
        let b0 = Binomial::new(10, 0.0);
        assert_eq!(b0.pmf(0), 1.0);
        assert_eq!(b0.pmf(1), 0.0);
        let b1 = Binomial::new(10, 1.0);
        assert_eq!(b1.pmf(10), 1.0);
        assert_eq!(b1.pmf(9), 0.0);
    }

    #[test]
    fn cdf_exact_small_case() {
        // B(4, 0.5): P(X <= 1) = (1 + 4) / 16
        let b = Binomial::new(4, 0.5);
        assert!(close(b.cdf(1), 5.0 / 16.0, 1e-12));
        assert!(close(b.sf(1), 11.0 / 16.0, 1e-12));
    }

    #[test]
    fn cdf_saturates() {
        let b = Binomial::new(12, 0.7);
        assert_eq!(b.cdf(12), 1.0);
        assert_eq!(b.cdf(100), 1.0);
        assert_eq!(b.sf(100), 0.0);
    }

    #[test]
    fn sf_large_n_is_stable() {
        // 64 MB of 4 KB pages = 16384 pages; must not overflow or NaN.
        let b = Binomial::new(16_384, 8.0 * 4096.0 / (12.0 * 1024.0 * 1024.0));
        let sf = b.sf(8);
        assert!(sf.is_finite());
        assert!((0.0..=1.0).contains(&sf));
        // Mean ~ 42.7 >> 8, so almost every set overflows.
        assert!(sf > 0.999, "sf = {sf}");
    }

    #[test]
    fn sf_matches_papers_dempsey_intuition() {
        // Dempsey: 2 MB 8-way cache, 4 KB pages. At 512 KB (128 pages) the
        // expected pages per page-set is 2, so overflow is rare; at 4 MB
        // (1024 pages, mean 16) overflow is near-certain.
        let p = 8.0 * 4096.0 / (2.0 * 1024.0 * 1024.0);
        let small = Binomial::new(128, p).sf(8);
        let large = Binomial::new(1024, p).sf(8);
        assert!(small < 0.01, "small = {small}");
        assert!(large > 0.95, "large = {large}");
    }

    #[test]
    fn mean_and_variance() {
        let b = Binomial::new(100, 0.25);
        assert!(close(b.mean(), 25.0, 1e-12));
        assert!(close(b.variance(), 18.75, 1e-12));
    }
}
