//! Binomial distribution with numerically stable tail probabilities.
//!
//! The probabilistic cache-size algorithm (paper Fig. 3) models the number of
//! virtual pages `X` that land in one *page set* of a physically indexed
//! cache as `X ~ B(NP, K*PS/CS)`, where `NP` is the number of pages touched,
//! `K` the associativity, `PS` the page size and `CS` the tentative cache
//! size. The predicted steady-state miss rate of a cyclic traversal is then
//! `P(X > K)`: a set holding more than `K` pages thrashes under LRU.
//!
//! `NP` can reach tens of thousands (a 64 MB array of 4 KB pages), so the
//! probability mass function is evaluated in log space via a Lanczos
//! log-gamma — but only **once per tail sum**: interior terms follow the
//! incremental recurrence `pmf(k+1) = pmf(k)·((n−k)/(k+1))·(p/(1−p))`
//! seeded at the mode, which costs one multiply where the naive kernel
//! paid three transcendental log-gamma evaluations. The [`sf_curve`]
//! batch API goes further for the Fig. 3 fit: it produces the whole
//! predicted miss-rate curve of a candidate in a single `O(max NP)` pass
//! using the companion recurrence in `n`,
//! `P(B(n+1,p) > k) = P(B(n,p) > k) + p·P(B(n,p) = k)`.
//!
//! The pre-recurrence per-term kernels survive in [`mod@reference`] as the
//! ground truth for the property tests and as the baseline of the `fit`
//! Criterion bench.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 for positive arguments, which is far more than the
/// divergence comparison in the cache-size search needs.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for the Lanczos approximation with g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma domain error: x = {x}");
    if x < 0.5 {
        // Reflection formula keeps small arguments accurate.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)` — log of the binomial coefficient.
///
/// Not computed as `lnΓ(n+1) − lnΓ(k+1) − lnΓ(n−k+1)`: those three terms
/// grow like `n·ln n` while their difference stays `O(n·H(k/n))`, so the
/// cancellation wipes out up to five digits for `n ~ 1e5` and the pmf
/// built on it cannot meet the 1e-12 agreement the recurrence kernels are
/// property-tested to. Instead:
///
/// * `min(k, n−k) ≤ 64`: the exact product form
///   `ln C(n,k) = Σ ln((n−m+i)/i)` — every term is `O(ln n)`, no
///   cancellation at all;
/// * otherwise a Stirling expansion combined *analytically*, so each term
///   is already of the result's magnitude and nothing large cancels:
///   with `A = n+1`, `B = k+1`, `C = n−k+1` (note `B + C = A + 1`),
///   `ln C(n,k) = (B−½)ln(A/B) + (C−½)ln(A/C) − ½ln(2πA) + 1
///                + σ(A) − σ(B) − σ(C)`
///   where `σ(x) = 1/12x − 1/360x³ + 1/1260x⁵ − 1/1680x⁷` is the Stirling
///   correction; for arguments ≥ 65 the truncation error is below 1e-16.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let m = k.min(n - k);
    if m == 0 {
        return 0.0;
    }
    if m <= 64 {
        let mut acc = 0.0f64;
        for i in 1..=m {
            acc += ((n - m + i) as f64 / i as f64).ln();
        }
        return acc;
    }
    fn sigma(x: f64) -> f64 {
        let x2 = x * x;
        (1.0 / 12.0 - (1.0 / 360.0 - (1.0 / 1260.0 - 1.0 / (1680.0 * x2)) / x2) / x2) / x
    }
    let a = (n + 1) as f64;
    let b = (k + 1) as f64;
    let c = (n - k + 1) as f64;
    (b - 0.5) * (a / b).ln() + (c - 0.5) * (a / c).ln()
        - 0.5 * (2.0 * std::f64::consts::PI * a).ln()
        + 1.0
        + sigma(a)
        - sigma(b)
        - sigma(c)
}

/// A binomial distribution `B(n, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create `B(n, p)`. `p` is clamped to `[0, 1]` so callers sweeping
    /// tentative cache sizes never panic on a degenerate candidate.
    pub fn new(n: u64, p: f64) -> Self {
        Self {
            n,
            p: p.clamp(0.0, 1.0),
        }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Expected value `n * p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n * p * (1 - p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Probability mass function `P(X = k)`.
    pub fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        let ln = ln_choose(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln();
        ln.exp()
    }

    /// Cumulative distribution `P(X <= k)`.
    ///
    /// Sums from the lighter tail for both speed and accuracy: the cache-size
    /// search evaluates this for every `(CS, K)` candidate and every array
    /// size, so the sum is truncated once terms become negligible relative to
    /// the accumulated mass.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        let mean = self.mean();
        if (k as f64) < mean {
            // Left tail is the lighter one: sum it directly.
            self.sum_pmf_range(0, k)
        } else {
            1.0 - self.sum_pmf_range(k + 1, self.n)
        }
    }

    /// Survival function `P(X > k)` — the predicted miss rate of the paper's
    /// Fig. 3 when `k` is the cache associativity.
    pub fn sf(&self, k: u64) -> f64 {
        (1.0 - self.cdf(k)).clamp(0.0, 1.0)
    }

    /// Sum `P(X = i)` for `i` in `[lo, hi]`, walking outward from the mode so
    /// that the largest terms are accumulated first and the walk can stop
    /// early once terms underflow relative to the running sum.
    ///
    /// Only the seed term at the mode is evaluated in log space; every
    /// other term follows the one-multiply recurrence
    /// `pmf(k±1) = pmf(k) · ratio(k)`, which is what makes the Fig. 3
    /// candidate sweep cheap (`NP` in the tens of thousands means millions
    /// of terms per smeared window).
    fn sum_pmf_range(&self, lo: u64, hi: u64) -> f64 {
        debug_assert!(lo <= hi);
        let n = self.n;
        let p = self.p;
        // Degenerate distributions put all mass on one point; the ratio
        // recurrence would divide by zero, so answer directly.
        if p == 0.0 {
            return if lo == 0 { 1.0 } else { 0.0 };
        }
        if p == 1.0 {
            return if lo <= n && n <= hi { 1.0 } else { 0.0 };
        }
        if lo > n {
            return 0.0;
        }
        let hi = hi.min(n);
        let q = 1.0 - p;
        let down = q / p;
        let up = p / q;
        let mode = (self.mean().floor() as u64).clamp(lo, hi);
        let seed = self.pmf(mode);
        // Walk down from the in-range point closest to the mode, then up.
        let mut total = 0.0f64;
        let mut term = seed;
        let mut k = mode;
        loop {
            total += term;
            if term < total * 1e-16 && k < mode {
                break;
            }
            if k == lo {
                break;
            }
            // pmf(k-1) = pmf(k) · (k / (n-k+1)) · (q/p); k ≥ 1 here
            // because the `k == lo` check above bounds the walk.
            term *= (k as f64 / (n - k + 1) as f64) * down;
            k -= 1;
        }
        let mut term = seed;
        let mut k = mode;
        while k < hi {
            // pmf(k+1) = pmf(k) · ((n-k) / (k+1)) · (p/q); k < hi ≤ n.
            term *= ((n - k) as f64 / (k + 1) as f64) * up;
            k += 1;
            total += term;
            if term < total * 1e-16 {
                break;
            }
        }
        total.clamp(0.0, 1.0)
    }

    /// `P(X = i)` for every `i` in `[lo, hi]`, via the same mode-seeded
    /// incremental recurrence as the tail sums — one log-gamma evaluation
    /// for the whole range. The property tests pin this against the
    /// per-point log-gamma [`Self::pmf`].
    pub fn pmf_range(&self, lo: u64, hi: u64) -> Vec<f64> {
        assert!(lo <= hi, "pmf_range: lo {lo} > hi {hi}");
        let len = usize::try_from(hi - lo).expect("range fits in memory") + 1;
        let mut out = vec![0.0f64; len];
        let n = self.n;
        let p = self.p;
        if p == 0.0 || p == 1.0 {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self.pmf(lo + i as u64);
            }
            return out;
        }
        if lo > n {
            return out;
        }
        let hi = hi.min(n);
        let q = 1.0 - p;
        let down = q / p;
        let up = p / q;
        let mode = (self.mean().floor() as u64).clamp(lo, hi);
        let seed = self.pmf(mode);
        let mut term = seed;
        let mut k = mode;
        loop {
            out[(k - lo) as usize] = term;
            if k == lo {
                break;
            }
            term *= (k as f64 / (n - k + 1) as f64) * down;
            k -= 1;
        }
        let mut term = seed;
        let mut k = mode;
        while k < hi {
            term *= ((n - k) as f64 / (k + 1) as f64) * up;
            k += 1;
            out[(k - lo) as usize] = term;
        }
        out
    }
}

/// Survival curve `P(B(n, p) > k)` for every `n` in `np_values`, computed
/// in one `O(max(np_values))` pass.
///
/// The Fig. 3 fit evaluates one `(CS, K)` candidate against *every* array
/// size of a smeared transition window; calling [`Binomial::sf`] per size
/// repeats the tail walk from scratch each time. This batch form instead
/// advances the pair of recurrences in the trial count `n`
///
/// ```text
/// P(B(n+1,p) > k) = P(B(n,p) > k) + p · P(B(n,p) = k)
/// P(B(n+1,p) = k) = P(B(n,p) = k) · (1-p) · (n+1) / (n+1-k)
/// ```
///
/// from `n = k` upward, reading off the curve at each requested page
/// count. `np_values` may be in any order (results come back positionally)
/// and `p` is clamped to `[0, 1]` like [`Binomial::new`].
pub fn sf_curve(np_values: &[u64], p: f64, k: u64) -> Vec<f64> {
    let p = p.clamp(0.0, 1.0);
    let mut out = vec![0.0f64; np_values.len()];
    if np_values.is_empty() || p == 0.0 {
        // With p = 0, X is identically 0 and P(X > k) = 0 for every k ≥ 0.
        return out;
    }
    if p == 1.0 {
        for (slot, &n) in out.iter_mut().zip(np_values) {
            *slot = if n > k { 1.0 } else { 0.0 };
        }
        return out;
    }
    let mut order: Vec<usize> = (0..np_values.len()).collect();
    order.sort_by_key(|&i| np_values[i]);
    let q = 1.0 - p;
    // State at trial count m ≥ k: `sf = P(B(m,p) > k)`, `pmfk = P(B(m,p) = k)`.
    // Seeded at m = k, where sf = 0 and pmfk = p^k.
    let mut m = k;
    let mut sf = 0.0f64;
    let mut pmfk = (k as f64 * p.ln()).exp();
    for &i in &order {
        let target = np_values[i];
        // target ≤ k leaves the seed state: P(B(n,p) > k) = 0 for n ≤ k.
        while m < target {
            // Once past the peak of P(B(m,p) = k) (at m ≈ k/p) the term
            // decays geometrically; when it underflows toward subnormal
            // range it can no longer move `sf`, and grinding through
            // subnormal multiplies costs a microcode trap per step. Freeze
            // the converged state and jump to the target.
            if pmfk < f64::MIN_POSITIVE && (m as f64) * p > k as f64 {
                pmfk = 0.0;
                m = target;
                break;
            }
            sf += p * pmfk;
            pmfk *= q * (m + 1) as f64 / (m + 1 - k) as f64;
            m += 1;
        }
        out[i] = sf.min(1.0);
    }
    out
}

/// The pre-recurrence kernels: every pmf term pays its own three
/// log-gamma evaluations.
///
/// Kept as the ground truth the property tests compare the incremental
/// recurrence against, and as the baseline the `fit` Criterion bench
/// measures the speedup from. Not used on any hot path.
pub mod reference {
    use super::Binomial;

    /// Per-point log-gamma pmf (identical to [`Binomial::pmf`]).
    pub fn pmf(n: u64, p: f64, k: u64) -> f64 {
        Binomial::new(n, p).pmf(k)
    }

    /// Survival `P(X > k)` with every term of the tail sum evaluated
    /// independently in log space — the kernel `sum_pmf_range` used
    /// before the recurrence rewrite.
    pub fn sf(n: u64, p: f64, k: u64) -> f64 {
        (1.0 - cdf(n, p, k)).clamp(0.0, 1.0)
    }

    /// Cumulative `P(X <= k)` over per-term log-gamma pmfs.
    pub fn cdf(n: u64, p: f64, k: u64) -> f64 {
        let b = Binomial::new(n, p);
        if k >= n {
            return 1.0;
        }
        if (k as f64) < b.mean() {
            sum_pmf_range(&b, 0, k)
        } else {
            1.0 - sum_pmf_range(&b, k + 1, n)
        }
    }

    fn sum_pmf_range(b: &Binomial, lo: u64, hi: u64) -> f64 {
        let mode = (b.mean().floor() as u64).clamp(lo, hi);
        let mut total = 0.0f64;
        let mut k = mode;
        loop {
            let term = b.pmf(k);
            total += term;
            if term < total * 1e-16 && k < mode {
                break;
            }
            if k == lo {
                break;
            }
            k -= 1;
        }
        let mut k = mode + 1;
        while k <= hi {
            let term = b.pmf(k);
            total += term;
            if term < total * 1e-16 {
                break;
            }
            k += 1;
        }
        total.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n+1) = n!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let got = ln_gamma(n as f64 + 1.0);
            assert!(
                close(got, (f as f64).ln(), 1e-10),
                "ln_gamma({}) = {got}, want {}",
                n + 1,
                (f as f64).ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Gamma(1/2) = sqrt(pi)
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-10
        ));
    }

    #[test]
    fn ln_choose_small_values() {
        assert!(close(ln_choose(5, 2), 10.0f64.ln(), 1e-10));
        assert!(close(ln_choose(10, 5), 252.0f64.ln(), 1e-10));
        assert_eq!(ln_choose(3, 7), f64::NEG_INFINITY);
        assert!(close(ln_choose(7, 0), 0.0, 1e-12));
        assert!(close(ln_choose(7, 7), 0.0, 1e-12));
    }

    #[test]
    fn ln_choose_stirling_matches_exact_product() {
        // The m > 64 Stirling path against the exact product form, across
        // the threshold and up to the n = 1e5 the property tests cover.
        // Tolerance is relative to the (large) log value.
        for &(n, k) in &[
            (130u64, 65u64),
            (200, 100),
            (4_096, 70),
            (4_096, 2_048),
            (100_000, 65),
            (100_000, 1_000),
            (100_000, 50_000),
        ] {
            let m = k.min(n - k);
            // Kahan-summed product form, so the oracle's own rounding
            // stays far below the tolerance even at 50 000 terms.
            let (mut exact, mut carry) = (0.0f64, 0.0f64);
            for i in 1..=m {
                let term = ((n - m + i) as f64 / i as f64).ln() - carry;
                let next = exact + term;
                carry = (next - exact) - term;
                exact = next;
            }
            let got = ln_choose(n, k);
            assert!(
                close(got, exact, 1e-12 * exact.abs().max(1.0)),
                "ln_choose({n}, {k}) = {got}, exact sum {exact}"
            );
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(40, 0.3);
        let total: f64 = (0..=40).map(|k| b.pmf(k)).sum();
        assert!(close(total, 1.0, 1e-12), "total = {total}");
    }

    #[test]
    fn pmf_degenerate_p() {
        let b0 = Binomial::new(10, 0.0);
        assert_eq!(b0.pmf(0), 1.0);
        assert_eq!(b0.pmf(1), 0.0);
        let b1 = Binomial::new(10, 1.0);
        assert_eq!(b1.pmf(10), 1.0);
        assert_eq!(b1.pmf(9), 0.0);
    }

    #[test]
    fn cdf_exact_small_case() {
        // B(4, 0.5): P(X <= 1) = (1 + 4) / 16
        let b = Binomial::new(4, 0.5);
        assert!(close(b.cdf(1), 5.0 / 16.0, 1e-12));
        assert!(close(b.sf(1), 11.0 / 16.0, 1e-12));
    }

    #[test]
    fn cdf_saturates() {
        let b = Binomial::new(12, 0.7);
        assert_eq!(b.cdf(12), 1.0);
        assert_eq!(b.cdf(100), 1.0);
        assert_eq!(b.sf(100), 0.0);
    }

    #[test]
    fn sf_large_n_is_stable() {
        // 64 MB of 4 KB pages = 16384 pages; must not overflow or NaN.
        let b = Binomial::new(16_384, 8.0 * 4096.0 / (12.0 * 1024.0 * 1024.0));
        let sf = b.sf(8);
        assert!(sf.is_finite());
        assert!((0.0..=1.0).contains(&sf));
        // Mean ~ 42.7 >> 8, so almost every set overflows.
        assert!(sf > 0.999, "sf = {sf}");
    }

    #[test]
    fn sf_matches_papers_dempsey_intuition() {
        // Dempsey: 2 MB 8-way cache, 4 KB pages. At 512 KB (128 pages) the
        // expected pages per page-set is 2, so overflow is rare; at 4 MB
        // (1024 pages, mean 16) overflow is near-certain.
        let p = 8.0 * 4096.0 / (2.0 * 1024.0 * 1024.0);
        let small = Binomial::new(128, p).sf(8);
        let large = Binomial::new(1024, p).sf(8);
        assert!(small < 0.01, "small = {small}");
        assert!(large > 0.95, "large = {large}");
    }

    #[test]
    fn mean_and_variance() {
        let b = Binomial::new(100, 0.25);
        assert!(close(b.mean(), 25.0, 1e-12));
        assert!(close(b.variance(), 18.75, 1e-12));
    }

    /// Exact enumeration oracle: `P(X > k)` summed from u128 binomial
    /// coefficients, exact for small `n`.
    fn sf_exact(n: u64, p: f64, k: u64) -> f64 {
        fn choose(n: u64, k: u64) -> u128 {
            let mut acc: u128 = 1;
            for i in 0..k.min(n - k) {
                acc = acc * (n - i) as u128 / (i + 1) as u128;
            }
            acc
        }
        if k >= n {
            return 0.0;
        }
        let q = 1.0 - p;
        ((k + 1)..=n)
            .map(|i| choose(n, i) as f64 * p.powi(i as i32) * q.powi((n - i) as i32))
            .sum()
    }

    #[test]
    fn sf_matches_exact_enumeration_small_n() {
        for n in 1u64..=20 {
            for &p in &[0.0, 1e-4, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0] {
                let b = Binomial::new(n, p);
                for k in 0..=n {
                    let got = b.sf(k);
                    let want = sf_exact(n, p, k);
                    assert!(
                        close(got, want, 1e-12),
                        "sf(n={n}, p={p}, k={k}) = {got}, exact {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn recurrence_pmf_matches_log_gamma_pmf() {
        // The incremental recurrence must track the per-point log-gamma
        // evaluation to ≤ 1e-12 absolute across the whole support, for n
        // up to 1e5 and the full spread of Fig. 3 candidate probabilities.
        for &n in &[1u64, 7, 100, 4_096, 100_000] {
            for &p in &[1e-4, 0.01, 0.5, 0.99] {
                let b = Binomial::new(n, p);
                let got = b.pmf_range(0, n);
                for (k, &term) in got.iter().enumerate() {
                    let want = b.pmf(k as u64);
                    assert!(
                        close(term, want, 1e-12),
                        "pmf_range(n={n}, p={p})[{k}] = {term}, log-gamma {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn recurrence_pmf_partial_ranges_and_degenerates() {
        let b = Binomial::new(50, 0.3);
        let got = b.pmf_range(10, 20);
        for (i, &term) in got.iter().enumerate() {
            assert!(close(term, b.pmf(10 + i as u64), 1e-13));
        }
        // Ranges past n are zero-padded, not a panic.
        let tail = b.pmf_range(48, 55);
        assert_eq!(tail.len(), 8);
        assert!(tail[3..].iter().all(|&t| t == 0.0));
        assert!(Binomial::new(9, 0.5)
            .pmf_range(12, 14)
            .iter()
            .all(|&t| t == 0.0));
        // Degenerate p delegates to the exact point masses.
        assert_eq!(
            Binomial::new(5, 0.0).pmf_range(0, 5),
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        );
        assert_eq!(Binomial::new(5, 1.0).pmf_range(4, 5), vec![0.0, 1.0]);
    }

    #[test]
    fn sf_curve_matches_per_point_sf() {
        // The n-direction recurrence must agree with the k-direction tail
        // walk at every page count of a realistic window, across the
        // candidate-probability spread of the default grid.
        let np: Vec<u64> = (1..=16).map(|i| i * 1024).collect();
        for &p in &[1e-4, 1e-3, 0.01, 0.1, 0.5, 0.99] {
            for &k in &[0u64, 2, 8, 18, 32] {
                let curve = sf_curve(&np, p, k);
                for (i, &n) in np.iter().enumerate() {
                    let want = Binomial::new(n, p).sf(k);
                    assert!(
                        close(curve[i], want, 1e-9),
                        "sf_curve(n={n}, p={p}, k={k}) = {}, sf {want}",
                        curve[i]
                    );
                }
            }
        }
    }

    #[test]
    fn sf_curve_handles_order_duplicates_and_degenerates() {
        // Unsorted and duplicated page counts come back positionally.
        let np = vec![900u64, 100, 900, 5, 0];
        let curve = sf_curve(&np, 0.02, 8);
        assert!(close(curve[0], Binomial::new(900, 0.02).sf(8), 1e-9));
        assert!(close(curve[1], Binomial::new(100, 0.02).sf(8), 1e-9));
        assert_eq!(curve[0], curve[2]);
        assert_eq!(curve[3], 0.0, "n ≤ k ⇒ sf = 0");
        assert_eq!(curve[4], 0.0);
        assert_eq!(sf_curve(&[], 0.3, 4), Vec::<f64>::new());
        assert_eq!(sf_curve(&[10, 20], 0.0, 4), vec![0.0, 0.0]);
        assert_eq!(sf_curve(&[10, 3, 4], 1.0, 4), vec![1.0, 0.0, 0.0]);
        // Out-of-range p is clamped like Binomial::new.
        assert_eq!(sf_curve(&[10], -0.5, 4), vec![0.0]);
        assert_eq!(sf_curve(&[10], 7.5, 4), vec![1.0]);
    }

    #[test]
    fn reference_kernels_agree_with_fast_kernels() {
        // The retained pre-recurrence kernels and the rewritten ones are
        // the same function, merely at different cost.
        for &(n, p) in &[
            (40u64, 0.3f64),
            (16_384, 8.0 * 4096.0 / (12.0 * 1024.0 * 1024.0)),
        ] {
            let b = Binomial::new(n, p);
            for k in [0u64, 1, 8, 40, 200] {
                assert!(close(reference::sf(n, p, k), b.sf(k), 1e-12));
                assert!(close(reference::pmf(n, p, k), b.pmf(k), 1e-15));
            }
        }
    }
}
