//! One-dimensional tolerance clustering.
//!
//! The memory-overhead benchmark (paper Fig. 6) and the communication-cost
//! benchmark (paper Fig. 7) both accumulate measurements into buckets of
//! "similar" values: a new bandwidth/latency joins an existing bucket if it is
//! close to that bucket's value, otherwise it opens a new one. This module
//! implements that incremental scheme generically, keyed by an arbitrary item
//! type (core pairs, in the paper).

use serde::{Deserialize, Serialize};

/// A cluster of similar scalar measurements and the items that produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster<T> {
    /// Representative value: running mean of the members.
    pub value: f64,
    /// Items whose measurement fell within tolerance of `value`.
    pub members: Vec<T>,
    sum: f64,
}

impl<T> Cluster<T> {
    fn new(value: f64, first: T) -> Self {
        Self {
            value,
            members: vec![first],
            sum: value,
        }
    }

    fn push(&mut self, value: f64, item: T) {
        self.sum += value;
        self.members.push(item);
        self.value = self.sum / self.members.len() as f64;
    }

    /// Number of member items.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members (never true for clusters produced
    /// by [`cluster_by_tolerance`]).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Whether two values are within relative tolerance `tol` of each other,
/// measured against the larger magnitude. `tol = 0.25` means "within 25 %".
pub fn within_tolerance(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        return true;
    }
    (a - b).abs() <= tol * scale
}

/// Incrementally cluster `(value, item)` measurements.
///
/// Each measurement joins the first existing cluster whose representative is
/// within relative tolerance `tol`; otherwise a new cluster is opened. This
/// mirrors the paper's `BW`/`Pm` (Fig. 6) and `L`/`Pl` (Fig. 7) arrays
/// exactly, including the first-match rule.
pub fn cluster_by_tolerance<T>(
    measurements: impl IntoIterator<Item = (f64, T)>,
    tol: f64,
) -> Vec<Cluster<T>> {
    let mut clusters: Vec<Cluster<T>> = Vec::new();
    for (value, item) in measurements {
        match clusters
            .iter_mut()
            .find(|c| within_tolerance(c.value, value, tol))
        {
            Some(c) => c.push(value, item),
            None => clusters.push(Cluster::new(value, item)),
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_no_clusters() {
        let clusters: Vec<Cluster<u32>> = cluster_by_tolerance(Vec::new(), 0.1);
        assert!(clusters.is_empty());
    }

    #[test]
    fn identical_values_form_one_cluster() {
        let c = cluster_by_tolerance([(5.0, 'a'), (5.0, 'b'), (5.0, 'c')], 0.01);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].members, vec!['a', 'b', 'c']);
        assert_eq!(c[0].value, 5.0);
        assert_eq!(c[0].len(), 3);
        assert!(!c[0].is_empty());
    }

    #[test]
    fn distant_values_split() {
        let c = cluster_by_tolerance([(1.0, 0), (10.0, 1), (1.05, 2)], 0.1);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].members, vec![0, 2]);
        assert_eq!(c[1].members, vec![1]);
    }

    #[test]
    fn representative_is_running_mean() {
        let c = cluster_by_tolerance([(10.0, ()), (12.0, ())], 0.25);
        assert_eq!(c.len(), 1);
        assert!((c[0].value - 11.0).abs() < 1e-12);
    }

    #[test]
    fn tolerance_measured_against_larger() {
        // 8 vs 10: diff 2, larger 10, ratio 0.2.
        assert!(within_tolerance(8.0, 10.0, 0.2));
        assert!(!within_tolerance(8.0, 10.0, 0.19));
        assert!(within_tolerance(0.0, 0.0, 0.0));
    }

    #[test]
    fn paper_fig6_shape() {
        // Finis Terrae-like two-overhead structure: bus pairs ~2.2, cell
        // pairs ~3.0, measured with small noise.
        let data = [
            (2.25, (0u32, 1u32)),
            (2.18, (0, 2)),
            (2.22, (0, 3)),
            (3.01, (0, 4)),
            (2.95, (0, 5)),
            (3.05, (0, 6)),
            (2.99, (0, 7)),
        ];
        let c = cluster_by_tolerance(data, 0.1);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].members.len(), 3);
        assert_eq!(c[1].members.len(), 4);
    }

    #[test]
    fn first_match_rule() {
        // A value within tolerance of two clusters joins the earlier one,
        // matching the paper's sequential search through BW[i].
        let c = cluster_by_tolerance([(1.0, 'a'), (1.3, 'b'), (1.15, 'c')], 0.2);
        assert_eq!(c.len(), 2, "{c:?}");
        assert!(c[0].members.contains(&'c'));
    }
}
