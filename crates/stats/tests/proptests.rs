//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use servet_stats::binomial::{reference, sf_curve, Binomial};
use servet_stats::cluster::{cluster_by_tolerance, within_tolerance};
use servet_stats::gradient::{find_peaks, gradient};
use servet_stats::groups::{groups_from_pairs, DisjointSet};
use servet_stats::regress::fit_line;
use servet_stats::summary::{mean, median, mode, percentile, stddev};

proptest! {
    #[test]
    fn binomial_sf_in_unit_interval(n in 0u64..5000, p in 0.0f64..=1.0, k in 0u64..5100) {
        let sf = Binomial::new(n, p).sf(k);
        prop_assert!((0.0..=1.0).contains(&sf), "sf = {sf}");
        prop_assert!(sf.is_finite());
    }

    #[test]
    fn binomial_cdf_monotone_in_k(n in 1u64..2000, p in 0.01f64..0.99) {
        let b = Binomial::new(n, p);
        let ks: Vec<u64> = (0..=n.min(50)).collect();
        let mut prev = -1.0;
        for &k in &ks {
            let c = b.cdf(k);
            prop_assert!(c + 1e-12 >= prev, "cdf not monotone at k={k}: {c} < {prev}");
            prev = c;
        }
    }

    #[test]
    fn binomial_cdf_plus_sf_is_one(n in 1u64..2000, p in 0.0f64..=1.0, k in 0u64..2000) {
        let b = Binomial::new(n, p);
        let total = b.cdf(k) + b.sf(k);
        prop_assert!((total - 1.0).abs() < 1e-9, "cdf+sf = {total}");
    }

    #[test]
    fn recurrence_pmf_tracks_log_gamma_pmf(n in 1u64..100_000, pi in 0usize..4) {
        // Tentpole invariant: the mode-seeded incremental recurrence and
        // the per-point log-gamma kernel are the same pmf to ≤ 1e-12,
        // for n up to 1e5 across the Fig. 3 probability spread.
        let p = [1e-4, 0.01, 0.5, 0.99][pi];
        let b = Binomial::new(n, p);
        // The full support would be O(n) log-gamma calls per case; check
        // a window around the mode (where mass lives) plus both edges.
        let mode = (b.mean().floor() as u64).min(n);
        let lo = mode.saturating_sub(64);
        let hi = (mode + 64).min(n);
        let range = b.pmf_range(lo, hi);
        for (i, &term) in range.iter().enumerate() {
            let k = lo + i as u64;
            let want = b.pmf(k);
            prop_assert!(
                (term - want).abs() <= 1e-12,
                "pmf(n={}, p={}, k={}) recurrence {} vs log-gamma {}", n, p, k, term, want
            );
        }
        for k in [0u64, n / 2, n] {
            let got = b.pmf_range(k, k)[0];
            prop_assert!((got - b.pmf(k)).abs() <= 1e-12);
        }
    }

    #[test]
    fn sf_curve_tracks_per_point_sf(
        np in prop::collection::vec(0u64..20_000, 1..24),
        pi in 0usize..5,
        k in 0u64..33,
    ) {
        let p = [1e-4, 0.01, 0.1, 0.5, 0.99][pi];
        let curve = sf_curve(&np, p, k);
        prop_assert_eq!(curve.len(), np.len());
        for (i, &n) in np.iter().enumerate() {
            let want = Binomial::new(n, p).sf(k);
            prop_assert!(
                (curve[i] - want).abs() <= 1e-9,
                "sf_curve(n={}, p={}, k={}) = {} vs sf {}", n, p, k, curve[i], want
            );
            prop_assert!((0.0..=1.0).contains(&curve[i]));
        }
    }

    #[test]
    fn fast_sf_matches_reference_kernel(n in 0u64..30_000, p in 0.0f64..=1.0, k in 0u64..64) {
        // The rewritten tail sum and the retained pre-recurrence kernel
        // must be interchangeable.
        let fast = Binomial::new(n, p).sf(k);
        let slow = reference::sf(n, p, k);
        prop_assert!((fast - slow).abs() <= 1e-12, "fast {} vs reference {}", fast, slow);
    }

    #[test]
    fn binomial_sf_monotone_in_n(p in 0.05f64..0.5, k in 1u64..8) {
        // More pages -> more overflow: sf(k) must not decrease with n.
        let mut prev = 0.0;
        for n in [10u64, 50, 100, 500, 1000] {
            let sf = Binomial::new(n, p).sf(k);
            prop_assert!(sf + 1e-9 >= prev, "sf not monotone at n={n}");
            prev = sf;
        }
    }

    #[test]
    fn gradient_positive_series(c in prop::collection::vec(0.1f64..1e6, 2..64)) {
        let g = gradient(&c);
        prop_assert_eq!(g.len(), c.len() - 1);
        for (k, &v) in g.iter().enumerate() {
            prop_assert!((v - c[k + 1] / c[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn peaks_are_above_threshold_and_disjoint(
        g in prop::collection::vec(0.5f64..3.0, 0..64),
        threshold in 0.9f64..2.0,
    ) {
        let peaks = find_peaks(&g, threshold);
        for p in &peaks {
            prop_assert!(p.value > threshold);
            prop_assert!(p.start <= p.index && p.index <= p.end);
            for i in p.start..=p.end {
                prop_assert!(g[i] > threshold);
            }
            // Region is maximal.
            if p.start > 0 {
                prop_assert!(g[p.start - 1] <= threshold);
            }
            if p.end + 1 < g.len() {
                prop_assert!(g[p.end + 1] <= threshold);
            }
        }
        for w in peaks.windows(2) {
            prop_assert!(w[0].end < w[1].start);
        }
    }

    #[test]
    fn clusters_partition_items(
        values in prop::collection::vec(0.1f64..100.0, 0..40),
        tol in 0.0f64..0.5,
    ) {
        let items: Vec<(f64, usize)> =
            values.iter().copied().zip(0..values.len()).collect();
        let clusters = cluster_by_tolerance(items, tol);
        let mut seen: Vec<usize> = clusters.iter().flat_map(|c| c.members.clone()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..values.len()).collect::<Vec<_>>());
        for c in &clusters {
            prop_assert!(!c.is_empty());
        }
    }

    #[test]
    fn within_tolerance_is_symmetric(a in -1e6f64..1e6, b in -1e6f64..1e6, tol in 0.0f64..1.0) {
        prop_assert_eq!(within_tolerance(a, b, tol), within_tolerance(b, a, tol));
    }

    #[test]
    fn groups_cover_only_paired_elements(
        pairs in prop::collection::vec((0usize..32, 0usize..32), 0..64),
    ) {
        let pairs: Vec<(usize, usize)> =
            pairs.into_iter().filter(|&(a, b)| a != b).collect();
        let groups = groups_from_pairs(&pairs);
        // Every paired element appears exactly once across groups.
        let mut paired: Vec<usize> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        paired.sort_unstable();
        paired.dedup();
        let mut grouped: Vec<usize> = groups.iter().flatten().copied().collect();
        grouped.sort_unstable();
        prop_assert_eq!(grouped.clone(), paired);
        // Both endpoints of every pair are in the same group.
        for &(a, b) in &pairs {
            let ga = groups.iter().position(|g| g.contains(&a));
            let gb = groups.iter().position(|g| g.contains(&b));
            prop_assert_eq!(ga, gb);
        }
    }

    #[test]
    fn disjoint_set_components_decrease_only(
        n in 1usize..64,
        ops in prop::collection::vec((0usize..64, 0usize..64), 0..128),
    ) {
        let mut ds = DisjointSet::new(n);
        let mut prev = ds.components();
        for (a, b) in ops {
            let (a, b) = (a % n, b % n);
            let merged = ds.union(a, b);
            let now = ds.components();
            if merged {
                prop_assert_eq!(now, prev - 1);
            } else {
                prop_assert_eq!(now, prev);
            }
            prop_assert!(ds.connected(a, b));
            prev = now;
        }
        let total: usize = ds.sets().iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn fit_line_recovers_exact_lines(
        intercept in -100.0f64..100.0,
        slope in -10.0f64..10.0,
        n in 3usize..20,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| intercept + slope * x).collect();
        let fit = fit_line(&xs, &ys).unwrap();
        prop_assert!((fit.intercept - intercept).abs() < 1e-6);
        prop_assert!((fit.slope - slope).abs() < 1e-6);
    }

    #[test]
    fn median_between_min_and_max(xs in prop::collection::vec(-1e6f64..1e6, 1..64)) {
        let m = median(&xs);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn percentile_monotone(xs in prop::collection::vec(-1e3f64..1e3, 1..32)) {
        let p25 = percentile(&xs, 0.25);
        let p50 = percentile(&xs, 0.50);
        let p75 = percentile(&xs, 0.75);
        prop_assert!(p25 <= p50 && p50 <= p75);
        prop_assert!((p50 - median(&xs)).abs() < 1e-9);
    }

    #[test]
    fn mode_is_a_member(xs in prop::collection::vec(0u32..10, 1..64)) {
        let m = mode(&xs).unwrap();
        prop_assert!(xs.contains(&m));
    }

    #[test]
    fn stddev_nonnegative_and_shift_invariant(
        xs in prop::collection::vec(-1e3f64..1e3, 2..32),
        shift in -1e3f64..1e3,
    ) {
        let s = stddev(&xs);
        prop_assert!(s >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|&x| x + shift).collect();
        prop_assert!((stddev(&shifted) - s).abs() < 1e-6);
        let _ = mean(&xs);
    }
}
