//! Regenerates the paper artifact `fig10a` (see DESIGN.md for the index).

fn main() {
    let report = servet_bench::experiments::comm::fig10a();
    report.print();
    if let Ok(dir) = report.save_tsv("results") {
        println!("\nseries written to {}", dir.display());
    }
}
