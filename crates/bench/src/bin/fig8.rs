//! Regenerates the paper artifact `fig8` (see DESIGN.md for the index).

fn main() {
    let report = servet_bench::experiments::shared::fig8();
    report.print();
    if let Ok(dir) = report.save_tsv("results") {
        println!("\nseries written to {}", dir.display());
    }
}
