//! Regenerates the paper artifact `ablation_models` (see DESIGN.md for the index).

fn main() {
    let report = servet_bench::experiments::comm::ablation_models();
    report.print();
    if let Ok(dir) = report.save_tsv("results") {
        println!("\nseries written to {}", dir.display());
    }
}
