//! Regenerates the paper artifact `fig10b` (see DESIGN.md for the index).

fn main() {
    let report = servet_bench::experiments::comm::fig10b();
    report.print();
    if let Ok(dir) = report.save_tsv("results") {
        println!("\nseries written to {}", dir.display());
    }
}
