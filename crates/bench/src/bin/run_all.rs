//! Runs every experiment in paper order, printing each report and writing
//! all series under `results/`. A non-zero exit means some shape check
//! failed — the harness doubles as an end-to-end regression test.

fn main() {
    let started = std::time::Instant::now();
    let reports = servet_bench::experiments::run_all();
    let mut checks = 0;
    for report in &reports {
        report.print();
        println!();
        report
            .save_tsv("results")
            .expect("writing results/ succeeds");
        checks += report.num_checks();
    }
    println!(
        "all {} experiments done, {} shape checks passed, {:.1}s",
        reports.len(),
        checks,
        started.elapsed().as_secs_f64()
    );
}
