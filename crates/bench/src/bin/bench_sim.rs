//! Standalone wall-clock harness behind `BENCH_sim.json`: the fast-path
//! simulator (packed LRU ways, hashed MESI directory, block-replay
//! engine) against the retained pre-rewrite [`ReferenceMachine`] on
//! identical workloads, plus end-to-end macro timings the reference
//! engine made unaffordable.
//!
//! Every micro comparison first *proves* the two engines bit-identical
//! on the exact trace being timed (cycle outputs compared via `to_bits`,
//! coherence traffic compared exactly) — a speedup over an engine that
//! computes something else would be worthless. Mirrors the `sim`
//! Criterion bench (`crates/bench/benches/sim.rs`); this binary exists
//! because the container's criterion stub cannot time anything.
//!
//! Usage: `bench_sim [--out FILE] [--quick]`

use servet_core::zoo::ZooConfig;
use servet_core::{run_full_suite, SimPlatform};
use servet_sim::machine::TraceJob;
use servet_sim::{presets, Machine, ReferenceMachine, KB, MB};
use servet_tune::{Oracle, SimOracle};
use std::time::Instant;

/// Deterministic pseudorandom byte offsets in `[0, span)` (splitmix64).
fn random_trace(len: usize, span: u64, mut state: u64) -> Vec<u64> {
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % span
        })
        .collect()
}

/// Median wall seconds of `reps` runs of `f` (one untimed warm-up).
fn median_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct MicroResult {
    name: &'static str,
    accesses: usize,
    fast_s: f64,
    reference_s: f64,
}

impl MicroResult {
    fn speedup(&self) -> f64 {
        self.reference_s / self.fast_s
    }
    fn fast_macc_s(&self) -> f64 {
        self.accesses as f64 / self.fast_s / 1e6
    }
    fn reference_macc_s(&self) -> f64 {
        self.accesses as f64 / self.reference_s / 1e6
    }
}

/// Single-core random replay over an L2-overflowing array on the
/// MB-range preset.
fn micro_private(reps: usize, accesses: usize) -> MicroResult {
    const SIZE: usize = 4 * MB;
    let trace = random_trace(accesses, SIZE as u64, 0x5EED);

    let mut fast = Machine::with_seed(presets::mb_smp(), 42);
    let fa = fast.alloc_array(SIZE);
    let mut refr = ReferenceMachine::with_seed(presets::mb_smp(), 42);
    let ra = refr.alloc_array(SIZE);

    // Bit-identity on the timed workload, from cold state.
    let cf = fast.run_trace(0, &fa, &trace);
    let cr = refr.run_trace(0, &ra, &trace);
    assert_eq!(
        cf.to_bits(),
        cr.to_bits(),
        "private replay diverged: fast {cf} vs reference {cr}"
    );

    let fast_s = median_secs(reps, || {
        std::hint::black_box(fast.run_trace(0, &fa, &trace));
    });
    let reference_s = median_secs(reps, || {
        std::hint::black_box(refr.run_trace(0, &ra, &trace));
    });
    MicroResult {
        name: "replay_mb_private",
        accesses,
        fast_s,
        reference_s,
    }
}

/// Time a multi-core coherent replay of `steps` over one shared
/// `size`-byte array on `spec`, fast engine vs reference, after proving
/// them bit-identical (cycles and coherence traffic) on the exact trace.
fn time_shared_replay(
    name: &'static str,
    spec: servet_sim::MachineSpec,
    size: usize,
    steps: &[Vec<(u64, bool)>],
    reps: usize,
) -> MicroResult {
    let cores = spec.num_cores;
    let mut fast = Machine::with_seed(spec.clone(), 42);
    let fa = fast.alloc_shared_array(size);
    let mut refr = ReferenceMachine::with_seed(spec, 42);
    let ra = refr.alloc_shared_array(size);

    // More step lists than cores = oversubscription: job `j` runs on
    // core `j % cores` and the scheduler interleaves by virtual time.
    let run_fast = |m: &mut Machine, array: &servet_sim::SimArray| {
        let jobs: Vec<TraceJob<'_>> = steps
            .iter()
            .enumerate()
            .map(|(j, s)| TraceJob {
                core: j % cores,
                array,
                steps: s,
            })
            .collect();
        m.run_traces(&jobs)
    };
    let run_ref = |m: &mut ReferenceMachine, array: &servet_sim::SimArray| {
        let jobs: Vec<TraceJob<'_>> = steps
            .iter()
            .enumerate()
            .map(|(j, s)| TraceJob {
                core: j % cores,
                array,
                steps: s,
            })
            .collect();
        m.run_traces(&jobs)
    };

    let cf = run_fast(&mut fast, &fa);
    let cr = run_ref(&mut refr, &ra);
    for (i, (f, r)) in cf.iter().zip(&cr).enumerate() {
        assert_eq!(
            f.to_bits(),
            r.to_bits(),
            "shared replay core {i} diverged: fast {f} vs reference {r}"
        );
    }
    assert_eq!(
        fast.coherence_traffic(),
        refr.coherence_traffic(),
        "coherence traffic diverged on the timed workload"
    );

    let fast_s = median_secs(reps, || {
        std::hint::black_box(run_fast(&mut fast, &fa));
    });
    let reference_s = median_secs(reps, || {
        std::hint::black_box(run_ref(&mut refr, &ra));
    });
    MicroResult {
        name,
        accesses: steps.iter().map(Vec::len).sum(),
        fast_s,
        reference_s,
    }
}

/// Headline micro: an oversubscribed blocked-random read replay —
/// 16 reader jobs per core over one L2-overflowing shared array, each
/// step a random line followed by its eight 8-byte elements in order
/// (the spatial-locality pattern of a blocked kernel streaming shared
/// data, task-pool style). This leans on every fast path at once: read
/// hits in a private level take the directory skip (the reference walks
/// its `BTreeMap` directory on every access), misses hit the hashed
/// directory (vs `BTreeMap`), and the heap scheduler picks the next job
/// in O(log jobs) per *block* where the reference scans all jobs per
/// *access*.
fn micro_blocked_shared(reps: usize, blocks_per_job: usize) -> MicroResult {
    const SIZE: usize = 24 * MB;
    const JOBS_PER_CORE: usize = 16;
    let spec = presets::tiny_smp();
    let steps: Vec<Vec<(u64, bool)>> = (0..spec.num_cores * JOBS_PER_CORE)
        .map(|job| {
            random_trace(blocks_per_job, (SIZE / 64) as u64, 0xB10C + job as u64)
                .into_iter()
                .flat_map(|line| (0..8u64).map(move |e| (line * 64 + e * 8, false)))
                .collect()
        })
        .collect();
    time_shared_replay("replay_blocked_shared", spec, SIZE, &steps, reps)
}

/// Uniform-random coherent replay with ~1/3 writes on a small shared
/// array: block replay plus the hashed directory against the
/// one-access-per-selection reference, with heavy real sharing.
fn micro_shared(reps: usize, steps_per_core: usize) -> MicroResult {
    const SIZE: usize = 16 * KB;
    let spec = presets::tiny_smp();
    let steps: Vec<Vec<(u64, bool)>> = (0..spec.num_cores)
        .map(|core| {
            random_trace(steps_per_core, SIZE as u64, 0xC0FE + core as u64)
                .into_iter()
                .map(|addr| (addr, addr % 3 == 0))
                .collect()
        })
        .collect();
    time_shared_replay("replay_shared_coherent", spec, SIZE, &steps, reps)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (reps, blocks, private_accesses, shared_steps) = if quick {
        (3, 800, 50_000, 10_000)
    } else {
        (7, 4_000, 200_000, 50_000)
    };

    eprintln!("bench_sim: micro (fast vs reference, bit-identity checked) ...");
    let blocked = micro_blocked_shared(reps, blocks);
    let private = micro_private(reps, private_accesses);
    let shared = micro_shared(reps, shared_steps);

    eprintln!("bench_sim: macro (fast path end to end) ...");
    // The MB-range zoo suite: the workload the rewrite unlocks.
    let suite_s = median_secs(if quick { 1 } else { 3 }, || {
        let machine = Machine::with_seed(presets::mb_smp(), 42);
        let mut platform = SimPlatform::new(machine, None).with_seed(42);
        std::hint::black_box(run_full_suite(&mut platform, &ZooConfig::mb_suite()));
    });
    // One SimOracle evaluation (threaded blocked matmul via run_traces).
    let oracle = SimOracle::new(presets::tiny_smp(), 42, 48);
    let config = oracle.space().config(&oracle.space().midpoint());
    let oracle_s = median_secs(if quick { 3 } else { 7 }, || {
        std::hint::black_box(oracle.evaluate(&config));
    });

    for m in [&blocked, &private, &shared] {
        eprintln!(
            "  {:<24} fast {:>8.2} Macc/s  reference {:>7.2} Macc/s  speedup {:>5.1}x",
            m.name,
            m.fast_macc_s(),
            m.reference_macc_s(),
            m.speedup()
        );
    }
    eprintln!("  mb_smp full suite        {suite_s:.3} s");
    eprintln!("  SimOracle n=48 evaluate  {:.3} ms", oracle_s * 1e3);

    // serde_json may be stubbed in offline containers, so the report is
    // formatted by hand (same trick as servet-obs's exporter).
    let json = format!(
        "{{\n\
         \x20 \"description\": \"Fast-path simulator rewrite (packed LRU ways, hashed MESI directory, block-replay engine) vs the retained pre-rewrite ReferenceMachine on identical traces; bit-identity asserted on every timed workload before timing. Wall-clock medians from crates/bench/src/bin/bench_sim.rs, mirrored by the sim Criterion bench.\",\n\
         \x20 \"environment\": \"shared Linux container, release build, median of {reps} reps after warm-up; absolute numbers are indicative, ratios are the result\",\n\
         \x20 \"micro\": {{\n\
         \x20   \"replay_blocked_shared\": {{\n\
         \x20     \"workload\": \"{ba} total accesses, {bj} reader jobs oversubscribed 16-per-core on tiny_smp's {bc} cores over one shared 24 MB array: random line then its eight 8-byte elements in order (blocked-kernel spatial locality, task-pool style), read-only\",\n\
         \x20     \"fast_macc_per_s\": {bf:.2},\n\
         \x20     \"reference_macc_per_s\": {br:.2},\n\
         \x20     \"speedup\": {bs:.1}\n\
         \x20   }},\n\
         \x20   \"replay_mb_private\": {{\n\
         \x20     \"workload\": \"{pa} uniform-random accesses over a 4 MB array on the mb_smp preset (32 KB L1, 2 MB shared L2), single core\",\n\
         \x20     \"fast_macc_per_s\": {pf:.2},\n\
         \x20     \"reference_macc_per_s\": {pr:.2},\n\
         \x20     \"speedup\": {ps:.1}\n\
         \x20   }},\n\
         \x20   \"replay_shared_coherent\": {{\n\
         \x20     \"workload\": \"{sa} total accesses, {sc} cores in lockstep over one shared 16 KB array on tiny_smp, ~1/3 writes through the MESI directory\",\n\
         \x20     \"fast_macc_per_s\": {sf:.2},\n\
         \x20     \"reference_macc_per_s\": {sr:.2},\n\
         \x20     \"speedup\": {ss:.1}\n\
         \x20   }}\n\
         \x20 }},\n\
         \x20 \"macro\": {{\n\
         \x20   \"mb_smp_full_suite_s\": {ms:.3},\n\
         \x20   \"sim_oracle_n48_evaluate_ms\": {os:.3},\n\
         \x20   \"note\": \"macro rows are fast-path only: the reference engine cannot run behind the Platform trait, and at the micro ratios above the MB-range sweep would take minutes per machine — which is why the zoo had no MB-range member before this rewrite\"\n\
         \x20 }}\n\
         }}\n",
        reps = reps,
        ba = blocked.accesses,
        bj = presets::tiny_smp().num_cores * 16,
        bc = presets::tiny_smp().num_cores,
        bf = blocked.fast_macc_s(),
        br = blocked.reference_macc_s(),
        bs = blocked.speedup(),
        pa = private.accesses,
        pf = private.fast_macc_s(),
        pr = private.reference_macc_s(),
        ps = private.speedup(),
        sa = shared.accesses,
        sc = presets::tiny_smp().num_cores,
        sf = shared.fast_macc_s(),
        sr = shared.reference_macc_s(),
        ss = shared.speedup(),
        ms = suite_s,
        os = oracle_s * 1e3,
    );
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write bench report");
            eprintln!("bench_sim: report written to {path}");
        }
        None => print!("{json}"),
    }

    assert!(
        blocked.speedup() >= 5.0,
        "fast path lost its edge: blocked-shared {:.1}x (>= 5x required; private {:.1}x, shared {:.1}x)",
        blocked.speedup(),
        private.speedup(),
        shared.speedup()
    );
}
