//! Regenerates the paper artifact `table1` (see DESIGN.md for the index).

fn main() {
    let report = servet_bench::experiments::timings::table1();
    report.print();
    if let Ok(dir) = report.save_tsv("results") {
        println!("\nseries written to {}", dir.display());
    }
}
