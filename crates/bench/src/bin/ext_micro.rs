//! Regenerates the extension experiment `ext_micro` (see DESIGN.md).

fn main() {
    let report = servet_bench::experiments::cache::ext_micro();
    report.print();
    if let Ok(dir) = report.save_tsv("results") {
        println!("\nseries written to {}", dir.display());
    }
}
