//! Regenerates the paper artifact `sec4a` (see DESIGN.md for the index).

fn main() {
    let report = servet_bench::experiments::cache::sec4a();
    report.print();
    if let Ok(dir) = report.save_tsv("results") {
        println!("\nseries written to {}", dir.display());
    }
}
