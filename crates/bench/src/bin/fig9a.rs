//! Regenerates the paper artifact `fig9a` (see DESIGN.md for the index).

fn main() {
    let report = servet_bench::experiments::memory::fig9a();
    report.print();
    if let Ok(dir) = report.save_tsv("results") {
        println!("\nseries written to {}", dir.display());
    }
}
