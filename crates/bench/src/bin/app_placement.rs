//! Regenerates the paper artifact `app_placement` (see DESIGN.md for the index).

fn main() {
    let report = servet_bench::experiments::placement::app_placement();
    report.print();
    if let Ok(dir) = report.save_tsv("results") {
        println!("\nseries written to {}", dir.display());
    }
}
