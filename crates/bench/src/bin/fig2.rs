//! Regenerates the paper artifact `fig2` (see DESIGN.md for the index).

fn main() {
    let report = servet_bench::experiments::cache::fig2();
    report.print();
    if let Ok(dir) = report.save_tsv("results") {
        println!("\nseries written to {}", dir.display());
    }
}
