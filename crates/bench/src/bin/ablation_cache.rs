//! Regenerates the paper artifact `ablation_cache` (see DESIGN.md for the index).

fn main() {
    let report = servet_bench::experiments::cache::ablation_cache();
    report.print();
    if let Ok(dir) = report.save_tsv("results") {
        println!("\nseries written to {}", dir.display());
    }
}
