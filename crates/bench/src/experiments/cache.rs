//! Cache-size experiments: Fig. 2, §IV-A, and the detection ablations.

use crate::report::{fmt_size, Report};
use servet_core::cache_detect::{
    detect_cache_levels, probabilistic_size_with_model, CandidateGrid, DetectConfig, MissRateModel,
};
use servet_core::mcalibrator::{mcalibrator, McalibratorConfig};
use servet_core::platform::Platform;
use servet_core::sim_platform::SimPlatform;
use servet_sim::vm::PageAllocPolicy;
use servet_sim::{Machine, KB, MB};
use servet_stats::gradient::find_peaks;

/// Ground truth for the four paper machines (§IV-A: "10 cache sizes in
/// total ... all the estimates agreed with the specifications").
pub fn paper_machines() -> Vec<(&'static str, SimPlatform, Vec<usize>)> {
    vec![
        ("dempsey", SimPlatform::dempsey(), vec![16 * KB, 2 * MB]),
        (
            "athlon3200",
            SimPlatform::athlon3200(),
            vec![64 * KB, 512 * KB],
        ),
        (
            "dunnington",
            SimPlatform::dunnington(),
            vec![32 * KB, 3 * MB, 12 * MB],
        ),
        (
            "finis_terrae",
            SimPlatform::finis_terrae(1),
            vec![16 * KB, 256 * KB, 9 * MB],
        ),
    ]
}

/// Fig. 2(a,b): mcalibrator cycles and gradients on Dempsey and
/// Dunnington (the two architectures the paper uses to explain the
/// algorithm).
pub fn fig2() -> Report {
    let mut report = Report::new(
        "fig2",
        "mcalibrator cycles per access and gradients (paper Fig. 2)",
    );
    for (name, mut platform) in [
        ("dempsey", SimPlatform::dempsey()),
        ("dunnington", SimPlatform::dunnington()),
    ] {
        let out = mcalibrator(&mut platform, 0, &McalibratorConfig::default());
        let gradients = out.gradients();
        report.section(
            &format!("{name}: cycles and gradient vs array size"),
            &["size", "cycles/access", "gradient"],
        );
        for i in 0..out.len() {
            let g = if i + 1 < out.len() {
                format!("{:.3}", gradients[i])
            } else {
                "-".to_string()
            };
            report.row(&[fmt_size(out.sizes[i]), format!("{:.2}", out.cycles[i]), g]);
        }
        // Shape criteria from the paper's Fig. 2 discussion.
        let peaks = find_peaks(&gradients, 1.15);
        match name {
            "dempsey" => {
                // First peak at 16 KB (L1); high gradients over a wide
                // range around [512 KB, 2 MB] (physically indexed L2 with
                // random pages).
                report.check("L1 peak at 16K", out.sizes[peaks[0].index] == 16 * KB);
                let wide = peaks.iter().skip(1).any(|p| p.width() >= 2);
                report.check("L2 transition is smeared (wide peak)", wide);
                let idx_512k = out.sizes.iter().position(|&s| s == 512 * KB).unwrap();
                let idx_2m = out.sizes.iter().position(|&s| s == 2 * MB).unwrap();
                let rises = (idx_512k..=idx_2m).any(|i| gradients[i] > 1.15);
                report.check("gradient rises within [512K, 2M]", rises);
            }
            _ => {
                // Dunnington: L1 at 32 KB; a wide L3 region reaching into
                // the ~12 MB range (paper: algorithm over [3 MB, 14 MB]).
                report.check("L1 peak at 32K", out.sizes[peaks[0].index] == 32 * KB);
                let last = peaks.last().expect("has peaks");
                report.check(
                    "large-cache transition region reaches beyond 9M",
                    out.sizes[last.end] >= 9 * MB,
                );
            }
        }
        report.note(format!(
            "{name}: {} sizes swept, {} gradient peaks",
            out.len(),
            peaks.len()
        ));
    }
    report
}

/// §IV-A: full cache-size detection on the four machines; all 10 caches
/// must be exact.
pub fn sec4a() -> Report {
    let mut report = Report::new(
        "sec4a",
        "cache size estimates on four machines (paper §IV-A)",
    );
    report.section(
        "detected vs specification",
        &[
            "machine",
            "level",
            "detected",
            "specified",
            "method",
            "exact",
        ],
    );
    let mut correct = 0usize;
    let mut total = 0usize;
    for (name, mut platform, truth) in paper_machines() {
        let out = mcalibrator(&mut platform, 0, &McalibratorConfig::default());
        let levels = detect_cache_levels(&out, platform.page_size(), &DetectConfig::default());
        for (i, &expected) in truth.iter().enumerate() {
            total += 1;
            let (detected, method) = levels
                .get(i)
                .map(|l| (l.size, format!("{:?}", l.method)))
                .unwrap_or((0, "missing".into()));
            let exact = detected == expected;
            correct += exact as usize;
            report.row(&[
                name.to_string(),
                format!("L{}", i + 1),
                fmt_size(detected),
                fmt_size(expected),
                method,
                exact.to_string(),
            ]);
        }
        report.check(
            &format!("{name}: level count matches"),
            levels.len() == truth.len(),
        );
    }
    report.note(format!(
        "{correct}/{total} cache sizes exact (paper: 10/10)"
    ));
    report.check("all 10 cache sizes exact", correct == total && total == 10);
    report
}

/// Detection ablations: what each design choice of §III-A buys.
///
/// 1. **Probabilistic vs peaks-only** on a random-paging OS;
/// 2. **size-biased vs paper-approximation** miss-rate model;
/// 3. **page coloring** restoring sharp transitions;
/// 4. **the 1 KB stride** defeating the prefetcher (64 B stride fails).
pub fn ablation_cache() -> Report {
    let mut report = Report::new(
        "ablation_cache",
        "cache detection ablations (design choices of paper §III-A)",
    );

    // --- 1 + 2: probabilistic algorithm and miss-rate model, Dempsey L2.
    let mut platform = SimPlatform::dempsey();
    let out = mcalibrator(&mut platform, 0, &McalibratorConfig::default());
    let gradients = out.gradients();
    let peaks = find_peaks(&gradients, 1.15);
    // Peaks-only estimate of L2: position of the max gradient after L1 —
    // the naive reading the paper says "would erroneously estimate 1 MB".
    let l1 = peaks[0].index;
    let naive_idx = (l1 + 1..gradients.len())
        .max_by(|&a, &b| gradients[a].total_cmp(&gradients[b]))
        .expect("has samples");
    let naive = out.sizes[naive_idx];
    // Probabilistic estimates under both models over the same window.
    let window: Vec<usize> = (l1 + 1..out.sizes.len()).collect();
    let sizes: Vec<usize> = window.iter().map(|&i| out.sizes[i]).collect();
    let cycles: Vec<f64> = window.iter().map(|&i| out.cycles[i]).collect();
    let grid = CandidateGrid::default();
    let biased =
        probabilistic_size_with_model(&sizes, &cycles, 4096, &grid, MissRateModel::SizeBiased)
            .unwrap_or(0);
    let paperx =
        probabilistic_size_with_model(&sizes, &cycles, 4096, &grid, MissRateModel::PaperApprox)
            .unwrap_or(0);
    report.section("dempsey L2 (truth 2M) by method", &["method", "estimate"]);
    report.row(&["gradient peaks only".into(), fmt_size(naive)]);
    report.row(&["probabilistic, size-biased".into(), fmt_size(biased)]);
    report.row(&["probabilistic, paper approx".into(), fmt_size(paperx)]);
    report.check("naive peak reading is wrong", naive != 2 * MB);
    report.check("size-biased probabilistic is exact", biased == 2 * MB);
    report.note(
        "the paper-approximation model P(X>K) underestimates miss rates at \
         low associativity; the size-biased fit keeps the same framework \
         exact",
    );

    // --- 3: page coloring makes the L2 transition sharp again.
    let mut spec = servet_sim::presets::dempsey();
    spec.page_alloc = PageAllocPolicy::Colored;
    let mut colored = SimPlatform::new(Machine::new(spec), None);
    let out_colored = mcalibrator(&mut colored, 0, &McalibratorConfig::default());
    let levels = detect_cache_levels(&out_colored, 4096, &DetectConfig::default());
    report.section(
        "dempsey under a page-coloring OS",
        &["level", "detected", "method"],
    );
    for l in &levels {
        report.row(&[
            format!("L{}", l.level),
            fmt_size(l.size),
            format!("{:?}", l.method),
        ]);
    }
    report.check(
        "coloring: L2 found by peak position (no probabilistic pass)",
        levels.len() == 2
            && levels[1].size == 2 * MB
            && format!("{:?}", levels[1].method) == "GradientPeak",
    );

    // --- 4: the stride choice. A 64 B stride is covered by the
    // prefetcher, flattening the curve and hiding cache levels.
    let mut strided = SimPlatform::dunnington();
    let cfg_1k = McalibratorConfig::default();
    let cfg_64 = McalibratorConfig {
        stride: 64,
        ..cfg_1k
    };
    let out_1k = mcalibrator(&mut strided, 0, &cfg_1k);
    let out_64 = mcalibrator(&mut strided, 0, &cfg_64);
    let span = |o: &servet_core::mcalibrator::McalibratorOutput| {
        let max = o.cycles.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = o.cycles.iter().copied().fold(f64::INFINITY, f64::min);
        max / min
    };
    report.section(
        "dunnington curve dynamic range by stride",
        &["stride", "max/min cycles"],
    );
    report.row(&["1024".into(), format!("{:.1}", span(&out_1k))]);
    report.row(&["64".into(), format!("{:.1}", span(&out_64))]);
    report.check(
        "1 KB stride sees the hierarchy, 64 B stride is prefetched flat",
        span(&out_1k) > 4.0 * span(&out_64),
    );
    report
}

/// Extension experiment: the line-size and L1-associativity micro probes
/// (capabilities of the related work X-Ray / P-Ray that the published
/// Servet does not cover) across all four machines.
pub fn ext_micro() -> Report {
    use servet_core::micro::{run_micro_probes, MicroConfig};
    let mut report = Report::new(
        "ext_micro",
        "micro-probe extensions: line size and L1 associativity",
    );
    report.section(
        "detected vs specification",
        &["machine", "line B", "true", "L1 ways", "true"],
    );
    // (machine, true line size, true L1 ways, L1 size)
    let cases: Vec<(&str, SimPlatform, usize, usize, usize)> = vec![
        ("dempsey", SimPlatform::dempsey(), 64, 8, 16 * KB),
        ("athlon3200", SimPlatform::athlon3200(), 64, 2, 64 * KB),
        ("dunnington", SimPlatform::dunnington(), 64, 8, 32 * KB),
        ("finis_terrae", SimPlatform::finis_terrae(1), 64, 4, 16 * KB),
    ];
    for (name, mut platform, true_line, true_ways, l1) in cases {
        let micro = run_micro_probes(&mut platform, 0, l1, &MicroConfig::default());
        report.row(&[
            name.to_string(),
            micro.line_size.map(|v| v.to_string()).unwrap_or("-".into()),
            true_line.to_string(),
            micro
                .l1_associativity
                .map(|v| v.to_string())
                .unwrap_or("-".into()),
            true_ways.to_string(),
        ]);
        report.check(
            &format!("{name}: line size exact"),
            micro.line_size == Some(true_line),
        );
        report.check(
            &format!("{name}: L1 associativity exact"),
            micro.l1_associativity == Some(true_ways),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    /// The experiments are heavy (full mcalibrator sweeps in debug mode),
    /// so unit tests here only cover the cheap helpers; the experiments
    /// themselves run as release binaries and in the release integration
    /// suite.
    use super::*;

    #[test]
    fn paper_machine_table() {
        let machines = paper_machines();
        assert_eq!(machines.len(), 4);
        let caches: usize = machines.iter().map(|(_, _, t)| t.len()).sum();
        assert_eq!(caches, 10);
    }
}
