//! Fig. 9: memory access overhead characterization.

use crate::report::Report;
use servet_core::mem_overhead::{characterize_memory, MemOverheadConfig, MemOverheadResult};
use servet_core::sim_platform::SimPlatform;

fn run(platform: &mut SimPlatform) -> MemOverheadResult {
    characterize_memory(platform, &MemOverheadConfig::default())
}

/// Fig. 9(a): per-core bandwidth when core 0 streams concurrently with
/// each other core, on both clusters.
pub fn fig9a() -> Report {
    let mut report = Report::new(
        "fig9a",
        "memory bandwidth with two simultaneous accesses (paper Fig. 9a)",
    );

    // --- Dunnington: one FSB — same overhead for every pair.
    let mut dun = SimPlatform::dunnington();
    let result = run(&mut dun);
    report.section(
        "dunnington: core 0 + partner",
        &["partner", "bandwidth GB/s", "vs ref"],
    );
    let reference = result.reference_gbs;
    let mut dun_values = Vec::new();
    for &((a, b), bw) in &result.pair_bandwidth {
        if a == 0 {
            report.row(&[
                b.to_string(),
                format!("{bw:.2}"),
                format!("{:.2}", bw / reference),
            ]);
            dun_values.push(bw);
        }
    }
    report.note(format!(
        "dunnington reference (isolated core 0): {reference:.2} GB/s"
    ));
    report.check(
        "dunnington: exactly one overhead class",
        result.num_classes() == 1,
    );
    let spread = dun_values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        / dun_values.iter().copied().fold(f64::INFINITY, f64::min);
    report.check_range(
        "dunnington: same magnitude independently of the pair",
        spread,
        1.0,
        1.05,
    );
    report.check(
        "dunnington: pairs do degrade",
        dun_values[0] < reference * 0.95,
    );

    // --- Finis Terrae: bus < cell < no overhead (cross-cell).
    let mut ft = SimPlatform::finis_terrae(1);
    let result = run(&mut ft);
    report.section(
        "finis terrae: core 0 + partner",
        &["partner", "bandwidth GB/s", "vs ref"],
    );
    let reference = result.reference_gbs;
    let grab = |b: usize| {
        result
            .pair_bandwidth
            .iter()
            .find(|&&((x, y), _)| x == 0 && y == b)
            .map(|&(_, bw)| bw)
            .expect("pair measured")
    };
    for b in 1..16 {
        let bw = grab(b);
        report.row(&[
            b.to_string(),
            format!("{bw:.2}"),
            format!("{:.2}", bw / reference),
        ]);
    }
    // Paper: cores 1-3 lowest (shared bus); 4-7 ~25 % below ref (same
    // cell); 8-15 no particular overhead.
    let bus = (1..4).map(grab).fold(f64::NEG_INFINITY, f64::max);
    let cell = (4..8).map(grab).fold(f64::NEG_INFINITY, f64::max);
    let cross = (8..16).map(grab).fold(f64::INFINITY, f64::min);
    report.check("ft: bus pairs are the slowest", bus < cell);
    report.check_range(
        "ft: cell pairs ~25% below reference",
        cell / reference,
        0.70,
        0.80,
    );
    report.check_range(
        "ft: cross-cell pairs at reference",
        cross / reference,
        0.95,
        1.05,
    );
    report.check(
        "ft: two overhead classes (bus, cell)",
        result.num_classes() == 2,
    );
    report
}

/// Fig. 9(b): effective per-core bandwidth as more cores of a colliding
/// group stream concurrently.
pub fn fig9b() -> Report {
    let mut report = Report::new(
        "fig9b",
        "memory bandwidth with multiple simultaneous accesses (paper Fig. 9b)",
    );

    let mut dun = SimPlatform::dunnington();
    let result = run(&mut dun);
    report.section(
        "dunnington: cores streaming concurrently (FSB group)",
        &["cores", "GB/s per core"],
    );
    let class = &result.overheads[0];
    for &(n, bw) in &class.scalability {
        report.row(&[n.to_string(), format!("{bw:.2}")]);
    }
    // Saturated FSB: per-core bandwidth ~ capacity / n.
    let (n_last, bw_last) = *class.scalability.last().expect("sweep ran");
    let (n_mid, bw_mid) = class.scalability[class.scalability.len() / 2];
    report.check(
        "dunnington: aggregate bandwidth plateaus (bw ~ C/n)",
        (bw_last * n_last as f64 - bw_mid * n_mid as f64).abs() < 0.15 * bw_mid * n_mid as f64,
    );
    report.check(
        "dunnington: group covers all 24 cores",
        class.groups[0].len() == 24,
    );

    let mut ft = SimPlatform::finis_terrae(1);
    let result = run(&mut ft);
    report.check("ft: two curves (bus and cell)", result.overheads.len() == 2);
    for (label, class) in ["bus", "cell"].iter().zip(&result.overheads) {
        report.section(
            &format!("finis terrae: {label} group"),
            &["cores", "GB/s per core"],
        );
        for &(n, bw) in &class.scalability {
            report.row(&[n.to_string(), format!("{bw:.2}")]);
        }
        let decreasing = class
            .scalability
            .windows(2)
            .all(|w| w[1].1 <= w[0].1 + 1e-9);
        report.check(
            &format!("ft {label}: per-core bandwidth non-increasing"),
            decreasing,
        );
    }
    let bus_at_2 = result.overheads[0]
        .scalability
        .first()
        .expect("bus sweep")
        .1;
    let cell_at_2 = result.overheads[1]
        .scalability
        .first()
        .expect("cell sweep")
        .1;
    report.check(
        "ft: bus curve below cell curve at 2 cores",
        bus_at_2 < cell_at_2,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same logic on the tiny NUMA machine: two classes, curves decrease.
    #[test]
    fn memory_experiment_logic_small() {
        let mut p = SimPlatform::tiny_numa();
        let r = run(&mut p);
        assert_eq!(r.num_classes(), 2);
        for class in &r.overheads {
            assert!(class
                .scalability
                .windows(2)
                .all(|w| w[1].1 <= w[0].1 + 1e-9));
        }
    }
}
