//! All experiments, one function per paper artifact.
//!
//! Every function is pure measurement + reporting: it builds the needed
//! simulated platforms internally, runs the *actual Servet benchmarks*
//! against them (never reading ground truth except to assert shape
//! criteria), and returns a [`crate::Report`].

pub mod cache;
pub mod comm;
pub mod memory;
pub mod placement;
pub mod shared;
pub mod timings;

use crate::Report;
use rayon::prelude::*;

/// Run every experiment, returning all reports in paper order.
///
/// Experiments are independent (each builds its own simulated platforms),
/// so they run in parallel; on a single-core machine this degrades
/// gracefully to sequential execution.
pub fn run_all() -> Vec<Report> {
    let jobs: Vec<fn() -> Report> = vec![
        cache::fig2,
        cache::sec4a,
        shared::fig8,
        memory::fig9a,
        memory::fig9b,
        comm::fig10a,
        comm::fig10b,
        comm::fig10c,
        comm::fig10d,
        timings::table1,
        cache::ablation_cache,
        comm::ablation_models,
        placement::app_placement,
        cache::ext_micro,
    ];
    jobs.into_par_iter().map(|job| job()).collect()
}
