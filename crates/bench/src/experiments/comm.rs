//! Fig. 10: communication cost determination, plus the model-accuracy
//! ablation against Hockney / LogGP.

use crate::report::{fmt_size, Report};
use servet_core::comm::{characterize_communication, CommConfig, CommResult};
use servet_core::platform::Platform;
use servet_core::sim_platform::SimPlatform;
use servet_net::baselines::{HockneyModel, LogGpModel};
use servet_sim::KB;

fn dunnington_comm() -> (SimPlatform, CommResult) {
    let mut p = SimPlatform::dunnington();
    let r = characterize_communication(&mut p, &CommConfig::with_l1_size(32 * KB));
    (p, r)
}

fn finis_terrae_comm() -> (SimPlatform, CommResult) {
    let mut p = SimPlatform::finis_terrae(2);
    let r = characterize_communication(&mut p, &CommConfig::with_l1_size(16 * KB));
    (p, r)
}

/// Fig. 10(a): message-passing latency from core 0 to every other core,
/// message size = L1.
pub fn fig10a() -> Report {
    let mut report = Report::new(
        "fig10a",
        "message-passing latency from core 0, L1-sized messages (paper Fig. 10a)",
    );

    let (_, dun) = dunnington_comm();
    report.section(
        "dunnington: core 0 -> k, 32K messages",
        &["dest", "latency us", "layer"],
    );
    for b in 1..24 {
        let lat = dun
            .pair_latency
            .iter()
            .find(|&&((x, y), _)| x == 0 && y == b)
            .map(|&(_, l)| l)
            .expect("probed");
        let layer = dun.layer_of(0, b).expect("layered");
        report.row(&[b.to_string(), format!("{lat:.2}"), layer.to_string()]);
    }
    report.check("dunnington: three layers", dun.num_layers() == 3);
    let l = |b: usize| dun.predicted_latency_us(0, b, 32 * KB).expect("known");
    report.check(
        "dunnington: shared-L2 partner (core 12) is the fastest",
        l(12) < l(1) && l(1) < l(3),
    );
    report.check(
        "dunnington: layer of (0,12) is the fastest layer",
        dun.layer_of(0, 12) == Some(0),
    );
    report.check(
        "dunnington: cross-processor pairs in the slowest layer",
        dun.layer_of(0, 3) == Some(2),
    );

    let (_, ft) = finis_terrae_comm();
    report.section(
        "finis terrae (2 nodes): core 0 -> k, 16K messages",
        &["dest", "latency us", "layer"],
    );
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    for b in 1..32 {
        let lat = ft
            .pair_latency
            .iter()
            .find(|&&((x, y), _)| x == 0 && y == b)
            .map(|&(_, l)| l)
            .expect("probed");
        let layer = ft.layer_of(0, b).expect("layered");
        report.row(&[b.to_string(), format!("{lat:.2}"), layer.to_string()]);
        if b < 16 {
            intra.push(lat);
        } else {
            inter.push(lat);
        }
    }
    report.check("ft: four layers", ft.num_layers() == 4);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let ratio = mean(&inter) / mean(&intra);
    report.check_range(
        "ft: inter-node ~2x slower than intra-node (paper: 'around two times')",
        ratio,
        1.6,
        3.0,
    );
    report
}

/// Fig. 10(b): latency of concurrent messages across the slowest
/// interconnect of each machine.
pub fn fig10b() -> Report {
    let mut report = Report::new(
        "fig10b",
        "latency scalability with concurrent messages (paper Fig. 10b)",
    );

    let (_, dun) = dunnington_comm();
    let bus_layer = dun.layers.last().expect("layers");
    report.section(
        "dunnington inter-processor: concurrent messages",
        &["messages", "mean latency us", "slowdown"],
    );
    for &(n, lat, slow) in &bus_layer.scalability {
        report.rowf(&[&n, &format!("{lat:.2}"), &format!("{slow:.2}")]);
    }
    let last = bus_layer.scalability.last().expect("swept");
    report.check(
        "dunnington: swept to >= 16 concurrent messages",
        last.0 >= 16,
    );
    report.check_range(
        "dunnington: moderate degradation at full load",
        last.2,
        2.0,
        10.0,
    );

    let (_, ft) = finis_terrae_comm();
    let ib_layer = ft.layers.last().expect("layers");
    report.section(
        "finis terrae InfiniBand: concurrent messages",
        &["messages", "mean latency us", "slowdown"],
    );
    for &(n, lat, slow) in &ib_layer.scalability {
        report.rowf(&[&n, &format!("{lat:.2}"), &format!("{slow:.2}")]);
    }
    let at32 = ib_layer
        .scalability
        .iter()
        .find(|&&(n, _, _)| n == 32)
        .expect("32 concurrent messages swept");
    report.check_range(
        "ft: one of 32 concurrent InfiniBand messages is ~7x slower (paper: 7x)",
        at32.2,
        6.0,
        8.0,
    );
    let monotone = ib_layer
        .scalability
        .windows(2)
        .all(|w| w[1].2 >= w[0].2 - 0.15);
    report.check("ft: slowdown grows with concurrency", monotone);
    report
}

fn p2p_report(id: &str, title: &str, comm: &CommResult, layer_names: &[&str]) -> Report {
    let mut report = Report::new(id, title);
    for (layer, name) in comm.layers.iter().zip(layer_names) {
        report.section(
            &format!("{name} (representative pair {:?})", layer.representative),
            &["size", "latency us", "bandwidth GB/s"],
        );
        for p in &layer.p2p {
            report.row(&[
                fmt_size(p.size),
                format!("{:.2}", p.latency_us),
                format!("{:.3}", p.bandwidth_gbs),
            ]);
        }
    }
    report
}

/// Fig. 10(c): point-to-point bandwidth per layer, Dunnington.
pub fn fig10c() -> Report {
    let (_, dun) = dunnington_comm();
    let mut report = p2p_report(
        "fig10c",
        "point-to-point bandwidth by layer, Dunnington (paper Fig. 10c)",
        &dun,
        &["shared-L2 pair", "intra-processor", "inter-processor"],
    );
    let bw_at = |layer: usize, size: usize| {
        dun.layers[layer]
            .p2p
            .iter()
            .find(|p| p.size == size)
            .map(|p| p.bandwidth_gbs)
            .expect("size swept")
    };
    report.check(
        "shared-cache layer has the highest bandwidth at 1M",
        bw_at(0, 1 << 20) > bw_at(1, 1 << 20) && bw_at(1, 1 << 20) > bw_at(2, 1 << 20),
    );
    report.check(
        "eager->rendezvous knee visible on the shared-cache layer",
        bw_at(0, 64 * KB) > bw_at(0, 128 * KB),
    );
    report.check(
        "bandwidth grows from small to medium messages on every layer",
        (0..3).all(|l| bw_at(l, 1 << 20) > bw_at(l, 1 << 10)),
    );
    report
}

/// Fig. 10(d): point-to-point bandwidth per layer, Finis Terrae.
pub fn fig10d() -> Report {
    let (_, ft) = finis_terrae_comm();
    let mut report = p2p_report(
        "fig10d",
        "point-to-point bandwidth by layer, Finis Terrae (paper Fig. 10d)",
        &ft,
        &["intra-processor", "intra-cell", "intra-node", "InfiniBand"],
    );
    let ib = ft.layers.last().expect("layers");
    let peak = ib
        .p2p
        .iter()
        .map(|p| p.bandwidth_gbs)
        .fold(f64::NEG_INFINITY, f64::max);
    report.check_range(
        "InfiniBand saturates near its 20 Gbps (~2.5 GB/s) limit",
        peak,
        2.0,
        3.0,
    );
    let shm_peak = ft.layers[0]
        .p2p
        .iter()
        .map(|p| p.bandwidth_gbs)
        .fold(f64::NEG_INFINITY, f64::max);
    report.check("shared memory outruns InfiniBand at peak", shm_peak > peak);
    report.check(
        "small-message bandwidth ordering follows the layer ordering",
        {
            let bw16k: Vec<f64> = ft
                .layers
                .iter()
                .map(|l| {
                    l.p2p
                        .iter()
                        .find(|p| p.size == 16 * KB)
                        .expect("16K swept")
                        .bandwidth_gbs
                })
                .collect();
            bw16k.windows(2).all(|w| w[0] > w[1])
        },
    );
    report
}

/// Ablation: the paper's §III-D claim that Hockney / LogP-family models
/// "show poor accuracy on current communication middleware on multicore
/// clusters", quantified against Servet's layered characterization.
pub fn ablation_models() -> Report {
    let mut report = Report::new(
        "ablation_models",
        "single-line models vs Servet's layered characterization (paper §III-D)",
    );
    let (mut platform, servet) = finis_terrae_comm();

    // Fresh evaluation samples: three pairs per layer (or as many as the
    // layer has), sizes from 256 B to 4 MB.
    let sizes: Vec<usize> = (8..=22).step_by(2).map(|e| 1usize << e).collect();
    let mut samples: Vec<(usize, f64)> = Vec::new();
    let mut servet_err_acc = Vec::new();
    for layer in &servet.layers {
        for &(a, b) in layer.pairs.iter().take(3) {
            for &s in &sizes {
                let measured = platform.message_latency_us(a, b, s);
                samples.push((s, measured));
                let predicted = servet
                    .predicted_latency_us(a, b, s)
                    .expect("pair was characterized");
                servet_err_acc.push(((predicted - measured) / measured).abs());
            }
        }
    }
    let servet_err = servet_err_acc.iter().sum::<f64>() / servet_err_acc.len() as f64;
    let hockney = HockneyModel::fit(&samples).expect("fit succeeds");
    let hockney_err = hockney.mean_relative_error(&samples);
    let loggp = LogGpModel::fit(&samples).expect("fit succeeds");
    let loggp_err = loggp.mean_relative_error(&samples);

    report.section(
        "mean relative prediction error over all layers and sizes",
        &["model", "error"],
    );
    report.row(&[
        "hockney (single line)".into(),
        format!("{:.1}%", hockney_err * 100.0),
    ]);
    report.row(&[
        "logGP (single line)".into(),
        format!("{:.1}%", loggp_err * 100.0),
    ]);
    report.row(&[
        "servet layered".into(),
        format!("{:.1}%", servet_err * 100.0),
    ]);
    report.note(format!(
        "hockney fit: L = {:.2} us, B = {:.2} GB/s",
        hockney.latency_us,
        hockney.bytes_per_us / 1000.0
    ));
    report.check("servet error under 10%", servet_err < 0.10);
    report.check(
        "single-line models are at least 5x worse",
        hockney_err > 5.0 * servet_err && loggp_err > 5.0 * servet_err,
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The experiment logic on the tiny cluster (fast in debug mode).
    #[test]
    fn comm_experiment_logic_small() {
        let mut p = SimPlatform::tiny_cluster();
        let r = characterize_communication(&mut p, &CommConfig::small(8 * KB));
        assert_eq!(r.num_layers(), 4);
        // Layer latencies ordered; every layer has a p2p sweep.
        assert!(r
            .layers
            .windows(2)
            .all(|w| w[0].latency_us < w[1].latency_us));
        assert!(r.layers.iter().all(|l| !l.p2p.is_empty()));
    }
}
