//! Application study: profile-guided process placement (the paper's §V
//! motivation, in the spirit of MPIPP but with measured costs).

use crate::report::Report;
use servet_autotune::placement::{CommPattern, Placer};
use servet_core::profile::MachineProfile;
use servet_core::sim_platform::SimPlatform;
use servet_core::suite::{run_full_suite, SuiteConfig};
use servet_net::VirtualCluster;

/// Ground-truth cost of a mapping: drive the actual virtual cluster with
/// the pattern (something the placer never sees — it only knows the
/// measured profile).
fn ground_truth_cost(
    cluster: &mut VirtualCluster,
    pattern: &CommPattern,
    mapping: &[usize],
) -> f64 {
    let mut total = 0.0;
    for a in 0..pattern.ranks {
        for b in a + 1..pattern.ranks {
            let w = pattern.weight_between(a, b) + pattern.weight_between(b, a);
            if w > 0.0 {
                // Query latency between the mapped cores directly.
                let mut aff: Vec<usize> = vec![mapping[a], mapping[b]];
                let rest: Vec<usize> = (0..cluster.topology().total_cores())
                    .filter(|c| !aff.contains(c))
                    .collect();
                aff.extend(rest);
                cluster.set_affinity(aff);
                total += w * cluster.ping_pong_us(0, 1, pattern.message_size, 2);
            }
        }
    }
    total
}

fn ft_profile() -> MachineProfile {
    let mut platform = SimPlatform::finis_terrae(2);
    let config = SuiteConfig {
        skip_shared: true,
        skip_memory: true,
        ..SuiteConfig::default()
    };
    run_full_suite(&mut platform, &config).profile
}

/// Placement study on Finis Terrae (2 nodes, 32 cores).
pub fn app_placement() -> Report {
    let mut report = Report::new(
        "app_placement",
        "profile-guided process placement vs naive mappings (paper SS V)",
    );
    let profile = ft_profile();
    let placer = Placer::new(&profile);

    let patterns: Vec<(&str, CommPattern)> = vec![
        (
            "shift(16, 8) one node",
            CommPattern::shift(16, 8, 16 * 1024),
        ),
        ("ring(32)", CommPattern::ring(32, 16 * 1024)),
        ("stencil 4x4", CommPattern::stencil2d(4, 4, 16 * 1024)),
        (
            "master-worker(16)",
            CommPattern::master_worker(16, 16 * 1024),
        ),
    ];

    report.section(
        "predicted cost (us/iteration) by mapping strategy",
        &[
            "pattern",
            "linear",
            "random",
            "greedy",
            "anneal",
            "gain vs linear",
        ],
    );
    let mut gains = Vec::new();
    for (name, pattern) in &patterns {
        let linear = placer.linear(pattern);
        let random = placer.random(pattern, 7);
        let greedy = placer.greedy(pattern);
        let anneal = placer.anneal(pattern, 11, 4000);
        let best = greedy.cost_us.min(anneal.cost_us);
        let gain = linear.cost_us / best;
        gains.push((
            name.to_string(),
            pattern.clone(),
            greedy.mapping.clone(),
            gain,
        ));
        report.row(&[
            name.to_string(),
            format!("{:.1}", linear.cost_us),
            format!("{:.1}", random.cost_us),
            format!("{:.1}", greedy.cost_us),
            format!("{:.1}", anneal.cost_us),
            format!("{gain:.2}x"),
        ]);
        report.check(
            &format!("{name}: optimized never worse than linear"),
            best <= linear.cost_us * (1.0 + 1e-9),
        );
    }
    let shift_gain = gains[0].3;
    report.check_range(
        "shift pattern: topology-aware placement wins clearly",
        shift_gain,
        1.25,
        10.0,
    );

    // Validate the headline case against ground truth the placer never saw.
    report.section(
        "ground-truth validation (virtual cluster), shift(16, 8)",
        &["mapping", "measured cost us"],
    );
    let pattern = &gains[0].1;
    let mut cluster = servet_net::presets::finis_terrae_cluster(2);
    let linear_map: Vec<usize> = (0..pattern.ranks).collect();
    let gt_linear = ground_truth_cost(&mut cluster, pattern, &linear_map);
    let gt_greedy = ground_truth_cost(&mut cluster, pattern, &gains[0].2);
    report.row(&["linear".into(), format!("{gt_linear:.1}")]);
    report.row(&["greedy (profile-guided)".into(), format!("{gt_greedy:.1}")]);
    report.check_range(
        "ground truth confirms the predicted gain",
        gt_linear / gt_greedy,
        1.2,
        10.0,
    );
    report.note("the placer only consumes the measured MachineProfile; ground truth comes from the independent cluster model");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_cost_positive() {
        let mut cluster = servet_net::presets::tiny_cluster();
        let pattern = CommPattern::ring(4, 1024);
        let cost = ground_truth_cost(&mut cluster, &pattern, &[0, 1, 2, 3]);
        assert!(cost > 0.0);
        // A mapping that forces every ring link across nodes costs more.
        let worse = ground_truth_cost(&mut cluster, &pattern, &[0, 4, 1, 5]);
        assert!(worse > cost);
    }
}
