//! Fig. 8: shared-cache detection on Dunnington and Finis Terrae.

use crate::report::Report;
use servet_core::shared_cache::{detect_shared_caches, SharedCacheConfig};
use servet_core::sim_platform::SimPlatform;
use servet_sim::{KB, MB};

/// Fig. 8(a,b): the cache-access overhead ratio for pairs containing
/// core 0, per cache level, on both clusters.
pub fn fig8() -> Report {
    let mut report = Report::new(
        "fig8",
        "shared-cache detection ratios, pairs with core 0 (paper Fig. 8)",
    );

    // --- Dunnington: L2 {0,12}; L3 {0,1,2,12,13,14} (paper Fig. 8a).
    let mut dun = SimPlatform::dunnington();
    let result = detect_shared_caches(
        &mut dun,
        &[32 * KB, 3 * MB, 12 * MB],
        &SharedCacheConfig::default(),
    );
    report.section(
        "dunnington: ratio vs core paired with 0",
        &["pair", "L1 ratio", "L2 ratio", "L3 ratio"],
    );
    for other in 1..24 {
        let cells: Vec<String> = std::iter::once(format!("(0,{other})"))
            .chain(result.levels.iter().map(|l| {
                let r = l
                    .pair_ratios
                    .iter()
                    .find(|&&((a, b), _)| (a, b) == (0, other))
                    .map(|&(_, r)| r)
                    .unwrap_or(f64::NAN);
                format!("{r:.2}")
            }))
            .collect();
        report.row(&cells);
    }
    let l2 = &result.levels[1];
    let l3 = &result.levels[2];
    report.check("L1 is private", result.levels[0].sharing_pairs.is_empty());
    report.check(
        "L2: core 0 pairs exactly with core 12",
        l2.sharing_pairs
            .iter()
            .filter(|&&(a, _)| a == 0)
            .eq([&(0, 12)]),
    );
    let l3_with_0: Vec<usize> = l3
        .sharing_pairs
        .iter()
        .filter(|&&(a, _)| a == 0)
        .map(|&(_, b)| b)
        .collect();
    report.check(
        "L3: core 0 shares with {1,2,12,13,14}",
        l3_with_0 == vec![1, 2, 12, 13, 14],
    );
    report.check(
        "L2 groups are the 12 hardware pairs",
        l2.groups.len() == 12 && l2.groups.iter().all(|g| g.len() == 2),
    );
    report.check(
        "L3 groups are the 4 hexa-core processors",
        l3.groups.len() == 4 && l3.groups.iter().all(|g| g.len() == 6),
    );
    report.note(format!(
        "dunnington L2 reference {:.1} cy, shared-pair ratios {:.2}..{:.2}",
        l2.reference_cycles,
        l2.sharing_pairs
            .iter()
            .map(|p| l2.pair_ratios.iter().find(|(q, _)| q == p).unwrap().1)
            .fold(f64::INFINITY, f64::min),
        l2.sharing_pairs
            .iter()
            .map(|p| l2.pair_ratios.iter().find(|(q, _)| q == p).unwrap().1)
            .fold(f64::NEG_INFINITY, f64::max),
    ));

    // --- Finis Terrae: everything private; "all the ratios are below 2".
    let mut ft = SimPlatform::finis_terrae(1);
    let result = detect_shared_caches(
        &mut ft,
        &[16 * KB, 256 * KB, 9 * MB],
        &SharedCacheConfig::default(),
    );
    report.section(
        "finis terrae: ratio vs core paired with 0",
        &["pair", "L1 ratio", "L2 ratio", "L3 ratio"],
    );
    for other in 1..16 {
        let cells: Vec<String> = std::iter::once(format!("(0,{other})"))
            .chain(result.levels.iter().map(|l| {
                let r = l
                    .pair_ratios
                    .iter()
                    .find(|&&((a, b), _)| (a, b) == (0, other))
                    .map(|&(_, r)| r)
                    .unwrap_or(f64::NAN);
                format!("{r:.2}")
            }))
            .collect();
        report.row(&cells);
    }
    report.check(
        "finis terrae: no shared caches detected",
        !result.any_shared(),
    );
    let worst = result
        .levels
        .iter()
        .flat_map(|l| l.pair_ratios.iter().map(|&(_, r)| r))
        .fold(f64::NEG_INFINITY, f64::max);
    report.check_range("finis terrae: worst ratio below 2", worst, 0.0, 2.0);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use servet_core::platform::Platform;

    /// A reduced Fig. 8 on the tiny shared-L2 machine proves the
    /// experiment logic without the full 276-pair sweep.
    #[test]
    fn shared_detection_logic_small() {
        let mut p = SimPlatform::tiny_shared_l2();
        let r = detect_shared_caches(&mut p, &[8 * KB, 128 * KB], &SharedCacheConfig::default());
        assert_eq!(r.levels[1].groups, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(p.num_cores(), 4);
    }
}
