//! Table I: execution times of the four benchmarks on both clusters.
//!
//! The simulator's virtual-time ledger charges each measurement what the
//! real benchmark would cost (repetitions × simulated operation time, plus
//! per-measurement setup), so the *structure* of Table I — which stages
//! dominate, and how the two machines compare per stage — re-emerges from
//! the number of pairs, levels and layers each machine has.

use crate::report::Report;
use servet_core::sim_platform::SimPlatform;
use servet_core::suite::{run_full_suite, SuiteConfig};

/// Paper Table I, in minutes.
const PAPER_MINUTES: [(&str, f64, f64); 4] = [
    ("Cache Size Estimate", 2.0, 2.0),
    ("Determination of Shared Caches", 11.0, 3.0),
    ("Memory Access Overhead", 20.0, 5.0),
    ("Communication Costs", 22.0, 33.0),
];

/// Table I reproduction.
pub fn table1() -> Report {
    let mut report = Report::new(
        "table1",
        "benchmark execution times in minutes (paper Table I)",
    );

    let mut dun = SimPlatform::dunnington();
    let dun_report = run_full_suite(&mut dun, &SuiteConfig::default());
    let mut ft = SimPlatform::finis_terrae(2);
    let ft_report = run_full_suite(&mut ft, &SuiteConfig::default());

    let dun_t = &dun_report.timings;
    let ft_t = &ft_report.timings;
    let rows_measured = [
        dun_t.cache_size_s,
        dun_t.shared_caches_s,
        dun_t.memory_overhead_s,
        dun_t.communication_s,
    ];
    let rows_ft = [
        ft_t.cache_size_s,
        ft_t.shared_caches_s,
        ft_t.memory_overhead_s,
        ft_t.communication_s,
    ];

    report.section(
        "execution times, measured (virtual) vs paper",
        &["benchmark", "dunnington", "paper", "finis terrae", "paper"],
    );
    for (i, (name, paper_dun, paper_ft)) in PAPER_MINUTES.iter().enumerate() {
        report.row(&[
            name.to_string(),
            format!("{:.1}'", rows_measured[i] / 60.0),
            format!("{paper_dun:.0}'"),
            format!("{:.1}'", rows_ft[i] / 60.0),
            format!("{paper_ft:.0}'"),
        ]);
    }
    report.row(&[
        "Total".to_string(),
        format!("{:.1}'", dun_t.total_s() / 60.0),
        "55'".to_string(),
        format!("{:.1}'", ft_t.total_s() / 60.0),
        "43'".to_string(),
    ]);

    // Shape criteria: the orderings the paper's table exhibits.
    report.check(
        "cache-size stage is (near-)cheapest on both machines",
        rows_measured[0] <= 1.25 * rows_measured.iter().copied().fold(f64::INFINITY, f64::min)
            && rows_ft[0] <= 1.25 * rows_ft.iter().copied().fold(f64::INFINITY, f64::min),
    );
    report.check(
        "dunnington: shared caches cost more than on finis terrae (276 vs 120 pairs x 3 levels)",
        rows_measured[1] > rows_ft[1],
    );
    report.check(
        "dunnington: memory overhead costs more than on finis terrae",
        rows_measured[2] > rows_ft[2],
    );
    report.check(
        "finis terrae: communication costs more than on dunnington (496 vs 276 pairs + IB)",
        rows_ft[3] > rows_measured[3],
    );
    report.check(
        "communication dominates on finis terrae (paper: 33' of 43')",
        rows_ft[3] == rows_ft.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    report.check_range(
        "dunnington total within 2x of the paper's 55 minutes",
        dun_t.total_s() / 60.0,
        55.0 / 2.0,
        55.0 * 2.0,
    );
    report.check_range(
        "finis terrae total within 2x of the paper's 43 minutes",
        ft_t.total_s() / 60.0,
        43.0 / 2.0,
        43.0 * 2.0,
    );

    // While we have both full profiles, cross-check the suite outputs.
    report.check(
        "dunnington suite recovered all three cache sizes",
        dun_report.profile.cache_size(1) == Some(32 * 1024)
            && dun_report.profile.cache_size(2) == Some(3 * 1024 * 1024)
            && dun_report.profile.cache_size(3) == Some(12 * 1024 * 1024),
    );
    report.check(
        "finis terrae suite found no shared caches",
        !ft_report
            .profile
            .shared_caches
            .as_ref()
            .expect("ran")
            .any_shared(),
    );
    report.note("measured times are virtual: simulated operation time x real-world repetition counts + per-measurement setup");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use servet_core::platform::Platform;

    /// The ledger mechanics on a small machine: stage times positive and
    /// ordered sensibly.
    #[test]
    fn ledger_logic_small() {
        let mut p = SimPlatform::tiny_cluster();
        let report = run_full_suite(&mut p, &SuiteConfig::small(256 * 1024));
        let t = report.timings;
        assert!(t.cache_size_s > 0.0);
        assert!(t.total_s() >= t.communication_s);
        assert!(p.elapsed_seconds() >= t.total_s() * 0.99);
    }
}
