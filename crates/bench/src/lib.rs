//! # servet-bench
//!
//! The experiment harness: regenerates **every table and figure** of the
//! paper's evaluation (§IV) on the simulated machines, plus the ablations
//! and application studies listed in `DESIGN.md`.
//!
//! Each experiment lives in [`experiments`] as a function that produces a
//! [`report::Report`]: the printed series mirror what the paper plots, and
//! each experiment *asserts its shape criteria* (who wins, by roughly what
//! factor, where the crossovers fall) before returning — so running the
//! harness doubles as an end-to-end regression test of the reproduction.
//!
//! Binaries:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig2` | Fig. 2(a,b) — mcalibrator cycles and gradients |
//! | `sec4a` | §IV-A — 10/10 cache sizes on four machines |
//! | `fig8` | Fig. 8(a,b) — shared-cache ratios |
//! | `fig9a` | Fig. 9(a) — two-core concurrent memory bandwidth |
//! | `fig9b` | Fig. 9(b) — effective bandwidth vs concurrent cores |
//! | `fig10a` | Fig. 10(a) — message latency from core 0 |
//! | `fig10b` | Fig. 10(b) — latency scalability under concurrency |
//! | `fig10c` | Fig. 10(c) — p2p bandwidth per layer, Dunnington |
//! | `fig10d` | Fig. 10(d) — p2p bandwidth per layer, Finis Terrae |
//! | `table1` | Table I — benchmark execution times |
//! | `ablation_cache` | cache-detection ablations (ours) |
//! | `ablation_models` | Hockney/LogGP vs layered model (ours) |
//! | `app_placement` | profile-guided placement study (ours) |
//! | `run_all` | everything above, writing `results/` |

pub mod experiments;
pub mod report;

pub use report::Report;
