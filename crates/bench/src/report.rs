//! Report plumbing shared by all experiments: aligned console tables,
//! TSV persistence, and shape assertions.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One experiment's output: titled sections of tabular series plus notes.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Experiment id (e.g. "fig9a").
    pub id: String,
    /// Human title.
    pub title: String,
    sections: Vec<Section>,
    notes: Vec<String>,
    checks: Vec<(String, bool)>,
}

#[derive(Debug, Clone)]
struct Section {
    heading: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report.
    pub fn new(id: &str, title: &str) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            ..Default::default()
        }
    }

    /// Begin a new table section.
    pub fn section(&mut self, heading: &str, columns: &[&str]) {
        self.sections.push(Section {
            heading: heading.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        });
    }

    /// Append a row to the current section.
    pub fn row(&mut self, cells: &[String]) {
        let section = self
            .sections
            .last_mut()
            .expect("row() before any section()");
        assert_eq!(cells.len(), section.columns.len(), "column count mismatch");
        section.rows.push(cells.to_vec());
    }

    /// Convenience: formatted row.
    pub fn rowf(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Attach a free-form note (printed after the tables).
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Record a shape check. Panics immediately when it fails so that
    /// `run_all` cannot silently produce wrong-shaped figures.
    pub fn check(&mut self, name: &str, ok: bool) {
        self.checks.push((name.to_string(), ok));
        assert!(ok, "[{}] shape check failed: {name}", self.id);
    }

    /// Record a check that `value` lies in `[lo, hi]`.
    pub fn check_range(&mut self, name: &str, value: f64, lo: f64, hi: f64) {
        let ok = value >= lo && value <= hi;
        self.checks.push((format!("{name} = {value:.3}"), ok));
        assert!(
            ok,
            "[{}] shape check failed: {name} = {value} outside [{lo}, {hi}]",
            self.id
        );
    }

    /// Render the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "==== {} — {}", self.id, self.title);
        for s in &self.sections {
            let _ = writeln!(out, "\n-- {}", s.heading);
            // Column widths.
            let mut widths: Vec<usize> = s.columns.iter().map(|c| c.len()).collect();
            for row in &s.rows {
                for (w, cell) in widths.iter_mut().zip(row) {
                    *w = (*w).max(cell.len());
                }
            }
            let header: Vec<String> = s
                .columns
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "  {}", header.join("  "));
            for row in &s.rows {
                let cells: Vec<String> = row
                    .iter()
                    .zip(&widths)
                    .map(|(c, w)| format!("{c:>w$}"))
                    .collect();
                let _ = writeln!(out, "  {}", cells.join("  "));
            }
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n  note: {n}");
        }
        let passed = self.checks.iter().filter(|(_, ok)| *ok).count();
        let _ = writeln!(
            out,
            "\n  shape checks: {passed}/{} passed",
            self.checks.len()
        );
        for (name, ok) in &self.checks {
            let _ = writeln!(out, "    [{}] {name}", if *ok { "ok" } else { "FAIL" });
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Persist all sections as TSV files under `dir/<id>/`.
    pub fn save_tsv(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref().join(&self.id);
        fs::create_dir_all(&dir)?;
        for (i, s) in self.sections.iter().enumerate() {
            let slug: String = s
                .heading
                .to_lowercase()
                .chars()
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect();
            let mut text = String::new();
            let _ = writeln!(text, "{}", s.columns.join("\t"));
            for row in &s.rows {
                let _ = writeln!(text, "{}", row.join("\t"));
            }
            fs::write(dir.join(format!("{i:02}_{slug}.tsv")), text)?;
        }
        fs::write(dir.join("report.txt"), self.render())?;
        Ok(dir)
    }

    /// Number of shape checks recorded.
    pub fn num_checks(&self) -> usize {
        self.checks.len()
    }
}

/// Format bytes as a human-readable size ("32K", "3M").
pub fn fmt_size(bytes: usize) -> String {
    const MB: usize = 1024 * 1024;
    if bytes >= MB && bytes % MB == 0 {
        format!("{}M", bytes / MB)
    } else if bytes >= 1024 && bytes % 1024 == 0 {
        format!("{}K", bytes / 1024)
    } else {
        format!("{bytes}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_tables() {
        let mut r = Report::new("test", "A test");
        r.section("numbers", &["x", "y"]);
        r.rowf(&[&1, &2.5]);
        r.rowf(&[&10, &"wide-cell"]);
        r.note("hello");
        r.check("always", true);
        let text = r.render();
        assert!(text.contains("==== test"));
        assert!(text.contains("wide-cell"));
        assert!(text.contains("note: hello"));
        assert!(text.contains("1/1 passed"));
        assert_eq!(r.num_checks(), 1);
    }

    #[test]
    #[should_panic]
    fn failed_check_panics() {
        let mut r = Report::new("t", "t");
        r.check("nope", false);
    }

    #[test]
    #[should_panic]
    fn check_range_panics_outside() {
        let mut r = Report::new("t", "t");
        r.check_range("v", 5.0, 0.0, 1.0);
    }

    #[test]
    fn check_range_accepts_inside() {
        let mut r = Report::new("t", "t");
        r.check_range("v", 0.5, 0.0, 1.0);
        assert_eq!(r.num_checks(), 1);
    }

    #[test]
    fn tsv_round_trip() {
        let mut r = Report::new("tsvtest", "T");
        r.section("s one", &["a"]);
        r.row(&["42".into()]);
        let dir = std::env::temp_dir().join("servet-bench-test");
        let out = r.save_tsv(&dir).unwrap();
        let tsv = std::fs::read_to_string(out.join("00_s_one.tsv")).unwrap();
        assert_eq!(tsv, "a\n42\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(32 * 1024), "32K");
        assert_eq!(fmt_size(3 * 1024 * 1024), "3M");
        assert_eq!(fmt_size(100), "100");
        assert_eq!(fmt_size(1536), "1536");
    }
}
