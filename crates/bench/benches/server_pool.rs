//! Loopback throughput of the worker-pool registry server under heavy
//! client concurrency: 64 clients connect together, each issuing a burst
//! of requests, against a fixed-size pool — the measured counterpart of
//! the `hammer_64_concurrent_connections_with_bounded_pool` test.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use servet_core::profile::MachineProfile;
use servet_core::suite::{run_full_suite, SuiteConfig};
use servet_core::SimPlatform;
use servet_registry::{serve, Registry, RegistryClient, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 64;
const REQUESTS_PER_CLIENT: usize = 4;

fn measured_profile() -> MachineProfile {
    let mut platform = SimPlatform::tiny_cluster().with_noise(0.0);
    run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024)).profile
}

fn temp_registry(tag: &str) -> Registry {
    let dir = std::env::temp_dir().join(format!("servet-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Registry::open(dir).unwrap()
}

fn bench_pool_throughput(c: &mut Criterion) {
    let profile = measured_profile();
    let registry = Arc::new(temp_registry("pool"));
    let server = serve(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            // Twice the client count so a full storm queues without
            // rejections; workers stay at the machine default.
            backlog: 2 * CLIENTS,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    RegistryClient::connect(addr)
        .unwrap()
        .put(&profile, Some("tiny"))
        .unwrap();

    let mut group = c.benchmark_group("registry_pool");
    group.sample_size(10);
    group.throughput(Throughput::Elements((CLIENTS * REQUESTS_PER_CLIENT) as u64));
    group.bench_function("list_64_concurrent_clients", |b| {
        b.iter(|| {
            std::thread::scope(|s| {
                for _ in 0..CLIENTS {
                    s.spawn(move || {
                        let mut client = RegistryClient::connect(addr).unwrap();
                        for _ in 0..REQUESTS_PER_CLIENT {
                            black_box(client.list().unwrap());
                        }
                    });
                }
            });
        });
    });
    group.finish();

    let stats = registry.stats();
    assert_eq!(
        stats.accept.rejected, 0,
        "benchmark backlog must absorb every storm: {:?}",
        stats.accept
    );
    server.shutdown();
}

criterion_group!(benches, bench_pool_throughput);
criterion_main!(benches);
