//! Criterion benchmarks of the autotuning consumers: how much a user
//! pays at run time to exploit a Servet profile.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use servet_autotune::placement::{CommPattern, Placer};
use servet_autotune::tiling::select_tile;
use servet_core::profile::MachineProfile;
use servet_core::suite::{run_full_suite, SuiteConfig};
use servet_core::SimPlatform;

fn measured_profile() -> MachineProfile {
    let mut platform = SimPlatform::tiny_cluster().with_noise(0.0);
    let config = SuiteConfig {
        skip_shared: true,
        skip_memory: true,
        ..SuiteConfig::small(256 * 1024)
    };
    run_full_suite(&mut platform, &config).profile
}

fn bench_placement(c: &mut Criterion) {
    let profile = measured_profile();
    let placer = Placer::new(&profile);
    let pattern = CommPattern::shift(8, 4, 8 * 1024);
    let mut group = c.benchmark_group("placement");
    group.bench_function("cost_eval", |b| {
        let mapping: Vec<usize> = (0..8).collect();
        b.iter(|| black_box(placer.cost(&pattern, &mapping)));
    });
    group.bench_function("greedy_8_ranks", |b| {
        b.iter(|| black_box(placer.greedy(&pattern)));
    });
    for iters in [500usize, 2000] {
        group.bench_with_input(BenchmarkId::new("anneal", iters), &iters, |b, &iters| {
            b.iter(|| black_box(placer.anneal(&pattern, 5, iters)));
        });
    }
    group.finish();
}

fn bench_tile_selection(c: &mut Criterion) {
    let profile = measured_profile();
    c.bench_function("tiling/select_tile", |b| {
        b.iter(|| black_box(select_tile(&profile, 2, 8, 3, 0.75)));
    });
}

fn bench_profile_queries(c: &mut Criterion) {
    let profile = measured_profile();
    let mut group = c.benchmark_group("profile");
    group.bench_function("latency_query", |b| {
        b.iter(|| black_box(profile.latency_us(0, 5, 4096)));
    });
    group.bench_function("json_round_trip", |b| {
        b.iter(|| {
            let json = profile.to_json();
            black_box(MachineProfile::from_json(&json).unwrap())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_placement,
    bench_tile_selection,
    bench_profile_queries
);
criterion_main!(benches);
