//! Criterion benchmarks of the suite's computational kernels: the
//! statistics the detection algorithms lean on, and the probabilistic
//! cache-size fit itself.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use servet_core::cache_detect::{
    predicted_miss_rate, probabilistic_size, CandidateGrid, MissRateModel,
};
use servet_stats::binomial::Binomial;
use servet_stats::cluster::cluster_by_tolerance;
use servet_stats::gradient::{find_peaks, gradient};
use servet_stats::groups::groups_from_pairs;

fn bench_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_sf");
    for &np in &[256u64, 4096, 16384] {
        group.bench_with_input(BenchmarkId::from_parameter(np), &np, |b, &np| {
            let dist = Binomial::new(np, 8.0 * 4096.0 / (2.0 * 1024.0 * 1024.0));
            b.iter(|| black_box(dist.sf(black_box(8))));
        });
    }
    group.finish();
}

fn bench_miss_rate_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicted_miss_rate");
    for model in [MissRateModel::SizeBiased, MissRateModel::PaperApprox] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{model:?}")),
            &model,
            |b, &model| {
                b.iter(|| {
                    black_box(predicted_miss_rate(
                        black_box(3072),
                        black_box(1.0 / 128.0),
                        black_box(24),
                        model,
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_probabilistic_fit(c: &mut Criterion) {
    // A realistic Dempsey-like window: 10 samples, full default grid.
    let page = 4096usize;
    let true_k = 8usize;
    let p = (true_k * page) as f64 / (2.0 * 1024.0 * 1024.0);
    let sizes: Vec<usize> = (1..=10).map(|i| i * 512 * 1024).collect();
    let cycles: Vec<f64> = sizes
        .iter()
        .map(|&s| {
            14.0 + 286.0
                * predicted_miss_rate((s / page) as u64, p, true_k, MissRateModel::SizeBiased)
        })
        .collect();
    let grid = CandidateGrid::default();
    c.bench_function("probabilistic_size/dempsey_window", |b| {
        b.iter(|| {
            black_box(probabilistic_size(
                black_box(&sizes),
                black_box(&cycles),
                page,
                &grid,
            ))
        });
    });
}

fn bench_gradient_pipeline(c: &mut Criterion) {
    let series: Vec<f64> = (0..72)
        .map(|i| 3.0 + (i as f64 / 10.0).sin().abs() * 100.0)
        .collect();
    c.bench_function("gradient_plus_peaks/72_samples", |b| {
        b.iter(|| {
            let g = gradient(black_box(&series));
            black_box(find_peaks(&g, 1.15))
        });
    });
}

fn bench_clustering(c: &mut Criterion) {
    // 496 pair latencies (the Finis Terrae two-node sweep).
    let measurements: Vec<(f64, (usize, usize))> = (0..496)
        .map(|i| {
            let latency = match i % 4 {
                0 => 4.6,
                1 => 6.1,
                2 => 7.8,
                _ => 14.2,
            } * (1.0 + 0.01 * ((i * 7919) % 100) as f64 / 100.0);
            (latency, (i / 31, i % 31))
        })
        .collect();
    c.bench_function("cluster_by_tolerance/496_pairs", |b| {
        b.iter(|| black_box(cluster_by_tolerance(black_box(measurements.clone()), 0.15)));
    });
}

fn bench_group_inference(c: &mut Criterion) {
    let pairs: Vec<(usize, usize)> = (0..24)
        .flat_map(|a| (a + 1..24).map(move |b| (a, b)))
        .collect();
    c.bench_function("groups_from_pairs/276_pairs", |b| {
        b.iter(|| black_box(groups_from_pairs(black_box(&pairs))));
    });
}

criterion_group!(
    benches,
    bench_binomial,
    bench_miss_rate_models,
    bench_probabilistic_fit,
    bench_gradient_pipeline,
    bench_clustering,
    bench_group_inference
);
criterion_main!(benches);
