//! Criterion benchmarks of the interconnect simulator and the
//! communication benchmark built on it.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use servet_core::comm::{characterize_communication, CommConfig};
use servet_core::SimPlatform;
use servet_net::collectives::{broadcast_time_us, BcastAlgorithm};
use servet_net::presets;

fn bench_send_latency(c: &mut Criterion) {
    let mut cluster = presets::finis_terrae_cluster(2);
    c.bench_function("cluster/send_latency", |b| {
        b.iter(|| black_box(cluster.send_latency_us(0, 16, black_box(16 * 1024))));
    });
}

fn bench_concurrent_sends(c: &mut Criterion) {
    let mut cluster = presets::finis_terrae_cluster(2);
    let pairs: Vec<(usize, usize)> = (0..16).map(|i| (i, 16 + i)).collect();
    c.bench_function("cluster/concurrent_16_sends", |b| {
        b.iter(|| black_box(cluster.concurrent_send_latency_us(&pairs, 16 * 1024)));
    });
}

fn bench_broadcasts(c: &mut Criterion) {
    let mut group = c.benchmark_group("collectives/broadcast_32_ranks");
    for algo in BcastAlgorithm::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &algo,
            |b, &algo| {
                let mut cluster = presets::finis_terrae_cluster(2);
                b.iter(|| black_box(broadcast_time_us(&mut cluster, algo, 32, 32 * 1024)));
            },
        );
    }
    group.finish();
}

fn bench_full_comm_characterization(c: &mut Criterion) {
    c.bench_function("comm_benchmark/tiny_cluster_end_to_end", |b| {
        b.iter(|| {
            let mut platform = SimPlatform::tiny_cluster();
            black_box(characterize_communication(
                &mut platform,
                &CommConfig::small(8 * 1024),
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_send_latency,
    bench_concurrent_sends,
    bench_broadcasts,
    bench_full_comm_characterization
);
criterion_main!(benches);
