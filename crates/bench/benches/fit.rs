//! Criterion benchmarks of the Fig. 3 probabilistic cache-size fit: the
//! pre-recurrence log-gamma kernel (kept in `binomial::reference`)
//! against the mode-seeded recurrence kernels, serial and parallel.
//!
//! The headline numbers land in `BENCH_fit.json` / `EXPERIMENTS.md`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use servet_core::cache_detect::{scored_candidates, CandidateGrid, MissRateModel};
use servet_stats::binomial::{reference, sf_curve, Binomial};
use servet_stats::mode;

const KB: usize = 1024;
const MB: usize = 1024 * KB;
const PAGE: usize = 4 * KB;
const POINTS: usize = 64;

/// A smeared 2 MB / 8-way transition window like mcalibrator produces:
/// the true miss-rate curve plus a deterministic ±0.4 % wobble.
fn window() -> (Vec<usize>, Vec<f64>) {
    let cache = 2 * MB;
    let assoc = 8u64;
    let p = (assoc as usize * PAGE) as f64 / cache as f64;
    let mut sizes = Vec::with_capacity(POINTS);
    let mut cycles = Vec::with_capacity(POINTS);
    for i in 0..POINTS {
        let size = MB + i * (3 * MB) / POINTS;
        let np = (size / PAGE) as u64;
        let miss = Binomial::new(np - 1, p).sf(assoc - 1);
        let wobble = ((i * 2_654_435_761) % 1000) as f64 / 1000.0 - 0.5;
        sizes.push(size);
        cycles.push(10.0 + 60.0 * miss + 0.25 * wobble);
    }
    (sizes, cycles)
}

/// The fit exactly as it ran before this PR: every predicted point an
/// independent per-term log-gamma tail sum, with the window endpoints
/// recomputed for every candidate.
fn log_gamma_fit(sizes: &[usize], cycles: &[f64], grid: &CandidateGrid) -> Option<usize> {
    let c_first = cycles[0];
    let c_last = *cycles.last().unwrap();
    let span = c_last - c_first;
    if span <= 0.0 {
        return None;
    }
    let mr: Vec<f64> = cycles
        .iter()
        .map(|&c| ((c - c_first) / span).clamp(0.0, 1.1))
        .collect();
    let np: Vec<u64> = sizes.iter().map(|&s| (s / PAGE) as u64).collect();
    let (lo, hi) = (sizes[0] / 2, *sizes.last().unwrap());
    let mut scored: Vec<(f64, usize)> = Vec::new();
    for &cs in grid.sizes.iter().filter(|&&cs| cs >= lo && cs <= hi) {
        for &k in &grid.assocs {
            let p = (k * PAGE) as f64 / cs as f64;
            // SizeBiased model on the pre-recurrence kernel.
            let model = |n: u64| reference::sf(n.saturating_sub(1), p, k as u64 - 1);
            let p_first = model(np[0]);
            let p_last = model(*np.last().unwrap());
            let p_span = p_last - p_first;
            if p_span < 0.05 {
                continue;
            }
            let mut div = 0.0;
            for (i, &n) in np.iter().enumerate() {
                let predicted = (model(n) - p_first) / p_span;
                div += (mr[i] - predicted).abs();
            }
            scored.push((div, cs));
        }
    }
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let best: Vec<usize> = scored.iter().take(5).map(|&(_, cs)| cs).collect();
    mode(&best)
}

fn bench_fit(c: &mut Criterion) {
    let (sizes, cycles) = window();
    let grid = CandidateGrid::default();
    let model = MissRateModel::SizeBiased;

    // All three paths must agree before their speed is worth comparing.
    let rank = |scored: Vec<(f64, usize)>| {
        let best: Vec<usize> = scored.iter().take(5).map(|&(_, cs)| cs).collect();
        mode(&best)
    };
    let want = log_gamma_fit(&sizes, &cycles, &grid);
    let serial = scored_candidates(&sizes, &cycles, PAGE, &grid, model, Some(1)).and_then(&rank);
    let parallel = scored_candidates(&sizes, &cycles, PAGE, &grid, model, None).and_then(&rank);
    assert_eq!(want, serial);
    assert_eq!(serial, parallel);

    let mut group = c.benchmark_group("fit");
    group.sample_size(20);
    group.bench_function("log_gamma_reference", |b| {
        b.iter(|| black_box(log_gamma_fit(&sizes, &cycles, &grid)));
    });
    group.bench_function("recurrence_serial", |b| {
        b.iter(|| {
            black_box(scored_candidates(
                &sizes,
                &cycles,
                PAGE,
                &grid,
                model,
                Some(1),
            ))
        });
    });
    group.bench_function("recurrence_parallel", |b| {
        b.iter(|| black_box(scored_candidates(&sizes, &cycles, PAGE, &grid, model, None)));
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let n = 64 * 1024u64;
    let p = 8.0 * PAGE as f64 / (2 * MB) as f64;
    let k = 7u64;
    // The fit regime: page counts of a 64 KB .. 4 MB sweep, where the
    // transition (mean crossing k) sits inside the window — the workload
    // `predicted_miss_curve` actually runs per candidate.
    let np_fit: Vec<u64> = (1..=POINTS as u64).map(|i| i * 16).collect();
    // Far past the transition (n up to 64 Ki pages): per-point tail sums
    // stay O(k), so this is sf_curve's worst case — it exists to keep the
    // subnormal-underflow guard honest, not to flatter the batch API.
    let np_deep: Vec<u64> = (1..=POINTS as u64).map(|i| i * 1024).collect();

    let mut group = c.benchmark_group("binomial_kernels");
    group.bench_function("sf_log_gamma_reference", |b| {
        b.iter(|| black_box(reference::sf(n, p, k)));
    });
    group.bench_function("sf_recurrence", |b| {
        b.iter(|| black_box(Binomial::new(n, p).sf(k)));
    });
    group.bench_function("sf_fit_per_point_64", |b| {
        b.iter(|| {
            let curve: Vec<f64> = np_fit.iter().map(|&n| Binomial::new(n, p).sf(k)).collect();
            black_box(curve)
        });
    });
    group.bench_function("sf_fit_curve_64", |b| {
        b.iter(|| black_box(sf_curve(&np_fit, p, k)));
    });
    group.bench_function("sf_deep_per_point_64", |b| {
        b.iter(|| {
            let curve: Vec<f64> = np_deep.iter().map(|&n| Binomial::new(n, p).sf(k)).collect();
            black_box(curve)
        });
    });
    group.bench_function("sf_deep_curve_64", |b| {
        b.iter(|| black_box(sf_curve(&np_deep, p, k)));
    });
    group.finish();
}

criterion_group!(benches, bench_fit, bench_kernels);
criterion_main!(benches);
