//! Criterion benchmarks of the fast-path simulator rewrite (packed LRU
//! ways, hashed MESI directory, block-replay access engine) against the
//! retained pre-rewrite engine — the numbers behind `BENCH_sim.json`.
//!
//! Micro: identical pseudorandom traces replayed through [`Machine`] and
//! [`ReferenceMachine`], throughput in simulated accesses per second.
//! Macro: the MB-range zoo suite and a `SimOracle` evaluation on the
//! fast path end to end. The standalone harness
//! (`crates/bench/src/bin/bench_sim.rs`) mirrors these workloads with a
//! plain wall-clock timer and writes the committed `BENCH_sim.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use servet_core::zoo::ZooConfig;
use servet_core::{run_full_suite, SimPlatform};
use servet_sim::machine::TraceJob;
use servet_sim::{presets, Machine, ReferenceMachine, KB, MB};
use servet_tune::{Oracle, SimOracle};

/// Deterministic pseudorandom byte offsets in `[0, span)` (splitmix64,
/// so no RNG crate is needed and both engines see the same stream).
fn random_trace(len: usize, span: u64, mut state: u64) -> Vec<u64> {
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) % span
        })
        .collect()
}

/// Headline micro: an oversubscribed blocked-random read replay — 16
/// reader jobs per core over one shared 24 MB array, each step a random
/// line followed by its eight 8-byte elements in order (blocked-kernel
/// spatial locality, task-pool style). Leans on every fast path at
/// once: the read-hit directory skip, the hashed directory on misses,
/// and the O(log jobs)-per-block heap scheduler vs the reference's
/// all-jobs scan per access.
fn bench_replay_blocked_shared(c: &mut Criterion) {
    const SIZE: usize = 24 * MB;
    const JOBS_PER_CORE: usize = 16;
    const BLOCKS: usize = 500;
    let spec = presets::tiny_smp();
    let cores = spec.num_cores;
    let steps: Vec<Vec<(u64, bool)>> = (0..cores * JOBS_PER_CORE)
        .map(|job| {
            random_trace(BLOCKS, (SIZE / 64) as u64, 0xB10C + job as u64)
                .into_iter()
                .flat_map(|line| (0..8u64).map(move |e| (line * 64 + e * 8, false)))
                .collect()
        })
        .collect();
    let total: usize = steps.iter().map(Vec::len).sum();
    let mut group = c.benchmark_group("sim/replay_blocked_shared");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total as u64));
    group.bench_function("fast", |b| {
        let mut m = Machine::with_seed(spec.clone(), 42);
        let array = m.alloc_shared_array(SIZE);
        b.iter(|| {
            let jobs: Vec<TraceJob<'_>> = steps
                .iter()
                .enumerate()
                .map(|(j, s)| TraceJob {
                    core: j % cores,
                    array: &array,
                    steps: s,
                })
                .collect();
            black_box(m.run_traces(&jobs))
        });
    });
    group.bench_function("reference", |b| {
        let mut m = ReferenceMachine::with_seed(spec.clone(), 42);
        let array = m.alloc_shared_array(SIZE);
        b.iter(|| {
            let jobs: Vec<TraceJob<'_>> = steps
                .iter()
                .enumerate()
                .map(|(j, s)| TraceJob {
                    core: j % cores,
                    array: &array,
                    steps: s,
                })
                .collect();
            black_box(m.run_traces(&jobs))
        });
    });
    group.finish();
}

/// Single-core random replay over an L2-overflowing array on the
/// MB-range preset: fast path vs retained reference, same trace.
fn bench_replay_private(c: &mut Criterion) {
    const SIZE: usize = 4 * MB;
    const ACCESSES: usize = 50_000;
    let trace = random_trace(ACCESSES, SIZE as u64, 0x5EED);
    let mut group = c.benchmark_group("sim/replay_mb_private");
    group.throughput(Throughput::Elements(ACCESSES as u64));
    group.bench_function("fast", |b| {
        let mut m = Machine::with_seed(presets::mb_smp(), 42);
        let array = m.alloc_array(SIZE);
        b.iter(|| black_box(m.run_trace(0, &array, &trace)));
    });
    group.bench_function("reference", |b| {
        let mut m = ReferenceMachine::with_seed(presets::mb_smp(), 42);
        let array = m.alloc_array(SIZE);
        b.iter(|| black_box(m.run_trace(0, &array, &trace)));
    });
    group.finish();
}

/// Multi-core coherent replay over one shared array (the
/// `SimOracle`-shaped workload): block replay and the hashed directory
/// together, vs the lockstep one-access-at-a-time reference.
fn bench_replay_shared(c: &mut Criterion) {
    const SIZE: usize = 16 * KB;
    const STEPS: usize = 20_000;
    let spec = presets::tiny_smp();
    let cores = spec.num_cores;
    let steps: Vec<Vec<(u64, bool)>> = (0..cores)
        .map(|core| {
            random_trace(STEPS, SIZE as u64, 0xC0FE + core as u64)
                .into_iter()
                .map(|addr| (addr, addr % 3 == 0))
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("sim/replay_shared_coherent");
    group.throughput(Throughput::Elements((STEPS * cores) as u64));
    group.bench_function("fast", |b| {
        let mut m = Machine::with_seed(spec.clone(), 42);
        let array = m.alloc_shared_array(SIZE);
        b.iter(|| {
            let jobs: Vec<TraceJob<'_>> = steps
                .iter()
                .enumerate()
                .map(|(core, s)| TraceJob {
                    core,
                    array: &array,
                    steps: s,
                })
                .collect();
            black_box(m.run_traces(&jobs))
        });
    });
    group.bench_function("reference", |b| {
        let mut m = ReferenceMachine::with_seed(spec.clone(), 42);
        let array = m.alloc_shared_array(SIZE);
        b.iter(|| {
            let jobs: Vec<TraceJob<'_>> = steps
                .iter()
                .enumerate()
                .map(|(core, s)| TraceJob {
                    core,
                    array: &array,
                    steps: s,
                })
                .collect();
            black_box(m.run_traces(&jobs))
        });
    });
    group.finish();
}

/// End-to-end macro: the MB-range zoo suite (wide mcalibrator sweep,
/// shared-cache detection, false-sharing sweep) on the fast path — the
/// workload the rewrite exists to make affordable.
fn bench_suite_macro(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/suite_macro");
    group.sample_size(10);
    group.bench_function("mb_smp_full_suite", |b| {
        let config = ZooConfig::mb_suite();
        b.iter(|| {
            let machine = Machine::with_seed(presets::mb_smp(), 42);
            let mut platform = SimPlatform::new(machine, None).with_seed(42);
            black_box(run_full_suite(&mut platform, &config))
        });
    });
    group.finish();
}

/// End-to-end macro: one `SimOracle` evaluation (threaded blocked
/// matmul replayed through `run_traces`) per problem size.
fn bench_oracle_macro(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/oracle_macro");
    for &n in &[32usize, 48] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let oracle = SimOracle::new(presets::tiny_smp(), 42, n);
            let config = oracle.space().config(&oracle.space().midpoint());
            b.iter(|| black_box(oracle.evaluate(&config)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_replay_blocked_shared,
    bench_replay_private,
    bench_replay_shared,
    bench_suite_macro,
    bench_oracle_macro,
);
criterion_main!(benches);
