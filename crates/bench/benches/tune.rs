//! Criterion benchmarks of search-based autotuning: what one oracle
//! evaluation costs on each oracle, and what a full search session
//! costs per strategy — the numbers behind `EXPERIMENTS.md`'s
//! BENCH_tune section.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use servet_sim::presets;
use servet_tune::compare::ground_truth_profile;
use servet_tune::{tune, Oracle, ProfileOracle, SimOracle, Strategy, TuneOptions};

fn bench_oracle_evaluation(c: &mut Criterion) {
    let sim = SimOracle::new(presets::tiny_smp(), 42, 32);
    let profile = ProfileOracle::new(ground_truth_profile(&presets::tiny_smp()), 32);
    let config = sim.space().config(&sim.space().midpoint());
    let mut group = c.benchmark_group("tune_oracle");
    group.bench_function("sim_trace_replay", |b| {
        b.iter(|| black_box(sim.evaluate(&config)));
    });
    group.bench_function("profile_closed_form", |b| {
        b.iter(|| black_box(profile.evaluate(&config)));
    });
    group.finish();
}

fn bench_search_strategies(c: &mut Criterion) {
    // The closed-form oracle isolates search overhead from oracle cost.
    let oracle = ProfileOracle::new(ground_truth_profile(&presets::dunnington()), 64);
    let space = oracle.space();
    let mut group = c.benchmark_group("tune_search");
    for strategy in Strategy::ALL {
        group.bench_with_input(
            BenchmarkId::new("strategy", strategy.name()),
            &strategy,
            |b, &strategy| {
                let options = TuneOptions::new(strategy);
                b.iter(|| black_box(tune(&oracle, &space, &options, 1)));
            },
        );
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    // Exhaustive over the simulator oracle is the expensive real case;
    // worker counts shift wall time but never the outcome.
    let oracle = SimOracle::new(presets::tiny_smp(), 42, 24);
    let space = oracle.space();
    let options = TuneOptions::new(Strategy::Exhaustive);
    let mut group = c.benchmark_group("tune_workers");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("exhaustive", workers),
            &workers,
            |b, &w| {
                b.iter(|| black_box(tune(&oracle, &space, &options, w)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_oracle_evaluation,
    bench_search_strategies,
    bench_parallel_scaling
);
criterion_main!(benches);
