//! Criterion benchmarks of the machine-simulator substrate: how fast the
//! cycle engine replays the measurement kernels that every experiment is
//! built on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use servet_sim::cache::SetAssocCache;
use servet_sim::machine::TraversalJob;
use servet_sim::membw::MemorySystem;
use servet_sim::{Machine, KB, MB};

fn bench_cache_probe(c: &mut Criterion) {
    let mut cache = SetAssocCache::with_geometry(3 * MB, 64, 12);
    // Pre-populate.
    for line in 0..32_768u64 {
        cache.insert(line);
    }
    c.bench_function("cache/probe_insert_hit", |b| {
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 97) % 32_768;
            if !cache.probe(black_box(line)) {
                cache.insert(line);
            }
        });
    });
}

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine/traverse");
    for &size in &[32 * KB, 2 * MB, 16 * MB] {
        let accesses = (size / KB) as u64 * 3;
        group.throughput(Throughput::Elements(accesses));
        group.bench_with_input(BenchmarkId::from_parameter(size / KB), &size, |b, &size| {
            let mut machine = Machine::new(servet_sim::presets::dunnington());
            let array = machine.alloc_array(size);
            b.iter(|| {
                machine.reset();
                black_box(machine.traverse(0, &array, KB, 1, 2))
            });
        });
    }
    group.finish();
}

fn bench_concurrent_traversal(c: &mut Criterion) {
    c.bench_function("machine/traverse_pair_shared_l3", |b| {
        let mut machine = Machine::new(servet_sim::presets::dunnington());
        let a = machine.alloc_array(8 * MB);
        let z = machine.alloc_array(8 * MB);
        b.iter(|| {
            machine.reset();
            let jobs = [
                TraversalJob {
                    core: 0,
                    array: &a,
                    stride: KB,
                },
                TraversalJob {
                    core: 1,
                    array: &z,
                    stride: KB,
                },
            ];
            black_box(machine.traverse_concurrent(&jobs, 1, 1))
        });
    });
}

fn bench_page_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine/alloc_array");
    for &size in &[(64 * KB), (16 * MB)] {
        group.bench_with_input(BenchmarkId::from_parameter(size / KB), &size, |b, &size| {
            let mut machine = Machine::new(servet_sim::presets::dunnington());
            b.iter(|| black_box(machine.alloc_array(size)));
        });
    }
    group.finish();
}

fn bench_maxmin_fair(c: &mut Criterion) {
    let spec = servet_sim::presets::finis_terrae_node();
    let system = MemorySystem::new(&spec.memory);
    let cores: Vec<usize> = (0..16).collect();
    c.bench_function("membw/maxmin_16_cores", |b| {
        b.iter(|| black_box(system.bandwidth(black_box(&cores))));
    });
}

fn bench_matmul_trace(c: &mut Criterion) {
    c.bench_function("machine/run_trace_matmul_48", |b| {
        let mut machine = Machine::new(servet_sim::presets::tiny_smp());
        let arena = machine.alloc_array(3 * 48 * 48 * 8);
        let trace = servet_autotune::tiling::matmul_trace(48, 16);
        b.iter(|| {
            machine.reset();
            black_box(machine.run_trace(0, &arena, &trace))
        });
    });
}

criterion_group!(
    benches,
    bench_cache_probe,
    bench_traversal,
    bench_concurrent_traversal,
    bench_page_allocation,
    bench_maxmin_fair,
    bench_matmul_trace
);
criterion_main!(benches);
