//! Criterion benchmarks of the observability substrate: what the suite
//! pays per counter bump, per histogram sample, and per recorded span —
//! the numbers that justify leaving instrumentation always-on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use servet_obs::{Counter, Histogram};

fn bench_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_counter");
    let owned = Counter::new();
    group.bench_function("owned_incr", |b| {
        b.iter(|| owned.incr());
    });
    // The global path adds a registry lookup (mutex + BTreeMap).
    group.bench_function("global_lookup_and_incr", |b| {
        b.iter(|| servet_obs::counter(black_box("bench.counter")).incr());
    });
    let cached = servet_obs::counter("bench.counter.cached");
    group.bench_function("global_cached_incr", |b| {
        b.iter(|| cached.incr());
    });
    group.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_histogram");
    let h = Histogram::new();
    let mut v = 1u64;
    group.bench_function("record", |b| {
        b.iter(|| {
            // Vary the sample so bucket selection is not branch-predicted
            // into irrelevance.
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v >> 32));
        });
    });
    for val in [0u64, 1000, u64::MAX] {
        h.record(val);
    }
    group.bench_function("snapshot", |b| {
        b.iter(|| black_box(h.snapshot()));
    });
    let snap = h.snapshot();
    group.bench_function("quantile", |b| {
        b.iter(|| black_box(snap.quantile(black_box(0.99))));
    });
    group.finish();
}

fn bench_span(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_span");
    // The log is bounded at MAX_SPANS; drain between measurements so the
    // benchmark never measures the drop-and-count path by accident.
    group.bench_function("record_drop", |b| {
        b.iter_with_large_drop(|| servet_obs::span(black_box("bench.span")));
        servet_obs::take_spans();
    });
    servet_obs::set_spans_enabled(false);
    group.bench_function("disabled_noop", |b| {
        b.iter_with_large_drop(|| servet_obs::span(black_box("bench.span.off")));
    });
    servet_obs::set_spans_enabled(true);
    group.finish();
}

criterion_group!(benches, bench_counter, bench_histogram, bench_span);
criterion_main!(benches);
