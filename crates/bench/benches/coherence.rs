//! Criterion benchmarks of the MESI coherence layer: line ping-pong
//! throughput through the simulated bus, and the full false-sharing
//! sweep the suite's new stage runs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use servet_core::false_sharing::{detect_false_sharing, FalseSharingConfig};
use servet_core::platform::{Platform, SharedStreamJob};
use servet_core::SimPlatform;

/// Two cores writing `count` accesses each, `separation` bytes apart —
/// sub-line separations ping-pong every line, line-sized ones are quiet.
fn pingpong_jobs(separation: usize, count: usize) -> Vec<SharedStreamJob> {
    [(0, 0), (1, separation)]
        .into_iter()
        .map(|(core, offset)| SharedStreamJob {
            core,
            offset,
            stride: 1024,
            count,
            write: true,
        })
        .collect()
}

fn bench_line_pingpong(c: &mut Criterion) {
    let mut group = c.benchmark_group("coherence/pingpong");
    for &separation in &[8usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(separation),
            &separation,
            |b, &separation| {
                let mut platform = SimPlatform::tiny();
                let jobs = pingpong_jobs(separation, 16);
                b.iter(|| {
                    black_box(platform.shared_stream_cycles(black_box(17 * 1024), &jobs));
                    platform.take_coherence_traffic();
                });
            },
        );
    }
    group.finish();
}

fn bench_false_sharing_sweep(c: &mut Criterion) {
    c.bench_function("coherence/false_sharing_sweep", |b| {
        let config = FalseSharingConfig::default();
        b.iter(|| {
            let mut platform = SimPlatform::tiny();
            black_box(detect_false_sharing(&mut platform, &config))
        });
    });
}

criterion_group!(benches, bench_line_pingpong, bench_false_sharing_sweep);
criterion_main!(benches);
