//! Criterion benchmarks of the registry serving layer: what a tuner pays
//! per advice request, and what the daemon sustains over loopback.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use servet_core::profile::MachineProfile;
use servet_core::suite::{run_full_suite, SuiteConfig};
use servet_core::SimPlatform;
use servet_registry::{
    compute_advice, profile_digest, serve, AdviceEngine, AdviceQuery, Registry, RegistryClient,
    ServerConfig,
};
use std::sync::Arc;
use std::time::Duration;

fn measured_profile() -> MachineProfile {
    let mut platform = SimPlatform::tiny_cluster().with_noise(0.0);
    run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024)).profile
}

fn temp_registry(tag: &str) -> Registry {
    let dir = std::env::temp_dir().join(format!("servet-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Registry::open(dir).unwrap()
}

fn bench_digest_and_store(c: &mut Criterion) {
    let profile = measured_profile();
    let mut group = c.benchmark_group("registry_store");
    group.bench_function("profile_digest", |b| {
        b.iter(|| black_box(profile_digest(&profile)));
    });
    let registry = temp_registry("store");
    let digest = registry.put(profile.clone(), Some("tiny")).unwrap();
    group.bench_function("put_existing", |b| {
        b.iter(|| black_box(registry.put(profile.clone(), None).unwrap()));
    });
    group.bench_function("get_hot_by_alias", |b| {
        b.iter(|| black_box(registry.get("tiny").unwrap()));
    });
    group.bench_function("get_hot_by_digest", |b| {
        b.iter(|| black_box(registry.get(&digest).unwrap()));
    });
    group.finish();
}

fn bench_advice(c: &mut Criterion) {
    let profile = measured_profile();
    let digest = profile_digest(&profile);
    let query = AdviceQuery::Bcast {
        ranks: 0,
        bytes: 8 * 1024,
    };
    let mut group = c.benchmark_group("registry_advice");
    group.bench_function("compute_bcast_cold", |b| {
        b.iter(|| black_box(compute_advice(&profile, &query).unwrap()));
    });
    let engine = AdviceEngine::new();
    engine.advise(&digest, &profile, &query).0.unwrap();
    group.bench_function("advise_bcast_memoized", |b| {
        b.iter(|| {
            let (outcome, cached) = engine.advise(&digest, &profile, &query);
            assert!(cached);
            black_box(outcome.unwrap())
        });
    });
    group.finish();
}

fn bench_loopback_round_trip(c: &mut Criterion) {
    let profile = measured_profile();
    let registry = Arc::new(temp_registry("serve"));
    let server = serve(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = RegistryClient::connect(server.addr()).unwrap();
    client.put(&profile, Some("tiny")).unwrap();
    let query = AdviceQuery::Tile {
        level: 1,
        elem_size: 8,
        matrices: 3,
        occupancy: 0.75,
    };

    let mut group = c.benchmark_group("registry_serve");
    group.bench_function("advise_round_trip", |b| {
        b.iter(|| black_box(client.advise("tiny", &query).unwrap()));
    });
    group.bench_function("get_round_trip", |b| {
        b.iter(|| black_box(client.get_profile("tiny").unwrap()));
    });
    group.finish();
    drop(client);
    server.shutdown();
}

criterion_group!(
    benches,
    bench_digest_and_store,
    bench_advice,
    bench_loopback_round_trip
);
criterion_main!(benches);
