//! Hierarchy-aware collective algorithm selection.
//!
//! The paper's §I cites hierarchy-aware collectives (refs. \[5\]-\[7\]) as a
//! prime consumer of topology knowledge. Given a measured
//! [`MachineProfile`], this module predicts the completion time of each
//! broadcast algorithm *using only profile data* (per-layer latencies and
//! the measured contention sweep) and picks the winner. The test suite
//! then verifies the pick against the ground-truth virtual cluster.

use crate::aggregation::slowdown_at;
use serde::{Deserialize, Serialize};
use servet_core::profile::MachineProfile;
pub use servet_net::collectives::BcastAlgorithm;

/// Predicted cost of one algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BcastPrediction {
    /// The algorithm.
    pub algorithm: BcastAlgorithm,
    /// Predicted completion time, µs.
    pub predicted_us: f64,
}

/// Predicted latency between two cores from the profile, with a large
/// penalty for unmeasured pairs.
fn latency(profile: &MachineProfile, a: usize, b: usize, size: usize) -> f64 {
    if a == b {
        return 0.0;
    }
    profile.latency_us(a, b, size).unwrap_or(1e6)
}

/// Slowdown estimate for `n` concurrent messages on the layer of `(a, b)`.
fn slowdown(profile: &MachineProfile, a: usize, b: usize, n: usize) -> f64 {
    let Some(comm) = profile.communication.as_ref() else {
        return 1.0;
    };
    match comm.layer_of(a, b) {
        Some(layer) => slowdown_at(comm, layer, n),
        None => 1.0,
    }
}

/// Predict the completion time of `algo` broadcasting `size` bytes from
/// core 0 to cores `0..ranks` (identity rank→core mapping).
pub fn predict_broadcast_us(
    profile: &MachineProfile,
    algo: BcastAlgorithm,
    ranks: usize,
    size: usize,
) -> f64 {
    assert!(ranks >= 1 && ranks <= profile.total_cores);
    match algo {
        BcastAlgorithm::Flat => (1..ranks).map(|r| latency(profile, 0, r, size)).sum(),
        BcastAlgorithm::BinomialTree => {
            binomial_rounds(&(0..ranks).collect::<Vec<_>>(), profile, size)
        }
        BcastAlgorithm::Hierarchical => {
            let per_node = profile.cores_per_node.max(1);
            let nodes: Vec<Vec<usize>> =
                (0..ranks).fold(Vec::new(), |mut acc: Vec<Vec<usize>>, r| {
                    let node = r / per_node;
                    if acc.len() <= node {
                        acc.push(Vec::new());
                    }
                    acc[node].push(r);
                    acc
                });
            let leaders: Vec<usize> = nodes.iter().map(|g| g[0]).collect();
            let inter = binomial_rounds(&leaders, profile, size);
            let intra = nodes
                .iter()
                .map(|g| binomial_rounds(g, profile, size))
                .fold(0.0, f64::max);
            inter + intra
        }
    }
}

/// Cost of a binomial tree over the given cores: each round's concurrent
/// messages cost the slowest one, adjusted by the measured contention at
/// that round's message count.
fn binomial_rounds(cores: &[usize], profile: &MachineProfile, size: usize) -> f64 {
    let n = cores.len();
    if n <= 1 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut have = 1usize;
    while have < n {
        let senders = have.min(n - have);
        let round: f64 = (0..senders)
            .map(|i| {
                let (a, b) = (cores[i], cores[have + i]);
                latency(profile, a, b, size) * slowdown(profile, a, b, senders)
            })
            .fold(0.0, f64::max);
        total += round;
        have += senders;
    }
    total
}

/// Pick the algorithm with the lowest predicted time; returns all
/// predictions, best first.
pub fn select_broadcast(
    profile: &MachineProfile,
    ranks: usize,
    size: usize,
) -> Vec<BcastPrediction> {
    servet_obs::counter("autotune.bcast.rankings").incr();
    let mut preds: Vec<BcastPrediction> = BcastAlgorithm::all()
        .into_iter()
        .map(|algorithm| BcastPrediction {
            algorithm,
            predicted_us: predict_broadcast_us(profile, algorithm, ranks, size),
        })
        .collect();
    preds.sort_by(|a, b| a.predicted_us.total_cmp(&b.predicted_us));
    preds
}

#[cfg(test)]
mod tests {
    use super::*;
    use servet_core::suite::{run_full_suite, SuiteConfig};
    use servet_core::SimPlatform;
    use servet_net::collectives::broadcast_time_us;

    fn profile() -> MachineProfile {
        let mut p = SimPlatform::tiny_cluster().with_noise(0.003);
        let cfg = SuiteConfig {
            skip_shared: true,
            skip_memory: true,
            ..SuiteConfig::small(256 * 1024)
        };
        run_full_suite(&mut p, &cfg).profile
    }

    #[test]
    fn flat_is_sum_binomial_is_less() {
        let prof = profile();
        let flat = predict_broadcast_us(&prof, BcastAlgorithm::Flat, 8, 8 * 1024);
        let tree = predict_broadcast_us(&prof, BcastAlgorithm::BinomialTree, 8, 8 * 1024);
        assert!(tree < flat, "tree {tree} vs flat {flat}");
    }

    #[test]
    fn selection_orders_predictions() {
        let prof = profile();
        let preds = select_broadcast(&prof, 8, 8 * 1024);
        assert_eq!(preds.len(), 3);
        assert!(preds
            .windows(2)
            .all(|w| w[0].predicted_us <= w[1].predicted_us));
    }

    #[test]
    fn predicted_winner_wins_on_ground_truth() {
        // The profile-driven pick must match (or tie within 10 %) the
        // empirically best algorithm on the actual virtual cluster.
        let prof = profile();
        let pick = select_broadcast(&prof, 8, 8 * 1024)[0].algorithm;
        let mut best = (BcastAlgorithm::Flat, f64::INFINITY);
        let mut picked_time = f64::INFINITY;
        for algo in BcastAlgorithm::all() {
            let mut cluster = servet_net::presets::tiny_cluster();
            let t = broadcast_time_us(&mut cluster, algo, 8, 8 * 1024);
            if t < best.1 {
                best = (algo, t);
            }
            if algo == pick {
                picked_time = t;
            }
        }
        assert!(
            picked_time <= best.1 * 1.10,
            "picked {pick:?} at {picked_time}, best {best:?}"
        );
    }

    #[test]
    fn single_rank_is_free() {
        let prof = profile();
        for algo in BcastAlgorithm::all() {
            assert_eq!(predict_broadcast_us(&prof, algo, 1, 1024), 0.0);
        }
    }

    #[test]
    fn hierarchical_wins_across_nodes_for_small_messages() {
        let prof = profile();
        // All 8 cores span two nodes; the hierarchical tree should not
        // lose to the flat broadcast.
        let hier = predict_broadcast_us(&prof, BcastAlgorithm::Hierarchical, 8, 4 * 1024);
        let flat = predict_broadcast_us(&prof, BcastAlgorithm::Flat, 8, 4 * 1024);
        assert!(hier < flat);
    }
}
