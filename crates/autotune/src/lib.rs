//! # servet-autotune
//!
//! Autotuning consumers of Servet machine profiles — the *point* of the
//! suite. §V of the paper: "The information about the possible overheads
//! can be used to automatically map the processes to certain cores ...
//! Tiling is one of the most widely used optimization techniques and our
//! suite can help ... it is possible to adapt the behavior of an
//! application to maximize its performance."
//!
//! * [`placement`] — profile-guided process→core mapping (greedy hill
//!   climbing and simulated annealing) against linear and random baselines,
//!   in the spirit of MPIPP (the paper's ref. \[9\]) but fed by *measured*
//!   latencies instead of vendor specifications.
//! * [`tiling`] — tile-size selection for blocked matrix multiplication
//!   from the detected cache sizes, with a trace-replay evaluator.
//! * [`aggregation`] — gather-vs-send decisions from the measured
//!   interconnect scalability ("it is possible to optimize the
//!   communication performance by gathering messages in poorly scalable
//!   systems", §III-D).
//! * [`collectives`] — hierarchy-aware broadcast algorithm selection from
//!   the measured communication layers.
//! * [`padding`] — per-thread padding and alignment from the measured
//!   false-sharing sweep, with the micro-probe line size as fallback.

pub mod aggregation;
pub mod collectives;
pub mod concurrency;
pub mod padding;
pub mod placement;
pub mod tiling;

pub use aggregation::{aggregation_decision, AggregationDecision};
pub use collectives::select_broadcast;
pub use concurrency::{advise_memory_threads, ConcurrencyAdvice};
pub use padding::{advise_padding, PaddingAdvice};
pub use placement::{CommPattern, PlacementResult, Placer};
pub use tiling::{select_tile, TileChoice};
