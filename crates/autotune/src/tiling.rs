//! Tile-size selection from detected cache sizes.
//!
//! §V of the paper: "Tiling is one of the most widely used optimization
//! techniques and our suite can help to this technique by providing all
//! the cache sizes in a portable way." The classic rule is applied to the
//! *measured* sizes: pick the largest tile whose working set (several
//! tiles of the operand matrices) fits the target cache level with a
//! safety margin; the trace-replay evaluator lets callers verify the
//! choice against the simulated hierarchy.

use serde::{Deserialize, Serialize};
use servet_core::profile::MachineProfile;
use servet_sim::Machine;

/// A selected tile size and its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileChoice {
    /// Tile edge length, in elements.
    pub tile: usize,
    /// Cache level the tile targets (1-based).
    pub level: u8,
    /// Detected size of that cache level, bytes.
    pub cache_size: usize,
}

/// Pick a tile edge for a blocked matrix multiply (`C += A × B`, square
/// tiles) so that `matrices` tiles of `elem_size`-byte elements fill at
/// most `occupancy` of cache level `level`.
///
/// Returns `None` when the profile lacks that level. Tiles are rounded
/// down to a multiple of 8 elements (full cache lines of f64), minimum 8.
pub fn select_tile(
    profile: &MachineProfile,
    level: u8,
    elem_size: usize,
    matrices: usize,
    occupancy: f64,
) -> Option<TileChoice> {
    servet_obs::counter("autotune.tile.selections").incr();
    let cache_size = profile.cache_size(level)?;
    let budget = cache_size as f64 * occupancy / matrices as f64;
    let raw = (budget / elem_size as f64).sqrt() as usize;
    let tile = (raw / 8 * 8).max(8);
    Some(TileChoice {
        tile,
        level,
        cache_size,
    })
}

/// Generate the virtual-address trace of a blocked `n × n` f64 matrix
/// multiply with tile edge `t`, over one arena laying out A, B, C
/// contiguously.
///
/// The trace visits, per tile triple `(ib, jb, kb)`, the accesses
/// `C[i][j] += A[i][k] * B[k][j]` in the usual i-k-j order.
pub fn matmul_trace(n: usize, t: usize) -> Vec<u64> {
    let t = t.min(n).max(1);
    let elem = 8u64;
    let a_base = 0u64;
    let b_base = (n * n) as u64 * elem;
    let c_base = 2 * (n * n) as u64 * elem;
    let addr = |base: u64, r: usize, c: usize| base + ((r * n + c) as u64) * elem;
    let mut trace = Vec::with_capacity(3 * n * n * n.div_ceil(t));
    let mut ib = 0;
    while ib < n {
        let mut kb = 0;
        while kb < n {
            let mut jb = 0;
            while jb < n {
                for i in ib..(ib + t).min(n) {
                    for k in kb..(kb + t).min(n) {
                        trace.push(addr(a_base, i, k));
                        for j in jb..(jb + t).min(n) {
                            trace.push(addr(b_base, k, j));
                            trace.push(addr(c_base, i, j));
                        }
                    }
                }
                jb += t;
            }
            kb += t;
        }
        ib += t;
    }
    trace
}

/// Average simulated cycles per access of a blocked matmul on `machine`.
pub fn evaluate_tile(machine: &mut Machine, n: usize, tile: usize) -> f64 {
    let arena = machine.alloc_array(3 * n * n * 8);
    machine.reset();
    let trace = matmul_trace(n, tile);
    machine.run_trace(0, &arena, &trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use servet_core::cache_detect::{CacheLevelEstimate, DetectionMethod};

    fn profile_with_caches(sizes: &[usize]) -> MachineProfile {
        MachineProfile {
            schema_version: servet_core::profile::SCHEMA_VERSION,
            machine: "synthetic".into(),
            cores_per_node: 1,
            total_cores: 1,
            page_size: 4096,
            mcalibrator: None,
            cache_levels: sizes
                .iter()
                .enumerate()
                .map(|(i, &size)| CacheLevelEstimate {
                    level: (i + 1) as u8,
                    size,
                    method: DetectionMethod::GradientPeak,
                })
                .collect(),
            shared_caches: None,
            memory: None,
            communication: None,
            micro: None,
            false_sharing: None,
        }
    }

    #[test]
    fn tile_fits_cache_budget() {
        let prof = profile_with_caches(&[32 * 1024, 2 * 1024 * 1024]);
        let choice = select_tile(&prof, 2, 8, 3, 0.75).unwrap();
        let working_set = 3 * choice.tile * choice.tile * 8;
        assert!(working_set <= (2 * 1024 * 1024) as usize);
        assert_eq!(choice.tile % 8, 0);
        assert_eq!(choice.level, 2);
        assert_eq!(choice.cache_size, 2 * 1024 * 1024);
    }

    #[test]
    fn bigger_cache_bigger_tile() {
        let small = profile_with_caches(&[16 * 1024]);
        let large = profile_with_caches(&[64 * 1024]);
        let ts = select_tile(&small, 1, 8, 3, 0.75).unwrap().tile;
        let tl = select_tile(&large, 1, 8, 3, 0.75).unwrap().tile;
        assert!(tl > ts);
    }

    #[test]
    fn missing_level_is_none() {
        let prof = profile_with_caches(&[32 * 1024]);
        assert!(select_tile(&prof, 3, 8, 3, 0.75).is_none());
    }

    #[test]
    fn minimum_tile_is_a_line() {
        let prof = profile_with_caches(&[512]);
        assert_eq!(select_tile(&prof, 1, 8, 3, 0.5).unwrap().tile, 8);
    }

    #[test]
    fn trace_covers_all_accesses() {
        let n = 8;
        let trace = matmul_trace(n, 4);
        // i-k loop: n*n A loads; inner j: n^3 B and n^3 C accesses.
        assert_eq!(trace.len(), n * n * n.div_ceil(4) * 4 / 4 + 2 * n * n * n);
        // All addresses within the 3-matrix arena.
        let arena = (3 * n * n * 8) as u64;
        assert!(trace.iter().all(|&a| a < arena));
    }

    #[test]
    fn tile_of_at_least_n_degenerates_to_untiled() {
        let t1 = matmul_trace(6, 6);
        let t2 = matmul_trace(6, 100);
        assert_eq!(t1, t2);
    }

    #[test]
    fn good_tile_beats_untiled_on_sim() {
        // tiny_smp: 8 KB L1. n = 64 f64s: one matrix row = 512 B; the
        // full 3×32 KB working set thrashes L1, a 16×16 tile (3·2 KB)
        // fits it.
        let mut m = Machine::new(servet_sim::presets::tiny_smp());
        let untiled = evaluate_tile(&mut m, 64, 64);
        let tiled = evaluate_tile(&mut m, 64, 16);
        assert!(
            tiled < untiled,
            "tiled {tiled} should beat untiled {untiled}"
        );
    }

    #[test]
    fn selected_tile_is_near_optimal_on_sim() {
        // Evaluate a range of tiles on the simulated machine: the
        // cache-derived choice must be within 15 % of the best sampled.
        let prof = profile_with_caches(&[8 * 1024]);
        let choice = select_tile(&prof, 1, 8, 3, 0.75).unwrap();
        let mut m = Machine::new(servet_sim::presets::tiny_smp());
        let n = 48;
        let chosen = evaluate_tile(&mut m, n, choice.tile);
        let best = [8usize, 16, 24, 32, 48]
            .iter()
            .map(|&t| evaluate_tile(&mut m, n, t))
            .fold(f64::INFINITY, f64::min);
        assert!(
            chosen <= best * 1.15,
            "chosen tile {} costs {chosen}, best sampled {best}",
            choice.tile
        );
    }
}
