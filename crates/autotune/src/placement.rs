//! Profile-guided process placement.
//!
//! Given an application's communication pattern (how much each pair of
//! ranks talks) and a [`MachineProfile`] with measured per-layer latencies,
//! find a rank→core mapping that minimizes predicted communication cost.
//! This is the MPIPP idea (paper ref. \[9\]) with one crucial difference the
//! paper emphasizes: the costs are *measured by Servet*, not read from
//! vendor documentation.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use servet_core::profile::MachineProfile;

/// A communication pattern: `weight[i][j]` messages of `message_size`
/// bytes between ranks `i` and `j` per iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommPattern {
    /// Number of ranks.
    pub ranks: usize,
    /// Symmetric weight matrix, `ranks × ranks`, row-major.
    pub weight: Vec<f64>,
    /// Message size in bytes used when costing the pattern.
    pub message_size: usize,
}

impl CommPattern {
    fn idx(&self, a: usize, b: usize) -> usize {
        a * self.ranks + b
    }

    /// Weight between two ranks.
    pub fn weight_between(&self, a: usize, b: usize) -> f64 {
        self.weight[self.idx(a, b)]
    }

    /// A ring: each rank talks to its two neighbours.
    pub fn ring(ranks: usize, message_size: usize) -> Self {
        let mut p = Self {
            ranks,
            weight: vec![0.0; ranks * ranks],
            message_size,
        };
        for r in 0..ranks {
            let next = (r + 1) % ranks;
            let (i, j) = (p.idx(r, next), p.idx(next, r));
            p.weight[i] = 1.0;
            p.weight[j] = 1.0;
        }
        p
    }

    /// A 2-D five-point stencil on a `rows × cols` process grid
    /// (`ranks = rows * cols`).
    pub fn stencil2d(rows: usize, cols: usize, message_size: usize) -> Self {
        let ranks = rows * cols;
        let mut p = Self {
            ranks,
            weight: vec![0.0; ranks * ranks],
            message_size,
        };
        for r in 0..rows {
            for c in 0..cols {
                let me = r * cols + c;
                let mut link = |other: usize| {
                    let (i, j) = (p.idx(me, other), p.idx(other, me));
                    p.weight[i] = 1.0;
                    p.weight[j] = 1.0;
                };
                if r + 1 < rows {
                    link((r + 1) * cols + c);
                }
                if c + 1 < cols {
                    link(r * cols + c + 1);
                }
            }
        }
        p
    }

    /// All-to-all: every pair exchanges equally.
    pub fn all_to_all(ranks: usize, message_size: usize) -> Self {
        let mut p = Self {
            ranks,
            weight: vec![1.0; ranks * ranks],
            message_size,
        };
        for r in 0..ranks {
            let i = p.idx(r, r);
            p.weight[i] = 0.0;
        }
        p
    }

    /// Shift (circular exchange): rank `i` exchanges with rank
    /// `(i + offset) mod ranks` — the pattern of transposes and butterfly
    /// stages, and a worst case for linear placement when `offset` strides
    /// across the machine hierarchy.
    pub fn shift(ranks: usize, offset: usize, message_size: usize) -> Self {
        let mut p = Self {
            ranks,
            weight: vec![0.0; ranks * ranks],
            message_size,
        };
        for r in 0..ranks {
            let other = (r + offset) % ranks;
            if other != r {
                let (i, j) = (p.idx(r, other), p.idx(other, r));
                p.weight[i] = 1.0;
                p.weight[j] = 1.0;
            }
        }
        p
    }

    /// Master-worker: rank 0 exchanges with everyone else.
    pub fn master_worker(ranks: usize, message_size: usize) -> Self {
        let mut p = Self {
            ranks,
            weight: vec![0.0; ranks * ranks],
            message_size,
        };
        for r in 1..ranks {
            let (i, j) = (p.idx(0, r), p.idx(r, 0));
            p.weight[i] = 1.0;
            p.weight[j] = 1.0;
        }
        p
    }
}

/// Result of a placement search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementResult {
    /// `mapping[rank]` is the core the rank is pinned to.
    pub mapping: Vec<usize>,
    /// Predicted communication cost (µs per iteration) of the mapping.
    pub cost_us: f64,
}

/// Placement optimizer over a machine profile.
pub struct Placer<'a> {
    profile: &'a MachineProfile,
    /// Latency charged for pairs the profile has no measurement for
    /// (out-of-range cores): a large penalty keeps the search inside the
    /// measured machine.
    fallback_us: f64,
}

impl<'a> Placer<'a> {
    /// Build a placer over a profile that includes communication results.
    pub fn new(profile: &'a MachineProfile) -> Self {
        assert!(
            profile.communication.is_some(),
            "profile lacks communication data"
        );
        Self {
            profile,
            fallback_us: 1e6,
        }
    }

    /// Predicted one-way latency between two cores.
    fn latency(&self, a: usize, b: usize, size: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        self.profile
            .latency_us(a, b, size)
            .unwrap_or(self.fallback_us)
    }

    /// Predicted cost (µs) of running `pattern` under `mapping`.
    pub fn cost(&self, pattern: &CommPattern, mapping: &[usize]) -> f64 {
        assert_eq!(mapping.len(), pattern.ranks);
        let mut total = 0.0;
        for a in 0..pattern.ranks {
            for b in a + 1..pattern.ranks {
                let w = pattern.weight_between(a, b) + pattern.weight_between(b, a);
                if w > 0.0 {
                    total += w * self.latency(mapping[a], mapping[b], pattern.message_size);
                }
            }
        }
        total
    }

    /// The naive mapping: rank `i` on core `i`.
    pub fn linear(&self, pattern: &CommPattern) -> PlacementResult {
        let mapping: Vec<usize> = (0..pattern.ranks).collect();
        let cost_us = self.cost(pattern, &mapping);
        PlacementResult { mapping, cost_us }
    }

    /// A random mapping (baseline).
    pub fn random(&self, pattern: &CommPattern, seed: u64) -> PlacementResult {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut mapping: Vec<usize> = (0..self.profile.total_cores).collect();
        mapping.shuffle(&mut rng);
        mapping.truncate(pattern.ranks);
        let cost_us = self.cost(pattern, &mapping);
        PlacementResult { mapping, cost_us }
    }

    /// Greedy hill climbing by pairwise swaps until no swap improves.
    pub fn greedy(&self, pattern: &CommPattern) -> PlacementResult {
        let mut mapping: Vec<usize> = (0..pattern.ranks).collect();
        let mut cost = self.cost(pattern, &mapping);
        loop {
            let mut improved = false;
            for i in 0..mapping.len() {
                for j in i + 1..mapping.len() {
                    mapping.swap(i, j);
                    let c = self.cost(pattern, &mapping);
                    if c + 1e-12 < cost {
                        cost = c;
                        improved = true;
                    } else {
                        mapping.swap(i, j);
                    }
                }
            }
            if !improved {
                break;
            }
        }
        PlacementResult {
            mapping,
            cost_us: cost,
        }
    }

    /// Simulated annealing over swaps; never returns a mapping worse than
    /// its linear starting point.
    pub fn anneal(&self, pattern: &CommPattern, seed: u64, iterations: usize) -> PlacementResult {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut mapping: Vec<usize> = (0..pattern.ranks).collect();
        let mut cost = self.cost(pattern, &mapping);
        let mut best = mapping.clone();
        let mut best_cost = cost;
        let t0 = (cost / pattern.ranks.max(1) as f64).max(1e-6);
        for it in 0..iterations {
            let temp = t0 * (1.0 - it as f64 / iterations as f64).max(1e-3);
            let i = rng.gen_range(0..mapping.len());
            let j = rng.gen_range(0..mapping.len());
            if i == j {
                continue;
            }
            mapping.swap(i, j);
            let c = self.cost(pattern, &mapping);
            let accept = c < cost || rng.gen::<f64>() < ((cost - c) / temp).exp();
            if accept {
                cost = c;
                if c < best_cost {
                    best_cost = c;
                    best = mapping.clone();
                }
            } else {
                mapping.swap(i, j);
            }
        }
        PlacementResult {
            mapping: best,
            cost_us: best_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servet_core::suite::{run_full_suite, SuiteConfig};
    use servet_core::SimPlatform;

    fn profile() -> MachineProfile {
        let mut p = SimPlatform::tiny_cluster().with_noise(0.003);
        let cfg = SuiteConfig {
            skip_shared: true,
            skip_memory: true,
            ..SuiteConfig::small(256 * 1024)
        };
        run_full_suite(&mut p, &cfg).profile
    }

    #[test]
    fn pattern_generators_are_symmetric() {
        for p in [
            CommPattern::ring(6, 1024),
            CommPattern::stencil2d(2, 3, 1024),
            CommPattern::all_to_all(5, 1024),
            CommPattern::master_worker(4, 1024),
        ] {
            for a in 0..p.ranks {
                assert_eq!(p.weight_between(a, a), 0.0);
                for b in 0..p.ranks {
                    assert_eq!(p.weight_between(a, b), p.weight_between(b, a));
                }
            }
        }
    }

    #[test]
    fn stencil_links_neighbours_only() {
        let p = CommPattern::stencil2d(2, 2, 64);
        assert_eq!(p.weight_between(0, 1), 1.0);
        assert_eq!(p.weight_between(0, 2), 1.0);
        assert_eq!(p.weight_between(0, 3), 0.0);
    }

    #[test]
    fn greedy_never_worse_than_linear() {
        let prof = profile();
        let placer = Placer::new(&prof);
        for pattern in [
            CommPattern::ring(8, 8 * 1024),
            CommPattern::stencil2d(2, 4, 8 * 1024),
            CommPattern::master_worker(8, 8 * 1024),
        ] {
            let lin = placer.linear(&pattern);
            let greedy = placer.greedy(&pattern);
            assert!(
                greedy.cost_us <= lin.cost_us + 1e-9,
                "greedy {} vs linear {}",
                greedy.cost_us,
                lin.cost_us
            );
        }
    }

    #[test]
    fn anneal_never_worse_than_linear() {
        let prof = profile();
        let placer = Placer::new(&prof);
        let pattern = CommPattern::ring(8, 8 * 1024);
        let lin = placer.linear(&pattern);
        let ann = placer.anneal(&pattern, 42, 2000);
        assert!(ann.cost_us <= lin.cost_us + 1e-9);
    }

    #[test]
    fn placement_beats_adversarial_pattern() {
        // A ring over ranks laid out to cross the node boundary repeatedly
        // is exactly what a good placer fixes: pairs of heavy talkers land
        // on the shared-cache cores.
        let prof = profile();
        let placer = Placer::new(&prof);
        // Master-worker: the workers should cluster around the master's
        // node; the greedy result must beat random placements on average.
        let pattern = CommPattern::master_worker(6, 8 * 1024);
        let greedy = placer.greedy(&pattern);
        let mut rand_costs = Vec::new();
        for seed in 0..8 {
            rand_costs.push(placer.random(&pattern, seed).cost_us);
        }
        let mean_rand: f64 = rand_costs.iter().sum::<f64>() / rand_costs.len() as f64;
        assert!(
            greedy.cost_us < mean_rand,
            "greedy {} vs mean random {mean_rand}",
            greedy.cost_us
        );
    }

    #[test]
    fn cost_accounts_weights() {
        let prof = profile();
        let placer = Placer::new(&prof);
        let mut pattern = CommPattern::ring(4, 1024);
        let base = placer.cost(&pattern, &[0, 1, 2, 3]);
        for w in pattern.weight.iter_mut() {
            *w *= 2.0;
        }
        let doubled = placer.cost(&pattern, &[0, 1, 2, 3]);
        assert!((doubled - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn placer_requires_comm_profile() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let cfg = SuiteConfig {
            skip_comm: true,
            ..SuiteConfig::small(128 * 1024)
        };
        let prof = run_full_suite(&mut p, &cfg).profile;
        Placer::new(&prof);
    }
}
