//! Padding and alignment advice from the false-sharing sweep.
//!
//! The coherence extension of the suite measures the smallest separation
//! at which two writing cores stop ping-ponging a line
//! ([`servet_core::false_sharing`]). This module turns that measurement
//! into the advice a code generator or runtime acts on: how many bytes
//! to leave between per-thread slots of a shared structure, and what to
//! align those slots to. When a profile predates the sweep (or the
//! machine could not run it) the micro-probe line size stands in, marked
//! as unmeasured so callers can tell a measured cure from a guess.

use serde::{Deserialize, Serialize};
use servet_core::profile::MachineProfile;

/// How per-thread data should be padded on a machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaddingAdvice {
    /// Bytes to leave between per-thread slots so concurrent writers
    /// never share a line.
    pub pad_bytes: usize,
    /// Recommended slot alignment: `pad_bytes` rounded up to a power of
    /// two, so a slot never straddles the coherence granule.
    pub align_bytes: usize,
    /// Whether the advice comes from the measured false-sharing sweep
    /// (`true`) or fell back to the micro-probe line size (`false`).
    pub measured: bool,
    /// Worst per-access slowdown the sweep observed for unpadded data —
    /// what ignoring this advice costs.
    pub worst_ratio: Option<f64>,
    /// Consumer-side cycles to pull one producer-written line, when the
    /// sweep fitted the §III-D cache-mediated communication model.
    pub handoff_cycles_per_line: Option<f64>,
}

impl PaddingAdvice {
    /// Stride (bytes) for an array of per-thread elements of
    /// `elem_bytes`: the element size rounded up to a multiple of
    /// [`pad_bytes`](Self::pad_bytes).
    pub fn padded_stride(&self, elem_bytes: usize) -> usize {
        let pad = self.pad_bytes.max(1);
        elem_bytes.max(1).div_ceil(pad) * pad
    }
}

/// Derive padding advice from a machine profile.
///
/// Prefers the measured false-sharing sweep; falls back to the
/// micro-probe line size (marked unmeasured). `None` when the profile
/// carries neither — a unicore machine, or a suite run without the
/// coherence extension and micro probes.
pub fn advise_padding(profile: &MachineProfile) -> Option<PaddingAdvice> {
    servet_obs::counter("autotune.padding.calls").incr();
    if let Some(fs) = &profile.false_sharing {
        if let Some(pad) = fs.advised_padding {
            let worst = fs
                .points
                .iter()
                .map(|p| p.ratio)
                .filter(|r| r.is_finite())
                .fold(f64::NEG_INFINITY, f64::max);
            return Some(PaddingAdvice {
                pad_bytes: pad,
                align_bytes: pad.next_power_of_two(),
                measured: true,
                worst_ratio: (worst > f64::NEG_INFINITY).then_some(worst),
                handoff_cycles_per_line: fs.comm_model.map(|m| m.per_line_cycles),
            });
        }
    }
    let line = profile.line_size()?;
    Some(PaddingAdvice {
        pad_bytes: line,
        align_bytes: line.next_power_of_two(),
        measured: false,
        worst_ratio: None,
        handoff_cycles_per_line: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use servet_core::micro::MicroProfile;
    use servet_core::suite::{run_full_suite, SuiteConfig};
    use servet_core::SimPlatform;

    fn bare_profile() -> MachineProfile {
        MachineProfile {
            schema_version: servet_core::SCHEMA_VERSION,
            machine: "bare".into(),
            cores_per_node: 4,
            total_cores: 4,
            page_size: 4096,
            mcalibrator: None,
            cache_levels: Vec::new(),
            shared_caches: None,
            memory: None,
            communication: None,
            micro: None,
            false_sharing: None,
        }
    }

    #[test]
    fn measured_sweep_drives_the_advice() {
        let mut p = SimPlatform::tiny().with_noise(0.003);
        let cfg = SuiteConfig {
            run_false_sharing: true,
            skip_comm: true,
            ..SuiteConfig::small(128 * 1024)
        };
        let report = run_full_suite(&mut p, &cfg);
        let advice = advise_padding(&report.profile).expect("sweep ran");
        assert!(advice.measured);
        assert!(advice.pad_bytes >= 64, "{advice:?}");
        assert!(advice.align_bytes >= advice.pad_bytes);
        assert!(advice.align_bytes.is_power_of_two());
        assert!(advice.worst_ratio.unwrap() > 2.0, "{advice:?}");
        assert!(advice.handoff_cycles_per_line.unwrap() > 0.0);
    }

    #[test]
    fn micro_line_size_is_the_fallback() {
        let mut profile = bare_profile();
        profile.micro = Some(MicroProfile {
            line_size: Some(64),
            l1_associativity: None,
            tlb_entries: None,
        });
        let advice = advise_padding(&profile).unwrap();
        assert!(!advice.measured);
        assert_eq!(advice.pad_bytes, 64);
        assert_eq!(advice.worst_ratio, None);
    }

    #[test]
    fn profile_without_either_source_gives_none() {
        assert_eq!(advise_padding(&bare_profile()), None);
    }

    #[test]
    fn padded_stride_rounds_up() {
        let advice = PaddingAdvice {
            pad_bytes: 64,
            align_bytes: 64,
            measured: true,
            worst_ratio: None,
            handoff_cycles_per_line: None,
        };
        assert_eq!(advice.padded_stride(1), 64);
        assert_eq!(advice.padded_stride(64), 64);
        assert_eq!(advice.padded_stride(65), 128);
    }
}
