//! Message aggregation decisions from measured interconnect scalability.
//!
//! §III-D: "Sending concurrently N messages of size S usually costs more
//! than sending one message of size N*S. Thus, it is possible to optimize
//! the communication performance by gathering messages in poorly scalable
//! systems." This module makes that call from a measured
//! [`CommResult`]: compare the predicted cost of `n` concurrent messages
//! of size `s` (isolated latency × measured slowdown at `n`) against one
//! message of size `n·s` plus a per-message gather cost.

use serde::{Deserialize, Serialize};
use servet_core::comm::CommResult;

/// The verdict for one (layer, message count, size) question.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregationDecision {
    /// Predicted cost of sending the messages concurrently, µs.
    pub concurrent_us: f64,
    /// Predicted cost of gathering and sending one large message, µs.
    pub aggregated_us: f64,
    /// Whether gathering is predicted to win.
    pub aggregate: bool,
}

/// Measured slowdown of `n` concurrent messages on `layer`, interpolated
/// from the scalability sweep (linear between sampled counts, clamped at
/// the ends).
pub fn slowdown_at(comm: &CommResult, layer: usize, n: usize) -> f64 {
    let sweep = &comm.layers[layer].scalability;
    if sweep.is_empty() || n <= 1 {
        return 1.0;
    }
    if let Some(&(_, _, s)) = sweep.iter().find(|&&(count, _, _)| count == n) {
        return s;
    }
    let below = sweep.iter().rev().find(|&&(count, _, _)| count < n);
    let above = sweep.iter().find(|&&(count, _, _)| count > n);
    match (below, above) {
        (Some(&(n0, _, s0)), Some(&(n1, _, s1))) => {
            let f = (n - n0) as f64 / (n1 - n0) as f64;
            s0 + f * (s1 - s0)
        }
        (Some(&(_, _, s0)), None) => s0,
        (None, Some(&(_, _, s1))) => s1,
        (None, None) => 1.0,
    }
}

/// Decide whether `n` messages of `size` bytes on `layer` should be
/// gathered into one. `gather_ns_per_byte` models the local copy cost of
/// packing (a memcpy through cache, ~0.1–0.5 ns/B).
pub fn aggregation_decision(
    comm: &CommResult,
    layer: usize,
    n: usize,
    size: usize,
    gather_ns_per_byte: f64,
) -> AggregationDecision {
    assert!(layer < comm.layers.len(), "layer out of range");
    assert!(n >= 1);
    let l = &comm.layers[layer];
    let concurrent_us = l.latency_for_size(size) * slowdown_at(comm, layer, n);
    let pack_us = (n * size) as f64 * gather_ns_per_byte / 1000.0;
    let aggregated_us = l.latency_for_size(n * size) + pack_us;
    AggregationDecision {
        concurrent_us,
        aggregated_us,
        aggregate: aggregated_us < concurrent_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servet_core::comm::{characterize_communication, CommConfig};
    use servet_core::SimPlatform;

    fn comm() -> CommResult {
        let mut p = SimPlatform::tiny_cluster();
        let mut cfg = CommConfig::small(8 * 1024);
        cfg.scalability_counts = vec![1, 2, 4, 8];
        characterize_communication(&mut p, &cfg)
    }

    #[test]
    fn slowdown_interpolates() {
        let c = comm();
        let inter = c.layers.len() - 1;
        let s1 = slowdown_at(&c, inter, 1);
        let s8 = slowdown_at(&c, inter, 8);
        assert!((s1 - 1.0).abs() < 0.1);
        assert!(s8 > s1, "s8 = {s8}");
        let s6 = slowdown_at(&c, inter, 6);
        let s4 = slowdown_at(&c, inter, 4);
        assert!(s4 <= s6 && s6 <= s8, "{s4} {s6} {s8}");
        // Beyond the sweep: clamped.
        assert_eq!(slowdown_at(&c, inter, 100), s8);
    }

    #[test]
    fn poorly_scalable_layer_prefers_aggregation() {
        // Inter-node on the tiny cluster degrades with concurrency; many
        // small messages should be gathered.
        let c = comm();
        let inter = c.layers.len() - 1;
        let d = aggregation_decision(&c, inter, 8, 512, 0.2);
        assert!(
            d.aggregate,
            "expected aggregation: concurrent {} vs aggregated {}",
            d.concurrent_us, d.aggregated_us
        );
    }

    #[test]
    fn scalable_layer_keeps_messages_separate() {
        // The shared-cache layer barely degrades; for large messages the
        // rendezvous cost of one huge message plus packing loses.
        let c = comm();
        let d = aggregation_decision(&c, 0, 2, 256 * 1024, 0.3);
        assert!(
            !d.aggregate,
            "expected no aggregation: concurrent {} vs aggregated {}",
            d.concurrent_us, d.aggregated_us
        );
    }

    #[test]
    fn single_message_never_aggregates() {
        let c = comm();
        let d = aggregation_decision(&c, 0, 1, 1024, 0.2);
        assert!(!d.aggregate);
        assert!(d.aggregated_us >= d.concurrent_us);
    }

    #[test]
    #[should_panic]
    fn bad_layer_panics() {
        let c = comm();
        aggregation_decision(&c, 99, 2, 64, 0.2);
    }
}
