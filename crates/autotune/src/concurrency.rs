//! Memory-concurrency advice from the measured scalability curves.
//!
//! §III-C of the paper: "autotuning could optimize codes by limiting the
//! number of cores accessing to memory if a poorly scalable memory system
//! is detected". Given the Fig. 6 characterization, this module answers
//! the concrete question a memory-bound kernel asks: *how many threads
//! should touch memory at once, and on which cores?*

use serde::{Deserialize, Serialize};
use servet_core::mem_overhead::MemOverheadResult;
use servet_core::platform::CoreId;

/// Advice for a memory-bound parallel region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcurrencyAdvice {
    /// Recommended number of concurrently streaming cores per colliding
    /// group.
    pub threads_per_group: usize,
    /// Aggregate bandwidth (GB/s) the group achieves at that thread count.
    pub aggregate_gbs: f64,
    /// Aggregate bandwidth if every core of the group streamed.
    pub full_aggregate_gbs: f64,
    /// The cores of one representative group, in the measured sweep order
    /// (prefix of length `threads_per_group` is the recommended set).
    pub group: Vec<CoreId>,
}

/// Pick the smallest concurrency whose aggregate bandwidth is within
/// `tolerance` (e.g. 0.05) of the best aggregate seen on the strongest
/// overhead class. Returns `None` when no contention was measured (every
/// core may stream freely).
pub fn advise_memory_threads(
    memory: &MemOverheadResult,
    tolerance: f64,
) -> Option<ConcurrencyAdvice> {
    servet_obs::counter("autotune.threads.calls").incr();
    let class = memory.overheads.first()?;
    let group = class.groups.first()?.clone();
    if class.scalability.is_empty() {
        return None;
    }
    // Aggregate curve: 1 core at the reference, then the measured sweep.
    let mut aggregates: Vec<(usize, f64)> = vec![(1, memory.reference_gbs)];
    aggregates.extend(
        class
            .scalability
            .iter()
            .map(|&(n, per_core)| (n, per_core * n as f64)),
    );
    let best = aggregates
        .iter()
        .map(|&(_, a)| a)
        .fold(f64::NEG_INFINITY, f64::max);
    let &(threads, aggregate) = aggregates
        .iter()
        .find(|&&(_, a)| a >= best * (1.0 - tolerance))
        .expect("best exists in the list");
    let full = aggregates.last().expect("non-empty").1;
    Some(ConcurrencyAdvice {
        threads_per_group: threads,
        aggregate_gbs: aggregate,
        full_aggregate_gbs: full,
        group,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use servet_core::mem_overhead::{characterize_memory, MemOverheadConfig};
    use servet_core::SimPlatform;

    #[test]
    fn saturated_bus_recommends_few_threads() {
        // tiny_smp: 3 GB/s FSB, 2 GB/s per core. Aggregate: 1 core -> 2,
        // 2+ cores -> 3 (saturated). Recommendation: 2 threads.
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let memory = characterize_memory(&mut p, &MemOverheadConfig::default());
        let advice = advise_memory_threads(&memory, 0.05).unwrap();
        assert_eq!(advice.threads_per_group, 2, "{advice:?}");
        assert!((advice.aggregate_gbs - 3.0).abs() < 0.1);
        assert!((advice.full_aggregate_gbs - 3.0).abs() < 0.1);
        assert_eq!(advice.group.len(), 4);
    }

    #[test]
    fn numa_bus_advice() {
        // tiny_numa: per-pair buses of 2.5 GB/s, cores of 2.0 GB/s. The
        // strongest class is the bus: 1 core -> 2.0, 2 cores -> 2.5.
        // Going to 2 threads buys 25%: recommended.
        let mut p = SimPlatform::tiny_numa().with_noise(0.0);
        let memory = characterize_memory(&mut p, &MemOverheadConfig::default());
        let advice = advise_memory_threads(&memory, 0.05).unwrap();
        assert_eq!(advice.threads_per_group, 2);
        assert!((advice.aggregate_gbs - 2.5).abs() < 0.1);
        assert_eq!(advice.group, vec![0, 1]);
    }

    #[test]
    fn no_contention_no_advice() {
        // A machine whose bus outruns its cores: no overhead class at all.
        let mut spec = servet_sim::presets::tiny_smp();
        spec.memory.resources[0].capacity_gbs = 100.0;
        let machine = servet_sim::Machine::new(spec);
        let mut p = SimPlatform::new(machine, None).with_noise(0.0);
        let memory = characterize_memory(&mut p, &MemOverheadConfig::default());
        assert!(advise_memory_threads(&memory, 0.05).is_none());
    }

    #[test]
    fn tolerance_trades_threads_for_bandwidth() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let memory = characterize_memory(&mut p, &MemOverheadConfig::default());
        // A huge tolerance accepts the single-threaded aggregate.
        let lax = advise_memory_threads(&memory, 0.5).unwrap();
        assert_eq!(lax.threads_per_group, 1);
    }
}
