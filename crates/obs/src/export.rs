//! JSON export and the human-readable summary.
//!
//! The exporter writes plain JSON by hand — `servet-obs` is std-only, so
//! nothing here depends on serde. The schema is stable and documented on
//! [`export_json`]; consumers that want typed access (the run manifest in
//! `servet-core`, the registry's `stats` response) convert the snapshot
//! structs themselves.

use crate::histogram::HistogramSnapshot;
use crate::metrics::Metrics;
use crate::span::{self, format_ns, SpanRecord};
use std::fmt::Write as _;

/// Escape `s` for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn histogram_json(snap: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = snap
        .buckets
        .iter()
        .map(|&(upper, n)| format!("[{upper},{n}]"))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\
         \"p50\":{},\"p99\":{},\"buckets\":[{}]}}",
        snap.count,
        snap.sum,
        snap.min,
        snap.max,
        snap.mean(),
        snap.quantile(0.50),
        snap.quantile(0.99),
        buckets.join(",")
    )
}

fn span_json(s: &SpanRecord) -> String {
    let annotation = s
        .annotation
        .as_ref()
        .map(|a| format!(",\"annotation\":\"{}\"", json_escape(a)))
        .unwrap_or_default();
    format!(
        "{{\"name\":\"{}\",\"depth\":{},\"start_ns\":{},\"duration_ns\":{}{annotation}}}",
        json_escape(&s.name),
        s.depth,
        s.start_ns,
        s.duration_ns
    )
}

/// Serialize `metrics` plus the global span log as one JSON object:
///
/// ```text
/// {
///   "counters":   { "<name>": <u64>, ... },
///   "histograms": { "<name>": {"count":..,"sum":..,"min":..,"max":..,
///                              "mean":..,"p50":..,"p99":..,
///                              "buckets":[[<upper_bound>,<count>],..]}, .. },
///   "spans": [ {"name":..,"depth":..,"start_ns":..,"duration_ns":..}, .. ],
///   "spans_dropped": <u64>
/// }
/// ```
pub fn export_json_from(metrics: &Metrics) -> String {
    let counters: Vec<String> = metrics
        .counters_snapshot()
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
        .collect();
    let histograms: Vec<String> = metrics
        .histograms_snapshot()
        .iter()
        .map(|(k, s)| format!("\"{}\":{}", json_escape(k), histogram_json(s)))
        .collect();
    let spans: Vec<String> = span::spans_snapshot().iter().map(span_json).collect();
    format!(
        "{{\"counters\":{{{}}},\"histograms\":{{{}}},\"spans\":[{}],\"spans_dropped\":{}}}",
        counters.join(","),
        histograms.join(","),
        spans.join(","),
        span::dropped_spans()
    )
}

/// [`export_json_from`] over the global metric registry.
pub fn export_json() -> String {
    export_json_from(crate::metrics::global())
}

/// Human-readable summary of `metrics` plus the span log — the body of
/// the CLI's `--trace` footer.
pub fn summary_from(metrics: &Metrics) -> String {
    let mut out = String::new();
    let counters = metrics.counters_snapshot();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &counters {
            let _ = writeln!(out, "  {name:<44} {value}");
        }
    }
    let histograms = metrics.histograms_snapshot();
    let occupied: Vec<_> = histograms.iter().filter(|(_, s)| !s.is_empty()).collect();
    if !occupied.is_empty() {
        out.push_str("histograms:\n");
        for (name, s) in occupied {
            let _ = writeln!(
                out,
                "  {name:<32} n={:<8} mean={:<10} p50={:<10} p99={:<10} max={}",
                s.count,
                format_ns(s.mean() as u64),
                format_ns(s.quantile(0.50)),
                format_ns(s.quantile(0.99)),
                format_ns(s.max),
            );
        }
    }
    let spans = span::spans_snapshot();
    let _ = writeln!(
        out,
        "spans: {} recorded ({} dropped)",
        spans.len(),
        span::dropped_spans()
    );
    out
}

/// [`summary_from`] over the global metric registry.
pub fn summary() -> String {
    summary_from(crate::metrics::global())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t"), "x\\n\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn export_shape_contains_registered_metrics() {
        let m = Metrics::new();
        m.counter("export.hits").add(3);
        m.histogram("export.lat").record(1000);
        let json = export_json_from(&m);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"export.hits\":3"), "{json}");
        assert!(json.contains("\"export.lat\":{\"count\":1"), "{json}");
        assert!(json.contains("\"buckets\":[[1023,1]]"), "{json}");
        assert!(json.contains("\"spans\":["), "{json}");
    }

    #[test]
    fn summary_mentions_counters_histograms_and_spans() {
        let m = Metrics::new();
        m.counter("sum.c").add(7);
        m.histogram("sum.h").record(2_000_000);
        let text = summary_from(&m);
        assert!(text.contains("sum.c"), "{text}");
        assert!(text.contains("n=1"), "{text}");
        assert!(text.contains("2.00 ms"), "{text}");
        assert!(text.contains("spans:"), "{text}");
    }
}
