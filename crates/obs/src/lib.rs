//! # servet-obs
//!
//! The observability substrate of the Servet workspace: span-based scoped
//! timers, monotonic counters, and log-bucketed latency histograms behind
//! a cheap global registry, with JSON export and a human-readable summary
//! printer. Everything is `std`-only — no dependencies — so every crate
//! in the workspace (and the CI doc sandbox) can use it freely.
//!
//! The three primitives, in increasing cost order:
//!
//! * [`Counter`] — one relaxed atomic add; always on; for event totals
//!   (`mcalibrator.samples`, `advice.computed`).
//! * [`Histogram`] — one relaxed add into a log2 bucket plus min/max;
//!   always on; for latency distributions (the registry server records one
//!   per NDJSON op).
//! * [`span()`] — an RAII guard that appends to a bounded global log on
//!   drop; for *phase*-level timing (suite stages, calibration sweeps,
//!   advice computations). `servet --trace` renders the log as a tree.
//!
//! ## Usage
//!
//! ```
//! // Phase timing: the guard records the span when it drops.
//! {
//!     let _phase = servet_obs::span("demo.phase");
//!     servet_obs::counter("demo.items").add(3);
//!     servet_obs::histogram("demo.latency_ns").record(1_250);
//! }
//! let spans = servet_obs::spans_snapshot();
//! assert!(spans.iter().any(|s| s.name == "demo.phase"));
//! assert!(servet_obs::counter("demo.items").get() >= 3);
//! // Machine- and human-readable dumps of everything recorded so far:
//! let json = servet_obs::export_json();
//! assert!(json.contains("\"demo.items\""));
//! println!("{}", servet_obs::summary());
//! ```
//!
//! Components that need isolation from the global namespace (the registry
//! server's per-op latencies, unit tests) own a [`Metrics`] registry or
//! raw [`Histogram`]/[`Counter`] values directly; the global registry is
//! a convenience, not a requirement.

#![warn(missing_docs)]

pub mod counter;
pub mod export;
pub mod histogram;
pub mod metrics;
pub mod scope;
pub mod span;

pub use counter::Counter;
pub use export::{export_json, export_json_from, json_escape, summary, summary_from};
pub use histogram::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use metrics::Metrics;
pub use scope::{AttachGuard, RunScope, ScopeData, ScopeHandle};
pub use span::{
    dropped_spans, format_ns, render_span_tree, set_spans_enabled, span, spans_enabled,
    spans_snapshot, take_spans, SpanGuard, SpanRecord, MAX_SPANS,
};

use std::sync::Arc;

/// The counter named `name`: the active [`RunScope`]'s private counter
/// when one is installed on this thread, the global registry's otherwise
/// (created on first use either way). Scoped totals merge into the global
/// registry when the scope finishes.
pub fn counter(name: &str) -> Arc<Counter> {
    match scope::current() {
        Some(scope) => scope.counter(name),
        None => metrics::global().counter(name),
    }
}

/// The histogram named `name` in the global registry (created on first
/// use).
pub fn histogram(name: &str) -> Arc<Histogram> {
    metrics::global().histogram(name)
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_round_trip() {
        crate::counter("facade.count").add(2);
        crate::histogram("facade.lat").record(512);
        {
            let _g = crate::span("facade.span");
        }
        assert!(crate::counter("facade.count").get() >= 2);
        let json = crate::export_json();
        assert!(json.contains("facade.count"), "{json}");
        assert!(json.contains("facade.lat"), "{json}");
    }
}
