//! Scoped span timers and the process-wide span log.
//!
//! [`span("name")`](span) returns a guard that, on drop, appends one
//! [`SpanRecord`] — name, nesting depth, start offset, wall duration — to
//! a global log. Nesting depth is tracked per thread, so a span opened
//! while another is live on the same thread renders as its child in
//! [`render_span_tree`]. Recording is one `Mutex` push per *completed*
//! span; spans are meant for phase-level instrumentation (a suite stage, a
//! calibration sweep, one advice computation), not per-sample loops —
//! counters and histograms cover those.
//!
//! The log is bounded ([`MAX_SPANS`]): once full, further spans are
//! dropped and counted, so a long-lived server cannot leak memory through
//! instrumentation. [`take_spans`] drains the log (the CLI's `--trace`
//! does this once at exit); [`spans_snapshot`] copies it without draining
//! (the run-manifest writer does this). [`set_spans_enabled`] with
//! `false` turns `span()` into a no-op for benchmark purity.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Upper bound on retained span records; beyond it spans are dropped and
/// counted in [`dropped_spans`].
pub const MAX_SPANS: usize = 65_536;

static ENABLED: AtomicBool = AtomicBool::new(true);
static DROPPED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// The process-wide epoch every `start_ns` is relative to (first use of
/// any span pins it).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn log() -> &'static Mutex<Vec<SpanRecord>> {
    static LOG: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, dot-separated by convention (`"suite.cache_size"`).
    pub name: String,
    /// Nesting depth on its thread at open time (0 = top level).
    pub depth: usize,
    /// Start, nanoseconds since the process-wide span epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Free-form payload attached via [`SpanGuard::annotate`] — e.g. the
    /// coherence traffic a suite stage generated. Rendered in brackets
    /// after the name by [`render_span_tree`].
    pub annotation: Option<String>,
}

/// Live guard for an open span; dropping it records the span.
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when spans were disabled at open time (no-op guard).
    name: Option<String>,
    depth: usize,
    start: Instant,
    annotation: Option<String>,
}

impl SpanGuard {
    /// Wall time elapsed since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Attach a payload to the span's record (last call wins). A no-op
    /// on a disabled guard.
    pub fn annotate(&mut self, text: impl Into<String>) {
        if self.name.is_some() {
            self.annotation = Some(text.into());
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else {
            return;
        };
        let duration = self.start.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let record = SpanRecord {
            name,
            depth: self.depth,
            start_ns: saturating_ns(self.start.saturating_duration_since(epoch())),
            duration_ns: saturating_ns(duration),
            annotation: self.annotation.take(),
        };
        // An active per-run scope on this thread owns the record; it
        // reaches the global log when the scope merges on finish.
        if let Some(scope) = crate::scope::current() {
            scope.record_span(record);
            return;
        }
        append_to_global(std::iter::once(record));
    }
}

/// Append records to the bounded global log, counting overflow into
/// [`dropped_spans`]. Used by the direct recording path and by
/// [`crate::RunScope`] when a finished scope merges its spans back.
pub(crate) fn append_to_global(records: impl IntoIterator<Item = SpanRecord>) {
    let mut log = log().lock().unwrap_or_else(|e| e.into_inner());
    for record in records {
        if log.len() >= MAX_SPANS {
            DROPPED.fetch_add(1, Ordering::Relaxed);
        } else {
            log.push(record);
        }
    }
}

fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Open a span; it records itself when the returned guard drops.
pub fn span(name: impl Into<String>) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard {
            name: None,
            depth: 0,
            start: Instant::now(),
            annotation: None,
        };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    let _ = epoch(); // pin the epoch no later than the first span's start
    SpanGuard {
        name: Some(name.into()),
        depth,
        start: Instant::now(),
        annotation: None,
    }
}

/// Globally enable or disable span recording (`true` at startup).
/// Counters and histograms are unaffected.
pub fn set_spans_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether spans are currently recorded.
pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drain the span log, returning every record accumulated so far and
/// resetting the drop counter.
pub fn take_spans() -> Vec<SpanRecord> {
    DROPPED.store(0, Ordering::Relaxed);
    std::mem::take(&mut *log().lock().unwrap_or_else(|e| e.into_inner()))
}

/// Copy of the span log without draining it.
pub fn spans_snapshot() -> Vec<SpanRecord> {
    log().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Spans discarded because the log was full.
pub fn dropped_spans() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Render spans as an indented tree, one line per span, sorted by start
/// time with children indented under their parents:
///
/// ```text
///    1.23 s   suite
///  890.12 ms    suite.cache_size
///  880.01 ms      mcalibrator.sweep
/// ```
pub fn render_span_tree(spans: &[SpanRecord]) -> String {
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.start_ns, s.depth));
    let mut out = String::new();
    for s in ordered {
        out.push_str(&format!(
            "{:>10}  {}{}",
            format_ns(s.duration_ns),
            "  ".repeat(s.depth),
            s.name
        ));
        if let Some(note) = &s.annotation {
            out.push_str(&format!("  [{note}]"));
        }
        out.push('\n');
    }
    out
}

/// Human-readable rendering of a nanosecond quantity (`"417 ns"`,
/// `"12.34 us"`, `"8.90 ms"`, `"1.23 s"`).
pub fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The span log is process-global, so every assertion here filters by
    // test-unique span names instead of assuming an empty log — and tests
    // that record or toggle ENABLED serialize on one lock so a disabled
    // window in one test cannot swallow another test's spans.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_record_name_depth_and_duration() {
        let _serial = serial();
        {
            let _outer = span("t1.outer");
            let _inner = span("t1.inner");
        }
        let spans = spans_snapshot();
        let outer = spans.iter().find(|s| s.name == "t1.outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "t1.inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(outer.duration_ns >= inner.duration_ns);
    }

    #[test]
    fn disabled_spans_do_not_record() {
        let _serial = serial();
        set_spans_enabled(false);
        {
            let _g = span("t2.invisible");
        }
        set_spans_enabled(true);
        assert!(!spans_snapshot().iter().any(|s| s.name == "t2.invisible"));
    }

    #[test]
    fn depth_recovers_after_disabled_window() {
        let _serial = serial();
        // A no-op guard must not disturb the thread's depth accounting.
        set_spans_enabled(false);
        drop(span("t3.noop"));
        set_spans_enabled(true);
        {
            let _a = span("t3.a");
        }
        let spans = spans_snapshot();
        assert_eq!(spans.iter().find(|s| s.name == "t3.a").unwrap().depth, 0);
    }

    #[test]
    fn tree_rendering_indents_children() {
        let spans = vec![
            SpanRecord {
                name: "root".into(),
                depth: 0,
                start_ns: 0,
                duration_ns: 2_000_000,
                annotation: None,
            },
            SpanRecord {
                name: "child".into(),
                depth: 1,
                start_ns: 10,
                duration_ns: 1_500,
                annotation: Some("inv=3".into()),
            },
        ];
        let tree = render_span_tree(&spans);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("2.00 ms") && lines[0].ends_with("root"));
        assert!(lines[1].contains("1.50 us") && lines[1].ends_with("  child  [inv=3]"));
    }

    #[test]
    fn annotations_survive_to_the_record() {
        let _serial = serial();
        {
            let mut g = span("t5.annotated");
            g.annotate("first");
            g.annotate("coh inv=7");
        }
        let spans = spans_snapshot();
        let rec = spans.iter().find(|s| s.name == "t5.annotated").unwrap();
        assert_eq!(rec.annotation.as_deref(), Some("coh inv=7"));

        set_spans_enabled(false);
        {
            let mut g = span("t5.disabled");
            g.annotate("dropped");
        }
        set_spans_enabled(true);
        assert!(!spans_snapshot().iter().any(|s| s.name == "t5.disabled"));
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(0), "0 ns");
        assert_eq!(format_ns(999), "999 ns");
        assert_eq!(format_ns(1_500), "1.50 us");
        assert_eq!(format_ns(2_250_000), "2.25 ms");
        assert_eq!(format_ns(3_000_000_000), "3.00 s");
    }
}
