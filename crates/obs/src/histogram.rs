//! Log-bucketed latency histograms.
//!
//! A [`Histogram`] spreads `u64` samples (typically nanoseconds) over 65
//! power-of-two buckets: bucket 0 holds exactly the value `0`, and bucket
//! `i ≥ 1` holds `[2^(i-1), 2^i - 1]` — so the whole `u64` range is
//! covered, recording is one relaxed `fetch_add` plus min/max updates, and
//! a snapshot is a few hundred bytes however many samples were taken.
//! Quantiles come from bucket interpolation and are therefore upper
//! bounds accurate to a factor of two, which is plenty for "is p99 a
//! microsecond or a millisecond" serving questions.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per power of two of `u64`.
pub const NUM_BUCKETS: usize = 65;

/// The bucket a value lands in: 0 for the value `0`, otherwise
/// `floor(log2(value)) + 1`, so bucket `i ≥ 1` spans `[2^(i-1), 2^i - 1]`.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `index` (the last bucket's is
/// `u64::MAX`).
///
/// # Panics
/// If `index >= NUM_BUCKETS`.
pub fn bucket_upper_bound(index: usize) -> u64 {
    assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A concurrent histogram of `u64` samples over log2 buckets.
///
/// All updates are relaxed atomics; `record` never allocates and never
/// locks, so it is safe on serving hot paths.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    /// Saturating sum of all samples (`u64::MAX` once saturated).
    sum: AtomicU64,
    /// `u64::MAX` while empty.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating sum: a wrap would silently corrupt the mean, and
        // u64::MAX outliers (clamped durations) must not poison it.
        let mut seen = self.sum.load(Ordering::Relaxed);
        loop {
            let next = seen.saturating_add(value);
            match self
                .sum
                .compare_exchange_weak(seen, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// True when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// A point-in-time copy of the whole histogram.
    ///
    /// The snapshot is not atomic with respect to concurrent `record`
    /// calls (a racing sample may appear in the count but not yet in its
    /// bucket); for latency reporting that skew is irrelevant.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_upper_bound(i), n))
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], detached from the atomics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Occupied buckets as `(inclusive upper bound, samples)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound on the `q`-quantile (`q` in `[0, 1]`): the inclusive
    /// upper bound of the bucket holding the rank-`⌈q·count⌉` sample,
    /// clamped to the observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return upper.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        // Every power of two opens a new bucket; its predecessor closes one.
        for k in 1..64 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k + 1, "2^{k}");
            assert_eq!(bucket_index(v - 1), k, "2^{k} - 1");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_are_consistent_with_indexing() {
        for i in 0..NUM_BUCKETS {
            let upper = bucket_upper_bound(i);
            assert_eq!(bucket_index(upper), i, "upper bound of bucket {i}");
            if upper < u64::MAX {
                assert_eq!(bucket_index(upper + 1), i + 1);
            }
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_bucket_panics() {
        bucket_upper_bound(NUM_BUCKETS);
    }

    #[test]
    fn empty_snapshot_is_all_zeroes() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.quantile(0.5), 0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn zero_sample_lands_in_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.buckets, vec![(0, 1)]);
        assert_eq!(snap.quantile(1.0), 0);
    }

    #[test]
    fn u64_max_sample_is_representable_and_sum_saturates() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.min, u64::MAX);
        assert_eq!(snap.sum, u64::MAX, "sum must saturate, not wrap");
        assert_eq!(snap.buckets, vec![(u64::MAX, 2)]);
        assert_eq!(snap.quantile(0.5), u64::MAX);
    }

    #[test]
    fn boundary_values_split_between_buckets() {
        let h = Histogram::new();
        // 1023 is the last value of the [512, 1023] bucket; 1024 opens the
        // [1024, 2047] bucket.
        h.record(1023);
        h.record(1024);
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![(1023, 1), (2047, 1)]);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds_clamped_to_max() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        // Ranks 1-4 live in the [8,15]/[16,31]/[32,63] buckets.
        assert_eq!(snap.quantile(0.0), 15); // rank clamps to 1
        assert_eq!(snap.quantile(0.2), 15);
        assert_eq!(snap.quantile(0.5), 31);
        assert_eq!(snap.quantile(0.8), 63);
        // The top sample's bucket is [512,1023] but max=1000 clamps it.
        assert_eq!(snap.quantile(1.0), 1000);
        assert!((snap.mean() - 220.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 8000);
        assert_eq!(snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 8000);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 7999);
    }
}
