//! Per-run observability scopes.
//!
//! The global span log and metric registry are process-wide, which is the
//! right default for a CLI that runs one measurement per process — but it
//! corrupts per-run records as soon as several suite runs execute
//! concurrently (the zoo driver runs hundreds): spans from different runs
//! interleave in the global log and counter totals can no longer be
//! attributed to a run.
//!
//! A [`RunScope`] fixes that. While a scope is active on a thread, every
//! [`span()`](crate::span()) completed on that thread and every
//! [`counter()`](crate::counter()) resolved on it records into the
//! scope's private sink instead of the globals. [`RunScope::finish`]
//! returns the collected [`ScopeData`] and *merges* it into the global
//! view (spans appended to the global log, counter totals added to the
//! global registry), so process-wide reporting — `servet --trace`, the
//! metric summary — still sees everything.
//!
//! Scopes are thread-scoped: a worker thread spawned *inside* a scoped
//! region does not inherit the scope automatically. Code that fans out
//! and records from child threads passes a [`ScopeHandle`]
//! ([`RunScope::handle`]) and calls [`ScopeHandle::attach`] in the child.
//! Histograms stay global: none of the per-run records consume them, and
//! their merge semantics (bucket-wise addition) would complicate the
//! scope for no consumer.
//!
//! Counters resolved through the facade are scope-routed at *lookup*
//! time: a `Arc<Counter>` obtained inside a scope and cached past
//! [`RunScope::finish`] keeps counting into a sink nobody reads. Resolve
//! counters per event (as all workspace call sites do) or keep the Arc's
//! lifetime inside the scope.

use crate::counter::Counter;
use crate::metrics::Metrics;
use crate::span::{self, SpanRecord};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The sink shared by a [`RunScope`] and its [`ScopeHandle`]s.
#[derive(Debug, Default)]
pub(crate) struct ScopeShared {
    spans: Mutex<Vec<SpanRecord>>,
    counters: Metrics,
}

impl ScopeShared {
    pub(crate) fn record_span(&self, record: SpanRecord) {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(record);
    }

    pub(crate) fn counter(&self, name: &str) -> Arc<Counter> {
        self.counters.counter(name)
    }
}

thread_local! {
    /// Innermost-active-last stack of scopes on this thread.
    static ACTIVE: RefCell<Vec<Arc<ScopeShared>>> = const { RefCell::new(Vec::new()) };
}

/// The scope recording on the current thread, if any (the innermost one).
pub(crate) fn current() -> Option<Arc<ScopeShared>> {
    ACTIVE.with(|stack| stack.borrow().last().cloned())
}

fn push(shared: &Arc<ScopeShared>) {
    ACTIVE.with(|stack| stack.borrow_mut().push(Arc::clone(shared)));
}

/// Remove the innermost occurrence of `shared` from this thread's stack.
fn pop(shared: &Arc<ScopeShared>) {
    ACTIVE.with(|stack| {
        let mut stack = stack.borrow_mut();
        if let Some(at) = stack.iter().rposition(|s| Arc::ptr_eq(s, shared)) {
            stack.remove(at);
        }
    });
}

/// Everything a scope collected: its spans (in completion order) and its
/// counter totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScopeData {
    /// Spans completed while the scope was active, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Counter name → total accumulated inside the scope.
    pub counters: BTreeMap<String, u64>,
}

/// An active per-run collection scope. Create with [`RunScope::begin`];
/// end with [`RunScope::finish`] (or drop, which merges into the global
/// view without returning the data).
#[derive(Debug)]
pub struct RunScope {
    shared: Arc<ScopeShared>,
    finished: bool,
}

impl RunScope {
    /// Start recording this thread's spans and counters into a fresh
    /// private sink.
    pub fn begin() -> Self {
        let shared = Arc::new(ScopeShared::default());
        push(&shared);
        Self {
            shared,
            finished: false,
        }
    }

    /// A cloneable handle a worker thread can [`attach`](ScopeHandle::attach)
    /// so its records land in this scope too.
    pub fn handle(&self) -> ScopeHandle {
        ScopeHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stop recording, merge the collected data into the global span log
    /// and metric registry, and return it. Call on the thread that called
    /// [`RunScope::begin`].
    pub fn finish(mut self) -> ScopeData {
        self.finish_inner().expect("scope finished twice")
    }

    fn finish_inner(&mut self) -> Option<ScopeData> {
        if self.finished {
            return None;
        }
        self.finished = true;
        pop(&self.shared);
        let spans =
            std::mem::take(&mut *self.shared.spans.lock().unwrap_or_else(|e| e.into_inner()));
        let counters = self.shared.counters.counters_snapshot();
        // Merge into the process-wide view so global reporting still
        // covers scoped runs.
        span::append_to_global(spans.iter().cloned());
        for (name, total) in &counters {
            if *total > 0 {
                crate::metrics::global().counter(name).add(*total);
            }
        }
        Some(ScopeData { spans, counters })
    }
}

impl Drop for RunScope {
    fn drop(&mut self) {
        let _ = self.finish_inner();
    }
}

/// A handle that lets another thread record into a [`RunScope`].
#[derive(Debug, Clone)]
pub struct ScopeHandle {
    shared: Arc<ScopeShared>,
}

impl ScopeHandle {
    /// Route the current thread's spans and counters into the scope until
    /// the returned guard drops. The owning [`RunScope`] must outlive the
    /// guard for the records to be collected (late records after
    /// `finish` land in a sink nobody reads).
    pub fn attach(&self) -> AttachGuard {
        push(&self.shared);
        AttachGuard {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// RAII guard of [`ScopeHandle::attach`]; detaches on drop.
#[derive(Debug)]
pub struct AttachGuard {
    shared: Arc<ScopeShared>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        pop(&self.shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_collects_spans_and_counters_separately_from_global() {
        let before_global = crate::counter("scope.test.events").get();
        let scope = RunScope::begin();
        {
            let _s = crate::span("scope.test.phase");
            crate::counter("scope.test.events").add(3);
        }
        let data = scope.finish();
        assert_eq!(data.counters.get("scope.test.events"), Some(&3));
        assert!(data.spans.iter().any(|s| s.name == "scope.test.phase"));
        // Merged into the global view on finish.
        assert_eq!(crate::counter("scope.test.events").get(), before_global + 3);
        assert!(crate::spans_snapshot()
            .iter()
            .any(|s| s.name == "scope.test.phase"));
    }

    #[test]
    fn concurrent_scopes_do_not_interleave() {
        let barrier = std::sync::Barrier::new(2);
        let (a, b) = std::thread::scope(|s| {
            let t1 = s.spawn(|| {
                let scope = RunScope::begin();
                barrier.wait();
                for _ in 0..50 {
                    let _s = crate::span("scope.test.a");
                    crate::counter("scope.test.a").incr();
                }
                scope.finish()
            });
            let t2 = s.spawn(|| {
                let scope = RunScope::begin();
                barrier.wait();
                for _ in 0..50 {
                    let _s = crate::span("scope.test.b");
                    crate::counter("scope.test.b").incr();
                }
                scope.finish()
            });
            (t1.join().unwrap(), t2.join().unwrap())
        });
        assert_eq!(a.spans.len(), 50);
        assert!(a.spans.iter().all(|s| s.name == "scope.test.a"));
        assert_eq!(a.counters.get("scope.test.a"), Some(&50));
        assert_eq!(a.counters.get("scope.test.b"), None);
        assert_eq!(b.spans.len(), 50);
        assert!(b.spans.iter().all(|s| s.name == "scope.test.b"));
    }

    #[test]
    fn handle_routes_child_thread_records_into_the_scope() {
        let scope = RunScope::begin();
        let handle = scope.handle();
        std::thread::scope(|s| {
            s.spawn(move || {
                let _attached = handle.attach();
                let _s = crate::span("scope.test.child");
                crate::counter("scope.test.child").incr();
            });
        });
        let data = scope.finish();
        assert!(data.spans.iter().any(|s| s.name == "scope.test.child"));
        assert_eq!(data.counters.get("scope.test.child"), Some(&1));
    }

    #[test]
    fn nested_scopes_route_to_the_innermost() {
        let outer = RunScope::begin();
        {
            let inner = RunScope::begin();
            crate::counter("scope.test.nested").incr();
            let inner_data = inner.finish();
            assert_eq!(inner_data.counters.get("scope.test.nested"), Some(&1));
        }
        crate::counter("scope.test.outer_only").incr();
        let outer_data = outer.finish();
        assert_eq!(outer_data.counters.get("scope.test.nested"), None);
        assert_eq!(outer_data.counters.get("scope.test.outer_only"), Some(&1));
    }

    #[test]
    fn dropped_scope_still_merges_into_global() {
        let before = crate::counter("scope.test.dropped").get();
        {
            let _scope = RunScope::begin();
            crate::counter("scope.test.dropped").add(2);
        }
        assert_eq!(crate::counter("scope.test.dropped").get(), before + 2);
    }
}
