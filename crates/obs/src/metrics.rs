//! Named metric registries and the process-global default.
//!
//! A [`Metrics`] maps names to shared [`Counter`]s and [`Histogram`]s.
//! Lookup takes a `Mutex` once per *name resolution*; callers on hot
//! paths keep the returned `Arc` and update it lock-free thereafter.
//! [`global()`] is the process-wide instance the convenience functions in
//! the crate root use; components wanting isolation (the registry
//! server's per-op latencies, tests) own their `Metrics` or their raw
//! `Histogram`s directly.

use crate::counter::Counter;
use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A named collection of counters and histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use. The
    /// same name always yields the same counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Name → value for every registered counter.
    pub fn counters_snapshot(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Name → snapshot for every registered histogram.
    pub fn histograms_snapshot(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Forget every registered metric. Outstanding `Arc`s keep working
    /// but are no longer reported.
    pub fn clear(&self) {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

/// The process-global metric registry.
pub fn global() -> &'static Metrics {
    static GLOBAL: OnceLock<Metrics> = OnceLock::new();
    GLOBAL.get_or_init(Metrics::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_instance() {
        let m = Metrics::new();
        m.counter("a").add(2);
        m.counter("a").add(3);
        assert_eq!(m.counter("a").get(), 5);
        m.histogram("h").record(7);
        assert_eq!(m.histogram("h").snapshot().count, 1);
    }

    #[test]
    fn snapshots_are_sorted_by_name() {
        let m = Metrics::new();
        m.counter("z").incr();
        m.counter("a").incr();
        let names: Vec<String> = m.counters_snapshot().into_keys().collect();
        assert_eq!(names, vec!["a".to_string(), "z".to_string()]);
    }

    #[test]
    fn clear_forgets_names_but_old_handles_survive() {
        let m = Metrics::new();
        let c = m.counter("gone");
        m.clear();
        c.incr(); // must not panic
        assert!(m.counters_snapshot().is_empty());
    }

    #[test]
    fn global_is_shared() {
        let name = "obs.test.global_is_shared";
        global().counter(name).add(4);
        assert!(global().counter(name).get() >= 4);
    }
}
