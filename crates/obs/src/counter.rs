//! Monotonic event counters.
//!
//! A [`Counter`] is a single relaxed `AtomicU64` — cheap enough to leave
//! permanently enabled on hot paths. Counters only ever grow; rates and
//! deltas are the reader's job (snapshot twice, subtract).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// All operations use relaxed atomics: counters order nothing, they only
/// accumulate. Cloning the *value* is [`Counter::get`]; the counter itself
/// is shared by reference (the global registry hands out `Arc<Counter>`).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n` (saturating at `u64::MAX` is not attempted: wrapping a u64
    /// event counter takes centuries at any realistic rate).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
