//! Malformed-input robustness: clients that lie, stall, vanish, or
//! flood must cost the server a bounded amount of memory and exactly
//! zero extra threads.
//!
//! Every test here reads raw wire bytes (no serializer in the client
//! path) because the server's own defensive replies — oversized-line
//! and `busy:` rejections — are hand-built lines, emitted even when no
//! JSON backend is available.

use servet_registry::{serve, Registry, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn temp_registry(tag: &str) -> Arc<Registry> {
    let dir = std::env::temp_dir().join(format!("servet-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Arc::new(Registry::open(dir).unwrap())
}

/// Poll `cond` until it holds or a 30 s deadline passes.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for: {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Count live threads of this process whose name starts with `prefix`.
#[cfg(target_os = "linux")]
fn threads_with_prefix(prefix: &str) -> usize {
    let mut count = 0;
    if let Ok(entries) = std::fs::read_dir("/proc/self/task") {
        for entry in entries.flatten() {
            if let Ok(name) = std::fs::read_to_string(entry.path().join("comm")) {
                if name.trim_end().starts_with(prefix) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[test]
fn oversized_line_is_rejected_with_error_and_eof() {
    let registry = temp_registry("oversized");
    let server = serve(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            max_line_bytes: 1024,
            read_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // 4 KiB of newline-free garbage: an unterminated line four times the
    // cap. The server must answer with a typed error, then hang up.
    stream.write_all(&vec![b'x'; 4096]).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("line exceeds 1024 bytes"),
        "want oversized rejection, got: {line:?}"
    );
    // And the connection is closed behind the error.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "no bytes expected after the rejection");

    assert!(
        registry.event_counters().snapshot().oversized_rejected >= 1,
        "oversized rejection must be counted"
    );
    wait_until("oversized conn reaped", || {
        registry.event_counters().snapshot().conns_open == 0
    });
    server.shutdown();
}

#[test]
fn slow_loris_half_line_is_killed_at_the_idle_deadline() {
    let registry = temp_registry("loris");
    let server = serve(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Duration::from_millis(120),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Trickle a request prefix one byte at a time, then go quiet without
    // ever finishing the line. Each byte re-arms the deadline; silence
    // must not.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    for byte in b"{\"cmd\"" {
        stream.write_all(&[*byte]).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut buf = Vec::new();
    // EOF (not a response): the half line was never dispatched.
    stream.read_to_end(&mut buf).unwrap();
    assert!(
        buf.is_empty(),
        "a never-completed line must not produce a reply, got {buf:?}"
    );

    let events = registry.event_counters().snapshot();
    assert!(
        events.deadline_kills >= 1,
        "stalled connection must die by deadline, events: {events:?}"
    );
    assert!(
        events.partial_reads >= 1,
        "the trickle must register as partial reads, events: {events:?}"
    );
    wait_until("loris conn reaped", || {
        registry.event_counters().snapshot().conns_open == 0
    });
    server.shutdown();
}

#[test]
fn half_open_peers_are_reaped_and_conns_drop_to_zero() {
    let registry = temp_registry("halfopen");
    let server = serve(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // A herd of clients that connect and then never speak. Hold the
    // sockets so the OS cannot deliver FINs — the server's only way out
    // is its own idle deadline.
    let silent: Vec<TcpStream> = (0..16)
        .map(|_| TcpStream::connect(server.addr()).unwrap())
        .collect();
    wait_until("all admitted", || {
        registry.event_counters().snapshot().conns_peak >= 16
    });
    wait_until("all reaped by deadline", || {
        registry.event_counters().snapshot().conns_open == 0
    });
    let events = registry.event_counters().snapshot();
    assert!(
        events.deadline_kills >= 16,
        "every silent conn must die by deadline, events: {events:?}"
    );
    drop(silent);
    server.shutdown();
}

#[test]
fn mid_request_disconnect_does_not_wedge_the_server() {
    let registry = temp_registry("middisc");
    let server = serve(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            read_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Fire a complete request line and slam the connection before the
    // reply can land: the completion finds no connection and must be
    // dropped on the floor, not crash the loop.
    for _ in 0..8 {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"{\"cmd\":\"list\"}\n").unwrap();
        drop(stream);
    }
    wait_until("abandoned requests drained", || {
        let accept = registry.accept_counters().snapshot();
        accept.accepted >= 8 && accept.queue_depth == 0
    });
    wait_until("abandoned conns reaped", || {
        registry.event_counters().snapshot().conns_open == 0
    });

    // The server still serves: a fresh client gets a reply line (any
    // shape — this wire path asserts liveness, not content).
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"not json at all\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"reply\":\"error\""),
        "server must still answer after abandoned requests, got: {line:?}"
    );
    server.shutdown();
}

#[cfg(target_os = "linux")]
#[test]
fn misbehaving_clients_never_grow_the_thread_count() {
    let registry = temp_registry("threads");
    const WORKERS: usize = 2;
    let server = serve(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            workers: WORKERS,
            read_timeout: Duration::from_millis(150),
            max_line_bytes: 512,
            thread_prefix: "rob5".into(),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let baseline = WORKERS + 1; // worker pool + the event loop
                                // Freshly spawned threads set their name from inside the thread
                                // body, so give the pool a moment to come up before counting.
    wait_until("server threads named", || {
        threads_with_prefix("rob5") == baseline
    });

    // Three flavors of abuse at once: instant disconnects, oversized
    // floods, and silent half-open peers.
    let mut held = Vec::new();
    for i in 0..24 {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        match i % 3 {
            0 => drop(stream),
            1 => {
                let _ = stream.write_all(&vec![b'y'; 2048]);
                held.push(stream);
            }
            _ => held.push(stream),
        }
        assert!(
            threads_with_prefix("rob5") <= baseline,
            "connection #{i} must not spawn a thread"
        );
    }
    wait_until("abusers reaped", || {
        registry.event_counters().snapshot().conns_open == 0
    });
    assert_eq!(threads_with_prefix("rob5"), baseline);
    drop(held);

    let events = registry.event_counters().snapshot();
    assert!(events.oversized_rejected >= 8, "events: {events:?}");
    server.shutdown();
    wait_until("threads gone after shutdown", || {
        threads_with_prefix("rob5") == 0
    });
}
