//! The content-addressed profile store.
//!
//! Profiles are keyed by the SHA-256 of their **canonical JSON** — the
//! compact serialization of the `serde_json::Value` tree, whose maps are
//! sorted `BTreeMap`s — so the digest depends only on content, never on
//! field order or formatting. Each profile lives in `<digest>.json`
//! under the store directory; human names ("dunnington") map to digests
//! through an `aliases.json` index. Every file write goes through
//! [`servet_core::profile::write_atomic`], so a crash mid-write can never
//! tear a profile or the index (paper §IV-E: measure once, consult
//! forever — the store is the "forever" half).

use crate::digest::{looks_like_digest, sha256_hex};
use serde::{Deserialize, Serialize};
use servet_core::profile::{write_atomic, MachineProfile};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::RwLock;

/// File name of the alias index inside a store directory.
const ALIAS_INDEX: &str = "aliases.json";

/// Canonical JSON of a profile: compact, keys sorted (serde_json's
/// default `Value` map is a `BTreeMap`). Digest input and on-disk format.
pub fn canonical_json(profile: &MachineProfile) -> String {
    let value = serde_json::to_value(profile).expect("profile serializes");
    serde_json::to_string(&value).expect("value serializes")
}

/// Stable content digest of a profile (SHA-256 of [`canonical_json`]).
pub fn profile_digest(profile: &MachineProfile) -> String {
    sha256_hex(canonical_json(profile).as_bytes())
}

/// One stored profile, as reported by [`ProfileStore::list`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreEntry {
    /// Content digest (hex SHA-256).
    pub digest: String,
    /// Machine name recorded in the profile.
    pub machine: String,
    /// Total cores the profile covers.
    pub total_cores: usize,
    /// Detected cache levels.
    pub cache_levels: usize,
    /// Aliases resolving to this digest, sorted.
    pub aliases: Vec<String>,
}

/// A directory of content-addressed profiles plus a named alias index.
pub struct ProfileStore {
    dir: PathBuf,
    aliases: RwLock<BTreeMap<String, String>>,
}

impl ProfileStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let index = dir.join(ALIAS_INDEX);
        let aliases = if index.exists() {
            let text = fs::read_to_string(&index)?;
            serde_json::from_str(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        } else {
            BTreeMap::new()
        };
        Ok(Self {
            dir,
            aliases: RwLock::new(aliases),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn profile_path(&self, digest: &str) -> PathBuf {
        self.dir.join(format!("{digest}.json"))
    }

    /// Store a profile; returns its digest. Idempotent: re-putting the
    /// same content rewrites the same file with identical bytes.
    pub fn put(&self, profile: &MachineProfile) -> io::Result<String> {
        let json = canonical_json(profile);
        let digest = sha256_hex(json.as_bytes());
        write_atomic(self.profile_path(&digest), json.as_bytes())?;
        Ok(digest)
    }

    /// Bind `name` to an existing digest and persist the index.
    pub fn alias(&self, name: &str, digest: &str) -> io::Result<()> {
        if name.is_empty() || looks_like_digest(name) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid alias name {name:?}: must be non-empty and not digest-shaped"),
            ));
        }
        if !self.profile_path(digest).exists() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no stored profile with digest {digest}"),
            ));
        }
        let mut aliases = self.aliases.write().unwrap_or_else(|e| e.into_inner());
        aliases.insert(name.to_string(), digest.to_string());
        let json = serde_json::to_string_pretty(&*aliases).expect("alias map serializes");
        write_atomic(self.dir.join(ALIAS_INDEX), json.as_bytes())
    }

    /// Resolve `key` — an alias, a full digest, or a unique digest
    /// prefix (≥ 6 chars) — to a stored digest.
    pub fn resolve(&self, key: &str) -> io::Result<Option<String>> {
        {
            let aliases = self.aliases.read().unwrap_or_else(|e| e.into_inner());
            if let Some(digest) = aliases.get(key) {
                return Ok(Some(digest.clone()));
            }
        }
        if looks_like_digest(key) {
            return Ok(self.profile_path(key).exists().then(|| key.to_string()));
        }
        if key.len() >= 6 && key.bytes().all(|b| b.is_ascii_hexdigit()) {
            let matches: Vec<String> = self
                .digests()?
                .into_iter()
                .filter(|d| d.starts_with(key))
                .collect();
            if matches.len() == 1 {
                return Ok(matches.into_iter().next());
            }
        }
        Ok(None)
    }

    /// Load the profile stored under a (full) digest, verifying that the
    /// content still hashes to its name.
    pub fn load(&self, digest: &str) -> io::Result<MachineProfile> {
        let path = self.profile_path(digest);
        let text = fs::read_to_string(&path)?;
        let profile = MachineProfile::from_json(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let actual = profile_digest(&profile);
        if actual != digest {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("store corruption: {} hashes to {actual}", path.display()),
            ));
        }
        Ok(profile)
    }

    /// All stored digests (unordered).
    fn digests(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".json") {
                if looks_like_digest(stem) {
                    out.push(stem.to_string());
                }
            }
        }
        Ok(out)
    }

    /// Summaries of every stored profile, digest-sorted, with aliases.
    pub fn list(&self) -> io::Result<Vec<StoreEntry>> {
        let alias_map: BTreeMap<String, String> = self
            .aliases
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        let mut digests = self.digests()?;
        digests.sort();
        digests
            .into_iter()
            .map(|digest| {
                let profile = self.load(&digest)?;
                let aliases = alias_map
                    .iter()
                    .filter(|(_, d)| **d == digest)
                    .map(|(n, _)| n.clone())
                    .collect();
                Ok(StoreEntry {
                    digest,
                    machine: profile.machine,
                    total_cores: profile.total_cores,
                    cache_levels: profile.cache_levels.len(),
                    aliases,
                })
            })
            .collect()
    }

    /// Number of stored profiles.
    pub fn len(&self) -> io::Result<usize> {
        Ok(self.digests()?.len())
    }

    /// True when the store holds no profile.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servet_core::cache_detect::{CacheLevelEstimate, DetectionMethod};
    use servet_core::profile::SCHEMA_VERSION;

    fn test_profile(machine: &str, l1: usize) -> MachineProfile {
        MachineProfile {
            schema_version: SCHEMA_VERSION,
            machine: machine.into(),
            cores_per_node: 4,
            total_cores: 4,
            page_size: 4096,
            mcalibrator: None,
            cache_levels: vec![CacheLevelEstimate {
                level: 1,
                size: l1,
                method: DetectionMethod::GradientPeak,
            }],
            shared_caches: None,
            memory: None,
            communication: None,
            micro: None,
            false_sharing: None,
        }
    }

    fn temp_store(tag: &str) -> ProfileStore {
        let dir = std::env::temp_dir().join(format!("servet-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ProfileStore::open(dir).unwrap()
    }

    #[test]
    fn digest_ignores_formatting() {
        let p = test_profile("fmt", 8192);
        let pretty = serde_json::to_string_pretty(&p).unwrap();
        let reparsed = MachineProfile::from_json(&pretty).unwrap();
        assert_eq!(profile_digest(&p), profile_digest(&reparsed));
    }

    #[test]
    fn put_get_round_trip_and_idempotence() {
        let store = temp_store("roundtrip");
        let p = test_profile("alpha", 8192);
        let digest = store.put(&p).unwrap();
        assert!(looks_like_digest(&digest));
        assert_eq!(store.put(&p).unwrap(), digest, "put must be idempotent");
        assert_eq!(store.load(&digest).unwrap(), p);
        assert_eq!(store.len().unwrap(), 1);
        // Distinct content gets a distinct key.
        let q = test_profile("alpha", 16384);
        let other = store.put(&q).unwrap();
        assert_ne!(other, digest);
        assert_eq!(store.len().unwrap(), 2);
    }

    #[test]
    fn alias_resolution_and_persistence() {
        let dir;
        let digest;
        {
            let store = temp_store("alias");
            dir = store.dir().to_path_buf();
            digest = store.put(&test_profile("dunnington", 32 * 1024)).unwrap();
            store.alias("dunnington", &digest).unwrap();
            assert_eq!(store.resolve("dunnington").unwrap(), Some(digest.clone()));
            assert_eq!(store.resolve(&digest).unwrap(), Some(digest.clone()));
            assert_eq!(store.resolve(&digest[..12]).unwrap(), Some(digest.clone()));
            assert_eq!(store.resolve("nonesuch").unwrap(), None);
        }
        // A fresh handle on the same directory sees the persisted alias.
        let reopened = ProfileStore::open(&dir).unwrap();
        assert_eq!(reopened.resolve("dunnington").unwrap(), Some(digest));
    }

    #[test]
    fn alias_to_missing_digest_fails() {
        let store = temp_store("badalias");
        let missing = "0".repeat(64);
        assert!(store.alias("ghost", &missing).is_err());
        assert!(store.alias("", &missing).is_err());
    }

    #[test]
    fn corrupt_file_is_detected() {
        let store = temp_store("corrupt");
        let digest = store.put(&test_profile("victim", 8192)).unwrap();
        // Overwrite the stored bytes with a *valid* profile that does not
        // match the file name.
        let other = canonical_json(&test_profile("impostor", 4096));
        fs::write(store.dir().join(format!("{digest}.json")), other).unwrap();
        let err = store.load(&digest).unwrap_err();
        assert!(err.to_string().contains("corruption"), "{err}");
    }

    #[test]
    fn list_reports_entries_with_aliases() {
        let store = temp_store("list");
        let d1 = store.put(&test_profile("one", 8192)).unwrap();
        let d2 = store.put(&test_profile("two", 16384)).unwrap();
        store.alias("first", &d1).unwrap();
        store.alias("also-first", &d1).unwrap();
        let entries = store.list().unwrap();
        assert_eq!(entries.len(), 2);
        let e1 = entries.iter().find(|e| e.digest == d1).unwrap();
        assert_eq!(e1.machine, "one");
        assert_eq!(
            e1.aliases,
            vec!["also-first".to_string(), "first".to_string()]
        );
        let e2 = entries.iter().find(|e| e.digest == d2).unwrap();
        assert!(e2.aliases.is_empty());
        assert_eq!(e2.cache_levels, 1);
    }
}
