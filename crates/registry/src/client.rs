//! A small blocking client for the registry protocol — the transport
//! behind `servet query` and the serving tests.

use crate::advice::{AdviceOutcome, AdviceQuery};
use crate::protocol::{read_message, write_message, Request, Response};
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use servet_core::profile::MachineProfile;

/// One connection to a registry server.
pub struct RegistryClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RegistryClient {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Self::from_stream(stream)
    }

    /// Wrap an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Abandon a response not arriving within `timeout` instead of
    /// blocking forever.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one request and wait for its response line.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        write_message(&mut self.writer, request)?;
        read_message(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Store `profile` (optionally aliased); returns its digest.
    pub fn put(&mut self, profile: &MachineProfile, name: Option<&str>) -> io::Result<String> {
        let resp = self.call(&Request::Put {
            profile: Box::new(profile.clone()),
            name: name.map(str::to_string),
        })?;
        match resp {
            Response::Stored { digest } => Ok(digest),
            Response::Error { error } => Err(io::Error::other(error)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the raw response for a `get` (callers match on it).
    pub fn get(&mut self, key: &str) -> io::Result<Response> {
        self.call(&Request::Get {
            key: key.to_string(),
        })
    }

    /// Fetch a profile, treating protocol-level errors as `io::Error`.
    pub fn get_profile(&mut self, key: &str) -> io::Result<(String, MachineProfile)> {
        match self.get(key)? {
            Response::Profile { digest, profile } => Ok((digest, *profile)),
            Response::Error { error } => Err(io::Error::other(error)),
            other => Err(unexpected(&other)),
        }
    }

    /// List stored profiles.
    pub fn list(&mut self) -> io::Result<Vec<crate::store::StoreEntry>> {
        match self.call(&Request::List)? {
            Response::Listing { entries } => Ok(entries),
            Response::Error { error } => Err(io::Error::other(error)),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask for advice; returns `(digest, cached, outcome)`.
    pub fn advise(
        &mut self,
        key: &str,
        query: &AdviceQuery,
    ) -> io::Result<(String, bool, AdviceOutcome)> {
        let resp = self.call(&Request::Advise {
            key: key.to_string(),
            query: query.clone(),
        })?;
        match resp {
            Response::Advice {
                digest,
                cached,
                outcome,
            } => Ok((digest, cached, outcome)),
            Response::Error { error } => Err(io::Error::other(error)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch server counters.
    pub fn stats(&mut self) -> io::Result<crate::protocol::ServerStats> {
        match self.call(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            Response::Error { error } => Err(io::Error::other(error)),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response {resp:?}"),
    )
}
