//! A small blocking client for the registry protocol — the transport
//! behind `servet query`, the zoo's profile streaming, and the serving
//! tests.
//!
//! Two clients live here. [`RegistryClient`] is one connection, one
//! request at a time, and surfaces every failure to the caller.
//! [`RetryingRegistryClient`] wraps it for unattended callers (the zoo
//! driver streaming hundreds of profiles): it reconnects and retries
//! with exponential backoff when the server is overloaded — the typed
//! `busy:` rejection of [`crate::protocol::busy_response`] — or the
//! connection drops mid-flight, while still failing fast on errors a
//! retry cannot cure (a malformed request, an unknown profile key).

use crate::advice::{AdviceOutcome, AdviceQuery};
use crate::protocol::{is_busy_error, read_message, write_message, Request, Response};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use servet_core::profile::MachineProfile;

/// One connection to a registry server.
pub struct RegistryClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RegistryClient {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Self::from_stream(stream)
    }

    /// Wrap an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Abandon a response not arriving within `timeout` instead of
    /// blocking forever.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one request and wait for its response line.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        write_message(&mut self.writer, request)?;
        read_message(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Store `profile` (optionally aliased); returns its digest.
    pub fn put(&mut self, profile: &MachineProfile, name: Option<&str>) -> io::Result<String> {
        let resp = self.call(&Request::Put {
            profile: Box::new(profile.clone()),
            name: name.map(str::to_string),
        })?;
        match resp {
            Response::Stored { digest } => Ok(digest),
            Response::Error { error } => Err(protocol_error(error)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the raw response for a `get` (callers match on it).
    pub fn get(&mut self, key: &str) -> io::Result<Response> {
        self.call(&Request::Get {
            key: key.to_string(),
        })
    }

    /// Fetch a profile, treating protocol-level errors as `io::Error`.
    pub fn get_profile(&mut self, key: &str) -> io::Result<(String, MachineProfile)> {
        match self.get(key)? {
            Response::Profile { digest, profile } => Ok((digest, *profile)),
            Response::Error { error } => Err(protocol_error(error)),
            other => Err(unexpected(&other)),
        }
    }

    /// List stored profiles.
    pub fn list(&mut self) -> io::Result<Vec<crate::store::StoreEntry>> {
        match self.call(&Request::List)? {
            Response::Listing { entries } => Ok(entries),
            Response::Error { error } => Err(protocol_error(error)),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask for advice; returns `(digest, cached, outcome)`.
    pub fn advise(
        &mut self,
        key: &str,
        query: &AdviceQuery,
    ) -> io::Result<(String, bool, AdviceOutcome)> {
        let resp = self.call(&Request::Advise {
            key: key.to_string(),
            query: query.clone(),
        })?;
        match resp {
            Response::Advice {
                digest,
                cached,
                outcome,
            } => Ok((digest, cached, outcome)),
            Response::Error { error } => Err(protocol_error(error)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch server counters.
    pub fn stats(&mut self) -> io::Result<crate::protocol::ServerStats> {
        match self.call(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            Response::Error { error } => Err(protocol_error(error)),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response {resp:?}"),
    )
}

/// Map a protocol-level `Response::Error` string to an [`io::Error`]:
/// the server's `busy:` rejection becomes [`io::ErrorKind::WouldBlock`]
/// (recognized by [`is_server_busy`]); everything else is an opaque
/// application error.
fn protocol_error(error: String) -> io::Error {
    if is_busy_error(&error) {
        io::Error::new(io::ErrorKind::WouldBlock, error)
    } else {
        io::Error::other(error)
    }
}

/// Whether `e` is the server's "accept queue full" rejection — the one
/// failure that explicitly invites a retry with backoff.
pub fn is_server_busy(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::WouldBlock && is_busy_error(&e.to_string())
}

/// Whether a fresh connection and another attempt could plausibly cure
/// `e`: the typed busy rejection, or transport failures a mid-flight
/// server close produces. Application errors (bad request, unknown key)
/// are not retryable — repeating them would repeat the answer.
pub fn is_retryable(e: &io::Error) -> bool {
    is_server_busy(e)
        || matches!(
            e.kind(),
            io::ErrorKind::UnexpectedEof
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::ConnectionRefused
        )
}

/// Backoff schedule for [`RetryingRegistryClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1 is always made.
    pub attempts: usize,
    /// Sleep before the second attempt.
    pub initial_backoff: Duration,
    /// Backoff growth factor per further attempt.
    pub multiplier: f64,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 5,
            initial_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    fn next_backoff(&self, current: Duration) -> Duration {
        current
            .mul_f64(self.multiplier.max(1.0))
            .min(self.max_backoff)
    }
}

/// A reconnecting, retrying registry client for unattended bulk callers
/// (`servet zoo` streaming a population of profiles).
///
/// Each operation runs against a lazily-(re)established connection; on a
/// [retryable](is_retryable) failure the connection is discarded and the
/// operation retried after an exponential backoff, up to
/// [`RetryPolicy::attempts`]. The last error is returned when the budget
/// runs out. Retries are counted on the `registry.client.retries`
/// counter.
pub struct RetryingRegistryClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    conn: Option<RegistryClient>,
}

impl RetryingRegistryClient {
    /// A retrying client for the server at `addr` (not contacted until
    /// the first operation).
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> Self {
        Self {
            addr,
            policy,
            conn: None,
        }
    }

    /// Resolve `addr` and build a client with the [`RetryPolicy`]
    /// defaults.
    pub fn connect_lazily(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        Ok(Self::new(addr, RetryPolicy::default()))
    }

    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut RegistryClient) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut backoff = self.policy.initial_backoff;
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = self.policy.next_backoff(backoff);
                servet_obs::counter("registry.client.retries").incr();
            }
            let conn = match self.conn.as_mut() {
                Some(conn) => conn,
                None => match RegistryClient::connect(self.addr) {
                    Ok(conn) => self.conn.insert(conn),
                    Err(e) if is_retryable(&e) => {
                        last_err = Some(e);
                        continue;
                    }
                    Err(e) => return Err(e),
                },
            };
            match op(conn) {
                Ok(value) => return Ok(value),
                Err(e) if is_retryable(&e) => {
                    // The server hung up (or told us it is saturated):
                    // this connection is dead either way.
                    self.conn = None;
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("retry budget exhausted")))
    }

    /// [`RegistryClient::put`], with reconnect-and-retry.
    pub fn put(&mut self, profile: &MachineProfile, name: Option<&str>) -> io::Result<String> {
        self.with_retry(|c| c.put(profile, name))
    }

    /// [`RegistryClient::get_profile`], with reconnect-and-retry.
    pub fn get_profile(&mut self, key: &str) -> io::Result<(String, MachineProfile)> {
        self.with_retry(|c| c.get_profile(key))
    }

    /// [`RegistryClient::list`], with reconnect-and-retry.
    pub fn list(&mut self) -> io::Result<Vec<crate::store::StoreEntry>> {
        self.with_retry(|c| c.list())
    }

    /// [`RegistryClient::advise`], with reconnect-and-retry.
    pub fn advise(
        &mut self,
        key: &str,
        query: &AdviceQuery,
    ) -> io::Result<(String, bool, AdviceOutcome)> {
        self.with_retry(|c| c.advise(key, query))
    }

    /// [`RegistryClient::stats`], with reconnect-and-retry.
    pub fn stats(&mut self) -> io::Result<crate::protocol::ServerStats> {
        self.with_retry(|c| c.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::busy_response;
    use std::io::BufRead as _;
    use std::net::TcpListener;

    /// A one-shot fake server: accept one connection, read one request
    /// line, answer `response`, close. Reading the request first means
    /// the close is a clean FIN (no unread data → no RST racing the
    /// response to the client).
    fn one_shot_server(response: Response) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut stream = stream;
            write_message(&mut stream, &response).unwrap();
        });
        (addr, handle)
    }

    #[test]
    fn busy_rejection_maps_to_the_typed_busy_error() {
        let (addr, server) = one_shot_server(busy_response());
        let mut client = RegistryClient::connect(addr).unwrap();
        let err = client.list().unwrap_err();
        assert!(is_server_busy(&err), "wanted busy, got {err:?}");
        assert!(is_retryable(&err));
        server.join().unwrap();
    }

    #[test]
    fn application_errors_are_not_retryable() {
        let (addr, server) = one_shot_server(Response::Error {
            error: "no profile named tiny".into(),
        });
        let mut client = RegistryClient::connect(addr).unwrap();
        let err = client.list().unwrap_err();
        assert!(!is_server_busy(&err));
        assert!(!is_retryable(&err), "must not retry {err:?}");
        server.join().unwrap();
    }

    #[test]
    fn retrying_client_gives_up_after_its_budget() {
        // A listener that is never accepted from: every connection gets
        // queued by the kernel, and the requests time out... too slow.
        // Instead: refuse outright by binding and dropping.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let mut client = RetryingRegistryClient::new(
            addr,
            RetryPolicy {
                attempts: 3,
                initial_backoff: Duration::from_millis(1),
                multiplier: 2.0,
                max_backoff: Duration::from_millis(4),
            },
        );
        let err = client.list().unwrap_err();
        assert!(
            is_retryable(&err),
            "last error should be the refusal: {err:?}"
        );
    }

    #[test]
    fn backoff_grows_and_saturates() {
        let policy = RetryPolicy {
            attempts: 5,
            initial_backoff: Duration::from_millis(10),
            multiplier: 3.0,
            max_backoff: Duration::from_millis(50),
        };
        let b1 = policy.next_backoff(Duration::from_millis(10));
        assert_eq!(b1, Duration::from_millis(30));
        assert_eq!(policy.next_backoff(b1), Duration::from_millis(50));
        assert_eq!(
            policy.next_backoff(Duration::from_millis(50)),
            Duration::from_millis(50)
        );
    }
}
