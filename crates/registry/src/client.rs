//! A small blocking client for the registry protocol — the transport
//! behind `servet query`, the zoo's profile streaming, and the serving
//! tests.
//!
//! Two clients live here. [`RegistryClient`] is one connection, one
//! request at a time, and surfaces every failure to the caller.
//! [`RetryingRegistryClient`] wraps it for unattended callers (the zoo
//! driver streaming hundreds of profiles): it reconnects and retries
//! with decorrelated-jitter backoff ([`Backoff`]) when the server is
//! overloaded — the typed `busy:` rejection of
//! [`crate::protocol::busy_response`] — or the connection drops
//! mid-flight, while still failing fast on errors a retry cannot cure
//! (a malformed request, an unknown profile key).

use crate::advice::{AdviceOutcome, AdviceQuery};
use crate::protocol::{is_busy_error, read_message, write_message, Request, Response};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use servet_core::profile::MachineProfile;

/// One connection to a registry server.
pub struct RegistryClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RegistryClient {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Self::from_stream(stream)
    }

    /// Wrap an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Abandon a response not arriving within `timeout` instead of
    /// blocking forever.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one request and wait for its response line.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        write_message(&mut self.writer, request)?;
        read_message(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Store `profile` (optionally aliased); returns its digest.
    pub fn put(&mut self, profile: &MachineProfile, name: Option<&str>) -> io::Result<String> {
        let resp = self.call(&Request::Put {
            profile: Box::new(profile.clone()),
            name: name.map(str::to_string),
        })?;
        match resp {
            Response::Stored { digest } => Ok(digest),
            Response::Error { error } => Err(protocol_error(error)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the raw response for a `get` (callers match on it).
    pub fn get(&mut self, key: &str) -> io::Result<Response> {
        self.call(&Request::Get {
            key: key.to_string(),
        })
    }

    /// Fetch a profile, treating protocol-level errors as `io::Error`.
    pub fn get_profile(&mut self, key: &str) -> io::Result<(String, MachineProfile)> {
        match self.get(key)? {
            Response::Profile { digest, profile } => Ok((digest, *profile)),
            Response::Error { error } => Err(protocol_error(error)),
            other => Err(unexpected(&other)),
        }
    }

    /// List stored profiles.
    pub fn list(&mut self) -> io::Result<Vec<crate::store::StoreEntry>> {
        match self.call(&Request::List)? {
            Response::Listing { entries } => Ok(entries),
            Response::Error { error } => Err(protocol_error(error)),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask for advice; returns `(digest, cached, outcome)`.
    pub fn advise(
        &mut self,
        key: &str,
        query: &AdviceQuery,
    ) -> io::Result<(String, bool, AdviceOutcome)> {
        let resp = self.call(&Request::Advise {
            key: key.to_string(),
            query: query.clone(),
        })?;
        match resp {
            Response::Advice {
                digest,
                cached,
                outcome,
            } => Ok((digest, cached, outcome)),
            Response::Error { error } => Err(protocol_error(error)),
            other => Err(unexpected(&other)),
        }
    }

    /// Run (or recall) a tuning session; returns `(digest, cached,
    /// outcome)`.
    pub fn tune(
        &mut self,
        key: &str,
        query: &crate::tune::TuneQuery,
    ) -> io::Result<(String, bool, servet_tune::TuneOutcome)> {
        let resp = self.call(&Request::Tune {
            key: key.to_string(),
            query: query.clone(),
        })?;
        match resp {
            Response::Tuned {
                digest,
                cached,
                outcome,
            } => Ok((digest, cached, outcome)),
            Response::Error { error } => Err(protocol_error(error)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch server counters.
    pub fn stats(&mut self) -> io::Result<crate::protocol::ServerStats> {
        match self.call(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            Response::Error { error } => Err(protocol_error(error)),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response {resp:?}"),
    )
}

/// Map a protocol-level `Response::Error` string to an [`io::Error`]:
/// the server's `busy:` rejection becomes [`io::ErrorKind::WouldBlock`]
/// (recognized by [`is_server_busy`]); everything else is an opaque
/// application error.
fn protocol_error(error: String) -> io::Error {
    if is_busy_error(&error) {
        io::Error::new(io::ErrorKind::WouldBlock, error)
    } else {
        io::Error::other(error)
    }
}

/// Whether `e` is the server's "accept queue full" rejection — the one
/// failure that explicitly invites a retry with backoff.
pub fn is_server_busy(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::WouldBlock && is_busy_error(&e.to_string())
}

/// Whether a fresh connection and another attempt could plausibly cure
/// `e`: the typed busy rejection, or transport failures a mid-flight
/// server close produces. Application errors (bad request, unknown key)
/// are not retryable — repeating them would repeat the answer.
pub fn is_retryable(e: &io::Error) -> bool {
    is_server_busy(e)
        || matches!(
            e.kind(),
            io::ErrorKind::UnexpectedEof
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::ConnectionRefused
        )
}

/// Backoff schedule for [`RetryingRegistryClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1 is always made.
    pub attempts: usize,
    /// Sleep before the second attempt.
    pub initial_backoff: Duration,
    /// Backoff growth factor per further attempt (jitter off only).
    pub multiplier: f64,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Decorrelate retry sleeps: after the first, each sleep is drawn
    /// uniformly from `[initial_backoff, 3 × previous]` (capped at
    /// `max_backoff`) instead of following the deterministic
    /// exponential ramp. A fleet of clients rejected together then
    /// *returns* spread out instead of as a synchronized thundering
    /// herd — the difference between one `busy:` storm and many.
    pub jitter: bool,
    /// Seed for the jitter stream. The sequence is a pure function of
    /// the seed, so tests are deterministic; fleet drivers (`servet
    /// zoo`) seed each worker differently to actually decorrelate.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 5,
            initial_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(500),
            jitter: true,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// One step of the jitter-free exponential ramp (the `jitter:
    /// false` schedule): `min(max_backoff, current × multiplier)`.
    pub fn next_backoff(&self, current: Duration) -> Duration {
        current
            .mul_f64(self.multiplier.max(1.0))
            .min(self.max_backoff)
    }

    /// The sleep sequence for one operation's retries, seeded from
    /// [`RetryPolicy::jitter_seed`].
    pub fn backoff(&self) -> Backoff {
        Backoff::seeded(self, self.jitter_seed)
    }
}

/// One step of the splitmix64 generator — tiny, seedable, and plenty
/// for spreading sleeps (this is not cryptography).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The materialized sleep sequence of a [`RetryPolicy`]: plain
/// exponential when jitter is off, decorrelated jitter
/// (`min(cap, uniform(base, 3 × previous))`) when on. The first delay
/// is always exactly `initial_backoff`.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    multiplier: f64,
    jitter: bool,
    prev: Option<Duration>,
    rng: u64,
}

impl Backoff {
    /// A sequence for `policy` drawing jitter from `seed` (overriding
    /// [`RetryPolicy::jitter_seed`]).
    pub fn seeded(policy: &RetryPolicy, seed: u64) -> Self {
        Self {
            base: policy.initial_backoff,
            cap: policy.max_backoff.max(policy.initial_backoff),
            multiplier: policy.multiplier,
            jitter: policy.jitter,
            prev: None,
            rng: seed,
        }
    }

    /// The next sleep. Always within
    /// `[initial_backoff, max_backoff]`.
    pub fn next_delay(&mut self) -> Duration {
        let next = match self.prev {
            None => self.base,
            Some(prev) if !self.jitter => prev.mul_f64(self.multiplier.max(1.0)).min(self.cap),
            Some(prev) => {
                let lo = self.base.as_nanos().min(u64::MAX as u128) as u64;
                let hi = (prev.as_nanos().min(u64::MAX as u128) as u64)
                    .saturating_mul(3)
                    .max(lo);
                let span = hi - lo;
                let draw = if span == 0 {
                    lo
                } else {
                    lo + splitmix64(&mut self.rng) % (span + 1)
                };
                Duration::from_nanos(draw).min(self.cap)
            }
        };
        self.prev = Some(next);
        next
    }
}

/// A reconnecting, retrying registry client for unattended bulk callers
/// (`servet zoo` streaming a population of profiles).
///
/// Each operation runs against a lazily-(re)established connection; on a
/// [retryable](is_retryable) failure the connection is discarded and the
/// operation retried after an exponential backoff, up to
/// [`RetryPolicy::attempts`]. The last error is returned when the budget
/// runs out. Retries are counted on the `registry.client.retries`
/// counter.
pub struct RetryingRegistryClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    conn: Option<RegistryClient>,
    /// Rolling jitter state: each operation derives a fresh backoff
    /// stream from it, so retries of successive operations do not
    /// repeat one another's sleeps.
    rng: u64,
}

impl RetryingRegistryClient {
    /// A retrying client for the server at `addr` (not contacted until
    /// the first operation).
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> Self {
        let rng = policy.jitter_seed;
        Self {
            addr,
            policy,
            conn: None,
            rng,
        }
    }

    /// Resolve `addr` and build a client with the [`RetryPolicy`]
    /// defaults.
    pub fn connect_lazily(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address resolved"))?;
        Ok(Self::new(addr, RetryPolicy::default()))
    }

    fn with_retry<T>(
        &mut self,
        mut op: impl FnMut(&mut RegistryClient) -> io::Result<T>,
    ) -> io::Result<T> {
        let mut backoff = Backoff::seeded(&self.policy, splitmix64(&mut self.rng));
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff.next_delay());
                servet_obs::counter("registry.client.retries").incr();
            }
            let conn = match self.conn.as_mut() {
                Some(conn) => conn,
                None => match RegistryClient::connect(self.addr) {
                    Ok(conn) => self.conn.insert(conn),
                    Err(e) if is_retryable(&e) => {
                        last_err = Some(e);
                        continue;
                    }
                    Err(e) => return Err(e),
                },
            };
            match op(conn) {
                Ok(value) => return Ok(value),
                Err(e) if is_retryable(&e) => {
                    // The server hung up (or told us it is saturated):
                    // this connection is dead either way.
                    self.conn = None;
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("retry budget exhausted")))
    }

    /// [`RegistryClient::put`], with reconnect-and-retry.
    pub fn put(&mut self, profile: &MachineProfile, name: Option<&str>) -> io::Result<String> {
        self.with_retry(|c| c.put(profile, name))
    }

    /// [`RegistryClient::get_profile`], with reconnect-and-retry.
    pub fn get_profile(&mut self, key: &str) -> io::Result<(String, MachineProfile)> {
        self.with_retry(|c| c.get_profile(key))
    }

    /// [`RegistryClient::list`], with reconnect-and-retry.
    pub fn list(&mut self) -> io::Result<Vec<crate::store::StoreEntry>> {
        self.with_retry(|c| c.list())
    }

    /// [`RegistryClient::advise`], with reconnect-and-retry.
    pub fn advise(
        &mut self,
        key: &str,
        query: &AdviceQuery,
    ) -> io::Result<(String, bool, AdviceOutcome)> {
        self.with_retry(|c| c.advise(key, query))
    }

    /// [`RegistryClient::stats`], with reconnect-and-retry.
    pub fn stats(&mut self) -> io::Result<crate::protocol::ServerStats> {
        self.with_retry(|c| c.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::busy_response;
    use std::io::BufRead as _;
    use std::net::TcpListener;

    /// A one-shot fake server: accept one connection, read one request
    /// line, answer `response`, close. Reading the request first means
    /// the close is a clean FIN (no unread data → no RST racing the
    /// response to the client).
    fn one_shot_server(response: Response) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let mut stream = stream;
            write_message(&mut stream, &response).unwrap();
        });
        (addr, handle)
    }

    #[test]
    fn busy_rejection_maps_to_the_typed_busy_error() {
        let (addr, server) = one_shot_server(busy_response());
        let mut client = RegistryClient::connect(addr).unwrap();
        let err = client.list().unwrap_err();
        assert!(is_server_busy(&err), "wanted busy, got {err:?}");
        assert!(is_retryable(&err));
        server.join().unwrap();
    }

    #[test]
    fn application_errors_are_not_retryable() {
        let (addr, server) = one_shot_server(Response::Error {
            error: "no profile named tiny".into(),
        });
        let mut client = RegistryClient::connect(addr).unwrap();
        let err = client.list().unwrap_err();
        assert!(!is_server_busy(&err));
        assert!(!is_retryable(&err), "must not retry {err:?}");
        server.join().unwrap();
    }

    #[test]
    fn retrying_client_gives_up_after_its_budget() {
        // A listener that is never accepted from: every connection gets
        // queued by the kernel, and the requests time out... too slow.
        // Instead: refuse outright by binding and dropping.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let mut client = RetryingRegistryClient::new(
            addr,
            RetryPolicy {
                attempts: 3,
                initial_backoff: Duration::from_millis(1),
                multiplier: 2.0,
                max_backoff: Duration::from_millis(4),
                ..RetryPolicy::default()
            },
        );
        let err = client.list().unwrap_err();
        assert!(
            is_retryable(&err),
            "last error should be the refusal: {err:?}"
        );
    }

    #[test]
    fn backoff_grows_and_saturates() {
        let policy = RetryPolicy {
            attempts: 5,
            initial_backoff: Duration::from_millis(10),
            multiplier: 3.0,
            max_backoff: Duration::from_millis(50),
            jitter: false,
            ..RetryPolicy::default()
        };
        let b1 = policy.next_backoff(Duration::from_millis(10));
        assert_eq!(b1, Duration::from_millis(30));
        assert_eq!(policy.next_backoff(b1), Duration::from_millis(50));
        assert_eq!(
            policy.next_backoff(Duration::from_millis(50)),
            Duration::from_millis(50)
        );
        // The jitter-free Backoff sequence is the same ramp.
        let mut seq = policy.backoff();
        assert_eq!(seq.next_delay(), Duration::from_millis(10));
        assert_eq!(seq.next_delay(), Duration::from_millis(30));
        assert_eq!(seq.next_delay(), Duration::from_millis(50));
        assert_eq!(seq.next_delay(), Duration::from_millis(50));
    }

    #[test]
    fn jittered_backoff_is_seeded_and_stays_in_envelope() {
        let policy = RetryPolicy {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(400),
            jitter: true,
            jitter_seed: 42,
            ..RetryPolicy::default()
        };
        let draw = |seed: u64| -> Vec<Duration> {
            let mut seq = Backoff::seeded(&policy, seed);
            (0..12).map(|_| seq.next_delay()).collect()
        };
        // Deterministic: the sequence is a pure function of the seed.
        assert_eq!(draw(42), draw(42));
        // The first delay is the floor exactly; every later one obeys
        // the decorrelated-jitter envelope
        // [base, min(cap, 3 × previous)].
        let delays = draw(42);
        assert_eq!(delays[0], policy.initial_backoff);
        for pair in delays.windows(2) {
            let envelope = (pair[0] * 3).min(policy.max_backoff);
            assert!(
                pair[1] >= policy.initial_backoff
                    && pair[1] <= envelope.max(policy.initial_backoff),
                "delay {:?} escaped [{:?}, {:?}]",
                pair[1],
                policy.initial_backoff,
                envelope
            );
        }
        // Different seeds decorrelate (the whole point): two workers
        // must not sleep in lockstep.
        assert_ne!(draw(42), draw(43), "seeds 42/43 drew identical sleeps");
    }
}
