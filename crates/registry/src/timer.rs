//! A hashed timer wheel for connection deadlines.
//!
//! The event loop arms one deadline per connection (the read/idle
//! timeout) and re-arms it on every activity. A [`TimerWheel`] makes
//! both operations O(1): deadlines hash into one of `SLOTS` coarse
//! buckets by tick number, and each loop iteration drains only the
//! buckets the clock has passed. Entries carry a `(token, generation)`
//! pair; re-arming bumps the connection's generation instead of hunting
//! down the stale entry, so cancels are free and expirations are
//! validated against the connection's current generation by the caller.

use std::time::{Duration, Instant};

/// Bucket count — a power of two so the slot index is a mask.
const SLOTS: usize = 256;

/// One armed deadline.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Absolute tick the deadline falls on.
    tick: u64,
    /// Caller token (connection id).
    token: u64,
    /// Caller generation; stale entries are discarded on expiry.
    generation: u64,
}

/// A coarse-grained hashed timer wheel over [`Instant`] deadlines.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    granularity: Duration,
    origin: Instant,
    /// The last tick fully drained.
    cursor: u64,
    /// Armed (possibly stale) entries across all slots.
    len: usize,
}

impl TimerWheel {
    /// A wheel that rounds deadlines up to `granularity` (clamped to at
    /// least one millisecond).
    pub fn new(granularity: Duration) -> Self {
        let granularity = granularity.max(Duration::from_millis(1));
        Self {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            granularity,
            origin: Instant::now(),
            cursor: 0,
            len: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.origin);
        // Round up: a deadline never fires early.
        (since.as_nanos() / self.granularity.as_nanos()) as u64 + 1
    }

    /// Arm a deadline for `token` at `deadline` under `generation`.
    pub fn insert(&mut self, deadline: Instant, token: u64, generation: u64) {
        let tick = self.tick_of(deadline).max(self.cursor + 1);
        self.slots[(tick as usize) & (SLOTS - 1)].push(Entry {
            tick,
            token,
            generation,
        });
        self.len += 1;
    }

    /// Entries currently armed (stale generations included until their
    /// tick drains).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// How long [`Self::expire`] can be postponed: the time to the next
    /// tick boundary, or `None` when nothing is armed. This is a lower
    /// bound per-wheel-granularity, not a per-entry exact value — the
    /// poller simply ticks at wheel granularity while timers exist.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.is_empty() {
            return None;
        }
        let next_boundary = self
            .origin
            .checked_add(self.granularity * (self.cursor + 1) as u32);
        match next_boundary {
            Some(b) => Some(
                b.saturating_duration_since(now)
                    .max(Duration::from_millis(1)),
            ),
            None => Some(self.granularity),
        }
    }

    /// Drain every entry whose tick the clock has passed, invoking
    /// `expired(token, generation)` for each. The caller compares the
    /// generation against the connection's current one and ignores
    /// stale fires.
    pub fn expire(&mut self, now: Instant, mut expired: impl FnMut(u64, u64)) {
        let now_tick = self.tick_of(now).saturating_sub(1);
        while self.cursor < now_tick {
            self.cursor += 1;
            let cursor = self.cursor;
            let slot = &mut self.slots[(cursor as usize) & (SLOTS - 1)];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].tick <= cursor {
                    let e = slot.swap_remove(i);
                    self.len -= 1;
                    expired(e.token, e.generation);
                } else {
                    // A future lap of the wheel; leave it.
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_fires_after_but_not_before() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10));
        let now = Instant::now();
        wheel.insert(now + Duration::from_millis(35), 1, 0);
        let mut fired = Vec::new();
        wheel.expire(now + Duration::from_millis(20), |t, g| fired.push((t, g)));
        assert!(fired.is_empty(), "fired early: {fired:?}");
        wheel.expire(now + Duration::from_millis(60), |t, g| fired.push((t, g)));
        assert_eq!(fired, vec![(1, 0)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn rearm_is_generation_based() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10));
        let now = Instant::now();
        // Arm gen 0, then "re-arm" by inserting gen 1 later: both fire
        // eventually, and the caller drops the stale gen-0 fire.
        wheel.insert(now + Duration::from_millis(20), 7, 0);
        wheel.insert(now + Duration::from_millis(200), 7, 1);
        let mut fired = Vec::new();
        wheel.expire(now + Duration::from_millis(100), |t, g| fired.push((t, g)));
        assert_eq!(fired, vec![(7, 0)], "only the stale fire so far");
        wheel.expire(now + Duration::from_millis(400), |t, g| fired.push((t, g)));
        assert_eq!(fired, vec![(7, 0), (7, 1)]);
    }

    #[test]
    fn distant_deadlines_survive_full_laps() {
        let granularity = Duration::from_millis(1);
        let mut wheel = TimerWheel::new(granularity);
        let now = Instant::now();
        // > SLOTS ticks out: shares a slot with earlier laps.
        let far = now + granularity * (SLOTS as u32 * 3 + 5);
        let near = now + granularity * 5;
        wheel.insert(far, 2, 0);
        wheel.insert(near, 1, 0);
        let mut fired = Vec::new();
        wheel.expire(now + granularity * (SLOTS as u32), |t, _| fired.push(t));
        assert_eq!(fired, vec![1], "far deadline must not fire a lap early");
        wheel.expire(now + granularity * (SLOTS as u32 * 4), |t, _| fired.push(t));
        assert_eq!(fired, vec![1, 2]);
    }

    #[test]
    fn next_timeout_tracks_armed_state() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10));
        let now = Instant::now();
        assert_eq!(wheel.next_timeout(now), None);
        wheel.insert(now + Duration::from_millis(50), 1, 0);
        let t = wheel.next_timeout(now).unwrap();
        assert!(t <= Duration::from_millis(11), "{t:?}");
        wheel.expire(now + Duration::from_millis(100), |_, _| {});
        assert_eq!(wheel.next_timeout(now), None);
    }
}
