//! `servet loadgen`: a multiplexing load generator for the registry
//! server — the measurement half of the event-driven front end.
//!
//! Two kinds of load compose in one run:
//!
//! * **Held connections** (`conns`): opened up front and parked,
//!   multiplexed client-side over one [`crate::poll::Poller`] (so 10k+
//!   connections cost one thread, mirroring the server). A held
//!   connection never sends a request, so *any* inbound byte is the
//!   server's `busy:` rejection and an EOF is an eviction — both are
//!   counted, making "zero rejects at steady state" a measurable claim.
//!   This path never touches serde, so it runs everywhere.
//! * **Request traffic** (`ops` over `op_workers` threads): each worker
//!   drives a [`crate::client::RetryingRegistryClient`] (decorrelated
//!   jitter, per-worker seed) in either **closed-loop** mode
//!   (back-to-back, measures service capacity) or **open-loop** mode (a
//!   fixed arrival rate; latency is measured from the *scheduled* send
//!   time, so queueing delay is not hidden — the coordinated-omission
//!   correction).
//!
//! The outcome is a [`LoadgenReport`] with throughput and a
//! p50/p99/p999 latency trajectory, serialized by hand to JSON
//! ([`LoadgenReport::to_json`]) so writing `BENCH_serve.json` needs no
//! serializer.

use crate::client::{RetryPolicy, RetryingRegistryClient};
use crate::poll::{raise_nofile_limit, Event, Interest, Poller};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[cfg(unix)]
fn raw_fd(s: &TcpStream) -> std::os::fd::RawFd {
    use std::os::fd::AsRawFd as _;
    s.as_raw_fd()
}
#[cfg(not(unix))]
fn raw_fd(_s: &TcpStream) -> i32 {
    -1
}

/// How request traffic is paced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Back-to-back: each worker issues its next request the moment the
    /// previous response lands. Measures service capacity.
    Closed,
    /// Fixed arrival rate (total ops/s across all workers): requests
    /// are issued on a schedule and latency is measured from the
    /// scheduled instant, so a stalled server shows up as latency
    /// instead of silently thinning the load.
    Open {
        /// Total target arrival rate, ops per second.
        rate_hz: f64,
    },
}

/// Tunables for [`run`].
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server to aim at.
    pub addr: SocketAddr,
    /// Connections to open and hold for the duration of the run.
    pub conns: usize,
    /// Requests to issue while the connections are held (0 = hold only).
    pub ops: u64,
    /// Threads driving request traffic.
    pub op_workers: usize,
    /// Pacing of the request traffic.
    pub mode: Mode,
    /// How long to hold the connection plateau after the last op (also
    /// the minimum run length — rejects need time to surface).
    pub hold: Duration,
    /// Connections opened between 1 ms breathers, pacing the SYN storm.
    pub connect_batch: usize,
    /// Base seed for the per-worker retry jitter streams.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: SocketAddr::from(([127, 0, 0, 1], 7431)),
            conns: 512,
            ops: 0,
            op_workers: 4,
            mode: Mode::Closed,
            hold: Duration::from_secs(2),
            connect_batch: 256,
            seed: 0x0005_e7e7,
        }
    }
}

/// Latency quantiles over one run's request traffic, in nanoseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    /// Requests measured.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Worst observed.
    pub max_ns: u64,
}

impl LatencyStats {
    fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u128 = samples.iter().map(|&v| v as u128).sum();
        let at = |q: f64| -> u64 {
            let idx = ((q * (samples.len() - 1) as f64).round() as usize).min(samples.len() - 1);
            samples[idx]
        };
        Self {
            count,
            mean_ns: (sum / count as u128) as u64,
            p50_ns: at(0.50),
            p99_ns: at(0.99),
            p999_ns: at(0.999),
            max_ns: *samples.last().unwrap(),
        }
    }
}

/// What one [`run`] measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Connections requested.
    pub conns_target: usize,
    /// Connections actually established and held.
    pub conns_opened: usize,
    /// Connect attempts that failed outright.
    pub connect_failures: u64,
    /// Held connections that received bytes (the server's `busy:`
    /// rejection — a held connection never asks for anything).
    pub busy_rejects: u64,
    /// Held connections closed under us (EOF or reset).
    pub early_closes: u64,
    /// Requests requested / completed / failed.
    pub ops_requested: u64,
    /// Requests that completed successfully.
    pub ops_done: u64,
    /// Requests that failed even after retries.
    pub ops_failed: u64,
    /// Completed requests per second of op-phase wall time.
    pub throughput_ops_per_s: f64,
    /// Latency quantiles (`None` when `ops == 0`).
    pub latency: Option<LatencyStats>,
    /// Whole-run wall time.
    pub elapsed: Duration,
    /// `"open"` or `"closed"`.
    pub mode: &'static str,
}

impl LoadgenReport {
    /// Every connection was held to the end and nothing was rejected —
    /// the steady-state acceptance criterion.
    pub fn clean(&self) -> bool {
        self.connect_failures == 0
            && self.busy_rejects == 0
            && self.early_closes == 0
            && self.ops_failed == 0
            && self.conns_opened == self.conns_target
    }

    /// Hand-formatted JSON (std-only on purpose: the report must be
    /// writable even where no serializer backend exists).
    pub fn to_json(&self) -> String {
        let latency = match &self.latency {
            None => "null".to_string(),
            Some(l) => format!(
                "{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
                l.count, l.mean_ns, l.p50_ns, l.p99_ns, l.p999_ns, l.max_ns
            ),
        };
        format!(
            "{{\n  \"bench\": \"serve\",\n  \"mode\": \"{}\",\n  \"conns\": {{\"target\": {}, \"opened\": {}, \"connect_failures\": {}, \"busy_rejects\": {}, \"early_closes\": {}}},\n  \"ops\": {{\"requested\": {}, \"done\": {}, \"failed\": {}, \"throughput_per_s\": {:.1}}},\n  \"latency_ns\": {},\n  \"elapsed_s\": {:.3}\n}}\n",
            self.mode,
            self.conns_target,
            self.conns_opened,
            self.connect_failures,
            self.busy_rejects,
            self.early_closes,
            self.ops_requested,
            self.ops_done,
            self.ops_failed,
            self.throughput_ops_per_s,
            latency,
            self.elapsed.as_secs_f64(),
        )
    }
}

/// One held connection client-side: just the socket and its fate.
struct Held {
    stream: TcpStream,
    dead: bool,
}

/// Drive one load-generation run against `config.addr`.
///
/// Phases: raise the fd limit, establish the connection plateau, fire
/// the request traffic (if any) while the plateau holds, keep holding
/// for [`LoadgenConfig::hold`], then tear down and report.
pub fn run(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let started = Instant::now();
    let _ = raise_nofile_limit();

    // Phase 1: the plateau.
    let mut poller = Poller::new()?;
    let mut held: Vec<Held> = Vec::with_capacity(config.conns);
    let mut connect_failures = 0u64;
    for i in 0..config.conns {
        if i > 0 && config.connect_batch > 0 && i % config.connect_batch == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        match TcpStream::connect(config.addr) {
            Ok(stream) => {
                stream.set_nonblocking(true)?;
                let token = held.len() as u64;
                poller.register(raw_fd(&stream), token, Interest::READ)?;
                held.push(Held {
                    stream,
                    dead: false,
                });
            }
            Err(_) => connect_failures += 1,
        }
    }
    let conns_opened = held.len();

    // Phase 2: request traffic from worker threads while we babysit
    // the plateau on this one.
    let ops_done = Arc::new(AtomicU64::new(0));
    let ops_failed = Arc::new(AtomicU64::new(0));
    let samples: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let op_phase_start = Instant::now();
    let workers: Vec<_> = if config.ops > 0 {
        let n_workers = config.op_workers.clamp(1, config.ops.min(64) as usize);
        (0..n_workers)
            .map(|w| {
                let addr = config.addr;
                let ops_done = Arc::clone(&ops_done);
                let ops_failed = Arc::clone(&ops_failed);
                let samples = Arc::clone(&samples);
                let mode = config.mode;
                // Spread the total evenly; the first workers absorb the
                // remainder.
                let quota = config.ops / n_workers as u64
                    + u64::from((config.ops % n_workers as u64) > w as u64);
                let policy = RetryPolicy {
                    jitter_seed: config.seed.wrapping_add(w as u64),
                    ..RetryPolicy::default()
                };
                std::thread::spawn(move || {
                    let mut client = RetryingRegistryClient::new(addr, policy);
                    let mut local: Vec<u64> = Vec::with_capacity(quota as usize);
                    let t0 = Instant::now();
                    for k in 0..quota {
                        let scheduled = match mode {
                            Mode::Closed => Instant::now(),
                            Mode::Open { rate_hz } => {
                                // Global slot (w, w + n, w + 2n, ...) on
                                // the shared arrival schedule.
                                let slot = w as u64 + k * n_workers as u64;
                                let due =
                                    t0 + Duration::from_secs_f64(slot as f64 / rate_hz.max(1e-9));
                                let now = Instant::now();
                                if due > now {
                                    std::thread::sleep(due - now);
                                }
                                due
                            }
                        };
                        // Alternate the two cheap read-only ops so the mix
                        // exercises both the cache path and the stats path.
                        let outcome = if k % 2 == 0 {
                            client.list().map(|_| ())
                        } else {
                            client.stats().map(|_| ())
                        };
                        match outcome {
                            Ok(()) => {
                                ops_done.fetch_add(1, Ordering::Relaxed);
                                local.push(
                                    scheduled.elapsed().as_nanos().min(u64::MAX as u128) as u64
                                );
                            }
                            Err(_) => {
                                ops_failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    if let Ok(mut all) = samples.lock() {
                        all.extend_from_slice(&local);
                    }
                })
            })
            .collect()
    } else {
        Vec::new()
    };

    // Babysit the plateau until the workers finish AND the hold
    // elapses: any byte on a held connection is a busy reject, any EOF
    // an early close.
    let mut busy_rejects = 0u64;
    let mut early_closes = 0u64;
    let hold_until = Instant::now() + config.hold;
    let mut events: Vec<Event> = Vec::new();
    let mut workers = workers;
    loop {
        let now = Instant::now();
        let workers_live = !workers.is_empty();
        if now >= hold_until && !workers_live {
            break;
        }
        let timeout = if workers_live {
            Duration::from_millis(50)
        } else {
            (hold_until - now).min(Duration::from_millis(200))
        };
        let _ = poller.wait(&mut events, Some(timeout));
        for ev in &events {
            let Some(conn) = held.get_mut(ev.token as usize) else {
                continue;
            };
            if conn.dead || !(ev.readable || ev.hangup) {
                continue;
            }
            let mut buf = [0u8; 4096];
            let verdict = loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => break Some(false), // EOF: evicted
                    Ok(_) => break Some(true),  // data: busy line
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break None,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break Some(false),
                }
            };
            if let Some(was_busy) = verdict {
                if was_busy {
                    busy_rejects += 1;
                } else {
                    early_closes += 1;
                }
                conn.dead = true;
                let _ = poller.deregister(raw_fd(&conn.stream), ev.token);
                let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            }
        }
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
    let op_elapsed = op_phase_start.elapsed();

    let done = ops_done.load(Ordering::Relaxed);
    let failed = ops_failed.load(Ordering::Relaxed);
    let latency = if config.ops > 0 {
        let all = samples
            .lock()
            .map(|mut s| std::mem::take(&mut *s))
            .unwrap_or_default();
        Some(LatencyStats::from_samples(all))
    } else {
        None
    };
    Ok(LoadgenReport {
        conns_target: config.conns,
        conns_opened,
        connect_failures,
        busy_rejects,
        early_closes,
        ops_requested: config.ops,
        ops_done: done,
        ops_failed: failed,
        throughput_ops_per_s: if config.ops > 0 && op_elapsed.as_secs_f64() > 0.0 {
            done as f64 / op_elapsed.as_secs_f64()
        } else {
            0.0
        },
        latency,
        elapsed: started.elapsed(),
        mode: match config.mode {
            Mode::Closed => "closed",
            Mode::Open { .. } => "open",
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_pick_sane_quantiles() {
        let stats = LatencyStats::from_samples((1..=1000).collect());
        assert_eq!(stats.count, 1000);
        assert_eq!(stats.max_ns, 1000);
        assert!(stats.p50_ns >= 490 && stats.p50_ns <= 510, "{stats:?}");
        assert!(stats.p99_ns >= 985 && stats.p99_ns <= 995, "{stats:?}");
        assert!(stats.p999_ns >= 997, "{stats:?}");
        assert_eq!(LatencyStats::from_samples(Vec::new()).count, 0);
    }

    #[test]
    fn report_json_is_well_formed_by_hand() {
        let report = LoadgenReport {
            conns_target: 512,
            conns_opened: 512,
            connect_failures: 0,
            busy_rejects: 0,
            early_closes: 0,
            ops_requested: 100,
            ops_done: 99,
            ops_failed: 1,
            throughput_ops_per_s: 1234.5,
            latency: Some(LatencyStats {
                count: 99,
                mean_ns: 1_000,
                p50_ns: 900,
                p99_ns: 5_000,
                p999_ns: 9_000,
                max_ns: 10_000,
            }),
            elapsed: Duration::from_millis(1500),
            mode: "closed",
        };
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"serve\""), "{json}");
        assert!(json.contains("\"p999_ns\":9000"), "{json}");
        assert!(json.contains("\"throughput_per_s\": 1234.5"), "{json}");
        assert!(!report.clean(), "one failed op must not be clean");
        // The hold-only shape serializes latency as null.
        let hold_only = LoadgenReport {
            ops_requested: 0,
            ops_done: 0,
            ops_failed: 0,
            latency: None,
            ..report
        };
        assert!(hold_only.to_json().contains("\"latency_ns\": null"));
        assert!(hold_only.clean());
    }
}
