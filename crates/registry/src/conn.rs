//! Per-connection state for the event-driven server: nonblocking
//! socket ownership, partial-line buffering across readiness events,
//! and a pending-output buffer with flush tracking.
//!
//! A connection is a small state machine driven by the event loop:
//!
//! ```text
//!          readable                 complete line          response
//!   ┌────► reading ── buffer ─────► in-flight ──────────► flushing ──┐
//!   │      (accumulate bytes,       (request queued        (write    │
//!   │       split NDJSON lines)      to a worker;           buffer   │
//!   │                                socket reads           drains)  │
//!   │                                paused = natural               ─┘
//!   └────────────────────────────────backpressure)──────────────────┘
//! ```
//!
//! At most **one request is in flight per connection** — exactly the
//! ordering guarantee the blocking worker-per-connection model gave —
//! and while one is, the loop stops reading from that socket, so a
//! pipelining client is backpressured by the kernel socket buffer
//! rather than by server memory.

use crate::poll::Interest;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Assembles newline-delimited frames from arbitrary byte chunks.
#[derive(Debug, Default)]
pub struct LineBuffer {
    buf: Vec<u8>,
    /// Bytes already scanned for `\n` (avoids rescanning on every
    /// partial read).
    scanned: usize,
}

impl LineBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a chunk received from the socket.
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes currently buffered (complete and partial lines).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pop the next complete line (without its `\n`), if any.
    pub fn pop_line(&mut self) -> Option<Vec<u8>> {
        let nl = self.buf[self.scanned..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| i + self.scanned);
        match nl {
            Some(i) => {
                let mut line: Vec<u8> = self.buf.drain(..=i).collect();
                line.pop(); // the newline
                self.scanned = 0;
                Some(line)
            }
            None => {
                self.scanned = self.buf.len();
                None
            }
        }
    }

    /// True when the *unterminated* trailing segment exceeds `max`
    /// bytes — an oversized (or endless) line the server must refuse
    /// rather than buffer without bound. Complete lines already queued
    /// ahead of it never count against the cap.
    pub fn line_overflows(&self, max: usize) -> bool {
        if self.buf.len() <= max {
            return false;
        }
        let tail_start = match self.buf.iter().rposition(|&b| b == b'\n') {
            Some(i) => i + 1,
            None => 0,
        };
        self.buf.len() - tail_start > max
    }
}

/// What a read pass over a ready socket produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Bytes appended to the line buffer.
    pub bytes: usize,
    /// The peer half-closed (clean EOF).
    pub eof: bool,
}

/// One live client connection owned by the event loop.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    /// The poller token this connection is registered under.
    pub token: u64,
    /// Incoming bytes not yet consumed as lines.
    pub lines: LineBuffer,
    /// Outgoing bytes not yet accepted by the kernel.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// A request from this connection is queued or executing.
    pub inflight: bool,
    /// The peer sent FIN; no more input will arrive.
    pub peer_eof: bool,
    /// Discard further input; close once the write buffer drains.
    pub closing: bool,
    /// Idle/read deadline; re-armed on activity.
    pub deadline: Instant,
    /// Bumped on every re-arm so stale timer-wheel entries are ignored.
    pub generation: u64,
    /// Interest currently registered with the poller.
    pub registered: Interest,
}

impl Conn {
    /// Adopt an accepted socket (made nonblocking here).
    pub fn new(stream: TcpStream, token: u64, deadline: Instant) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            token,
            lines: LineBuffer::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            inflight: false,
            peer_eof: false,
            closing: false,
            deadline,
            generation: 0,
            registered: Interest::READ,
        })
    }

    /// The underlying socket (for poller registration and shutdown).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Drain the socket into the line buffer until `WouldBlock`, EOF,
    /// or `max_buffered` bytes are pending. Sets [`Self::peer_eof`] on
    /// EOF; transport errors bubble up (caller closes).
    pub fn read_ready(&mut self, max_buffered: usize) -> io::Result<ReadOutcome> {
        let mut chunk = [0u8; 8 * 1024];
        let mut total = 0usize;
        loop {
            if self.lines.len() >= max_buffered {
                break; // backpressure: stop pulling until lines drain
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    self.lines.extend(&chunk[..n]);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(ReadOutcome {
            bytes: total,
            eof: self.peer_eof,
        })
    }

    /// Queue response bytes for writing.
    pub fn queue_write(&mut self, bytes: &[u8]) {
        // Compact the consumed prefix before growing.
        if self.write_pos > 0 {
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
        self.write_buf.extend_from_slice(bytes);
    }

    /// Push queued bytes into the kernel until done or `WouldBlock`.
    /// Returns `true` once the buffer is fully flushed.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "kernel accepted zero bytes",
                    ))
                }
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.write_buf.clear();
        self.write_pos = 0;
        Ok(true)
    }

    /// Output still pending flush.
    pub fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// The interest this connection should be registered for right now:
    /// reads are paused while a request is in flight (backpressure) or
    /// the connection is closing; writes are armed only while output is
    /// pending (level-triggered pollers would spin otherwise).
    pub fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.inflight && !self.closing && !self.peer_eof,
            writable: self.wants_write(),
        }
    }

    /// Re-arm the idle deadline after activity; returns the new
    /// generation for the timer wheel.
    pub fn rearm_deadline(&mut self, deadline: Instant) -> u64 {
        self.deadline = deadline;
        self.generation += 1;
        self.generation
    }

    /// Nothing left to do for this peer: no in-flight request, output
    /// flushed, and either the peer hung up or we are closing.
    pub fn drained(&self) -> bool {
        !self.inflight && !self.wants_write()
    }

    /// Send FIN both ways (the poller deregisters separately).
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_split_across_arbitrary_chunks() {
        let mut lb = LineBuffer::new();
        lb.extend(b"{\"cmd\":");
        assert_eq!(lb.pop_line(), None);
        lb.extend(b"\"list\"}\n{\"cmd\"");
        assert_eq!(lb.pop_line().as_deref(), Some(&b"{\"cmd\":\"list\"}"[..]));
        assert_eq!(lb.pop_line(), None);
        lb.extend(b":\"stats\"}\n");
        assert_eq!(lb.pop_line().as_deref(), Some(&b"{\"cmd\":\"stats\"}"[..]));
        assert!(lb.is_empty());
    }

    #[test]
    fn byte_at_a_time_assembly() {
        // The slow-loris shape: one byte per readiness event.
        let mut lb = LineBuffer::new();
        for b in b"{\"cmd\":\"list\"}" {
            lb.extend(&[*b]);
            assert_eq!(lb.pop_line(), None);
        }
        lb.extend(b"\n");
        assert_eq!(lb.pop_line().as_deref(), Some(&b"{\"cmd\":\"list\"}"[..]));
    }

    #[test]
    fn overflow_only_counts_the_unterminated_head() {
        let mut lb = LineBuffer::new();
        lb.extend(b"tiny\n");
        lb.extend(&[b'x'; 64]);
        // 69 bytes total but the unterminated head is 64: a 64-byte cap
        // flags it, a 100-byte cap does not — and a buffer whose excess
        // is complete lines does not overflow.
        assert!(!lb.line_overflows(100));
        assert!(lb.line_overflows(32));
        assert_eq!(lb.pop_line().as_deref(), Some(&b"tiny"[..]));
        assert!(!lb.line_overflows(64));
        assert!(lb.line_overflows(32));
    }

    #[test]
    fn empty_lines_pop_as_empty_frames() {
        let mut lb = LineBuffer::new();
        lb.extend(b"\n\n");
        assert_eq!(lb.pop_line().as_deref(), Some(&b""[..]));
        assert_eq!(lb.pop_line().as_deref(), Some(&b""[..]));
        assert_eq!(lb.pop_line(), None);
    }

    fn pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn conn_reads_flushes_and_tracks_interest() {
        let (mut client, server_side) = pair();
        let mut conn = Conn::new(server_side, 5, Instant::now()).unwrap();
        assert_eq!(conn.desired_interest(), Interest::READ);

        client.write_all(b"{\"cmd\":\"list\"}\n").unwrap();
        client.flush().unwrap();
        // Give loopback a moment, then drain.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let got = conn.read_ready(1 << 20).unwrap();
        assert!(got.bytes > 0 && !got.eof);
        assert!(conn.lines.pop_line().is_some());

        // In-flight pauses reads; queued output arms writes.
        conn.inflight = true;
        conn.queue_write(b"{\"reply\":\"ok\"}\n");
        let want = conn.desired_interest();
        assert!(!want.readable && want.writable);
        assert!(conn.flush().unwrap(), "tiny write must flush at once");
        conn.inflight = false;
        assert_eq!(conn.desired_interest(), Interest::READ);
        assert!(conn.drained());

        // Peer reads the reply and closes cleanly: the close surfaces
        // as EOF (an unread reply would turn the close into a reset).
        let mut reply = [0u8; 15];
        client.read_exact(&mut reply).unwrap();
        drop(client);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let got = conn.read_ready(1 << 20).unwrap();
        assert!(got.eof);
        assert!(!conn.desired_interest().readable);
    }

    #[test]
    fn partial_flush_survives_a_full_socket_buffer() {
        let (client, server_side) = pair();
        let mut conn = Conn::new(server_side, 1, Instant::now()).unwrap();
        // Queue far more than loopback buffers absorb with the reader
        // stalled: flush must make partial progress and report pending.
        let blob = vec![b'z'; 8 * 1024 * 1024];
        conn.queue_write(&blob);
        let first = conn.flush().unwrap();
        assert!(!first, "8 MiB cannot flush into a stalled socket");
        assert!(conn.wants_write());
        // Drain the client side; repeated flushes finish the job.
        let reader = std::thread::spawn(move || {
            let mut sink = client;
            let mut total = 0usize;
            let mut buf = [0u8; 65536];
            loop {
                match sink.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => total += n,
                    Err(_) => break,
                }
            }
            total
        });
        let deadline = Instant::now() + std::time::Duration::from_secs(20);
        while !conn.flush().unwrap() {
            assert!(Instant::now() < deadline, "flush never completed");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        conn.shutdown();
        assert_eq!(reader.join().unwrap(), blob.len());
    }
}
