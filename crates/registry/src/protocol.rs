//! The registry wire protocol: newline-delimited JSON, one request and
//! one response per line.
//!
//! Requests are tagged by `"cmd"`, responses by `"reply"`; the payloads
//! reuse the exact serde types the rest of the workspace consumes
//! ([`MachineProfile`], [`AdviceQuery`], [`AdviceOutcome`],
//! [`StoreEntry`]), so an answer read off the wire is the same value the
//! in-process API returns. `DESIGN.md` documents the JSON shapes.

use crate::advice::{AdviceOutcome, AdviceQuery};
use crate::cache::CacheStats;
use crate::store::StoreEntry;
use crate::tune::TuneQuery;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use servet_core::profile::MachineProfile;
use servet_tune::TuneOutcome;
use std::io::{self, BufRead, Write};

/// Prefix of the [`Response::Error`] diagnostic written when the server
/// rejects a connection because its accept queue is full. Clients match
/// on this prefix (via [`is_busy_error`]) to tell "server overloaded,
/// retry with backoff" apart from a request the server actually refused.
pub const BUSY_PREFIX: &str = "busy:";

/// The one-line rejection written (best effort) before the server closes
/// a connection it cannot queue.
pub fn busy_response() -> Response {
    Response::Error {
        error: format!("{BUSY_PREFIX} accept queue full, retry with backoff"),
    }
}

/// Whether a protocol-level error string is the server-busy rejection.
pub fn is_busy_error(error: &str) -> bool {
    error.starts_with(BUSY_PREFIX)
}

/// Whether a raw, still-unparsed reply line carries the server-busy
/// rejection. A string-level match on the error field: busy lines are
/// hand-built by the server (never routed through the JSON encoder), so
/// transports can classify a rejection before — or without — parsing.
pub fn is_busy_line(line: &str) -> bool {
    line.contains("\"error\":\"busy:")
}

/// A client request, one JSON object per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "cmd", rename_all = "snake_case")]
pub enum Request {
    /// Store a profile, optionally binding an alias to it.
    Put {
        /// The profile to store.
        profile: Box<MachineProfile>,
        /// Alias to bind to the stored digest.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        name: Option<String>,
    },
    /// Fetch a profile by alias, digest, or unique digest prefix.
    Get {
        /// Alias, digest, or unique digest prefix.
        key: String,
    },
    /// List every stored profile.
    List,
    /// Ask for autotuning advice against a stored profile.
    Advise {
        /// Alias, digest, or unique digest prefix.
        key: String,
        /// The advice query.
        query: AdviceQuery,
    },
    /// Run (or recall) a search-based tuning session against a stored
    /// profile.
    Tune {
        /// Alias, digest, or unique digest prefix.
        key: String,
        /// The tuning query: space (optional), strategy options, kernel
        /// size.
        query: TuneQuery,
    },
    /// Fetch server counters.
    Stats,
}

/// Per-operation request-latency digest reported by [`Response::Stats`].
///
/// One entry per protocol operation that has been exercised since server
/// startup, derived from a log2-bucketed `servet_obs::Histogram`. The
/// `buckets` field carries the raw `(upper_bound, count)` pairs so clients
/// can compute their own quantiles; old clients that predate this field
/// simply ignore it, and old servers that omit `ops` deserialize to an
/// empty vec.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpLatency {
    /// Operation name: `put`, `get`, `list`, `advise`, `tune`, or
    /// `stats`.
    pub op: String,
    /// Requests of this operation observed.
    pub count: u64,
    /// Total handling time, nanoseconds (saturating).
    pub total_ns: u64,
    /// Fastest observed request, nanoseconds.
    pub min_ns: u64,
    /// Slowest observed request, nanoseconds.
    pub max_ns: u64,
    /// Median latency estimate, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency estimate, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency estimate, nanoseconds. Defaults to
    /// zero when talking to servers that predate the field.
    #[serde(default)]
    pub p999_ns: u64,
    /// Non-empty log2 buckets as `(upper_bound, count)` pairs.
    #[serde(default)]
    pub buckets: Vec<(u64, u64)>,
}

impl OpLatency {
    /// Build the wire entry for `op` from a histogram snapshot.
    pub fn from_snapshot(op: &str, snap: &servet_obs::HistogramSnapshot) -> Self {
        Self {
            op: op.to_string(),
            count: snap.count,
            total_ns: snap.sum,
            min_ns: snap.min,
            max_ns: snap.max,
            p50_ns: snap.quantile(0.50),
            p99_ns: snap.quantile(0.99),
            p999_ns: snap.quantile(0.999),
            buckets: snap.buckets.clone(),
        }
    }
}

/// Accept-path counters reported by [`Response::Stats`]: how the TCP
/// front end's bounded worker pool is coping with its connection load.
///
/// All fields default to zero so replies from servers that predate the
/// worker pool (or from in-process registries that never serve TCP)
/// still parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AcceptStats {
    /// Connections handed to the worker pool since startup.
    #[serde(default)]
    pub accepted: u64,
    /// Connections dropped because the accept queue was full.
    #[serde(default)]
    pub rejected: u64,
    /// Requests currently queued awaiting a free worker.
    #[serde(default)]
    pub queue_depth: u64,
    /// High-water mark of `queue_depth` since startup.
    #[serde(default)]
    pub queue_depth_max: u64,
    /// Connections killed because they did not drain within the
    /// shutdown grace period ([`ServerConfig::drain_grace`]).
    ///
    /// [`ServerConfig::drain_grace`]: crate::server::ServerConfig::drain_grace
    #[serde(default)]
    pub drain_killed: u64,
}

/// Event-loop counters reported by [`Response::Stats`]: how the
/// readiness-driven front end is multiplexing its connections.
///
/// All fields default to zero so replies from servers that predate the
/// event loop still parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EventStats {
    /// Readiness events delivered by the poller since startup.
    #[serde(default)]
    pub ready_events: u64,
    /// Times the loop was woken by a worker completion or shutdown
    /// (as opposed to socket readiness).
    #[serde(default)]
    pub wakeups: u64,
    /// Read passes that buffered bytes without completing a line —
    /// requests arriving fragmented across readiness events.
    #[serde(default)]
    pub partial_reads: u64,
    /// Connections killed by the read/idle deadline.
    #[serde(default)]
    pub deadline_kills: u64,
    /// Connections closed for exceeding the request-line size cap.
    #[serde(default)]
    pub oversized_rejected: u64,
    /// Connections currently registered with the event loop.
    #[serde(default)]
    pub conns_open: u64,
    /// High-water mark of `conns_open` since startup.
    #[serde(default)]
    pub conns_peak: u64,
}

/// Counter snapshot reported by [`Response::Stats`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Profiles currently on disk.
    pub profiles: usize,
    /// Requests handled since startup.
    pub requests: u64,
    /// Advice memo-cache hits.
    pub advice_hits: u64,
    /// Advice memo-cache misses.
    pub advice_misses: u64,
    /// Advice memo-cache evictions.
    pub advice_evictions: u64,
    /// Parsed-profile cache hits.
    pub profile_hits: u64,
    /// Parsed-profile cache misses.
    pub profile_misses: u64,
    /// Per-operation latency digests (only operations seen so far).
    #[serde(default)]
    pub ops: Vec<OpLatency>,
    /// Accept-path counters of the serving worker pool.
    #[serde(default)]
    pub accept: AcceptStats,
    /// Event-loop counters of the readiness-driven front end.
    #[serde(default)]
    pub events: EventStats,
}

impl ServerStats {
    /// Fold the cache snapshots, the per-op latency digests and the
    /// accept- and event-path counters into the wire struct.
    #[allow(clippy::too_many_arguments)]
    pub fn from_caches(
        profiles: usize,
        requests: u64,
        advice: CacheStats,
        profile_cache: CacheStats,
        ops: Vec<OpLatency>,
        accept: AcceptStats,
        events: EventStats,
    ) -> Self {
        Self {
            profiles,
            requests,
            advice_hits: advice.hits,
            advice_misses: advice.misses,
            advice_evictions: advice.evictions,
            profile_hits: profile_cache.hits,
            profile_misses: profile_cache.misses,
            ops,
            accept,
            events,
        }
    }
}

/// A server response, one JSON object per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "reply", rename_all = "snake_case")]
pub enum Response {
    /// The profile was stored (or already present) under this digest.
    Stored {
        /// Content digest of the stored profile.
        digest: String,
    },
    /// A stored profile.
    Profile {
        /// The resolved digest.
        digest: String,
        /// The profile itself.
        profile: Box<MachineProfile>,
    },
    /// Every stored profile.
    Listing {
        /// One entry per stored profile, digest-sorted.
        entries: Vec<StoreEntry>,
    },
    /// An advice answer.
    Advice {
        /// The resolved digest the advice was computed against.
        digest: String,
        /// Whether the memo cache served it.
        cached: bool,
        /// The outcome, shared with `servet advise --json`.
        outcome: AdviceOutcome,
    },
    /// A tuning answer.
    Tuned {
        /// The resolved digest the session ran against.
        digest: String,
        /// Whether the memo cache served it.
        cached: bool,
        /// The outcome, shared with `servet tune --json`.
        outcome: TuneOutcome,
    },
    /// Server counters.
    Stats {
        /// The counters.
        stats: ServerStats,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable diagnostic.
        error: String,
    },
}

/// Serialize `msg` as one JSON line and flush it.
pub fn write_message<T: Serialize>(writer: &mut impl Write, msg: &T) -> io::Result<()> {
    let mut line = serde_json::to_string(msg).map_err(io::Error::other)?;
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Read one JSON line into `T`. `Ok(None)` means a clean EOF before any
/// byte; a line that fails to parse is an `InvalidData` error.
pub fn read_message<T: DeserializeOwned>(reader: &mut impl BufRead) -> io::Result<Option<T>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty line"));
    }
    serde_json::from_str(trimmed)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_wire_shapes() {
        let req = Request::Advise {
            key: "tiny".into(),
            query: AdviceQuery::Bcast {
                ranks: 8,
                bytes: 4096,
            },
        };
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"cmd\":\"advise\""), "{json}");
        assert!(json.contains("\"kind\":\"bcast\""), "{json}");
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), req);
    }

    #[test]
    fn query_defaults_fill_in() {
        // A terse hand-written query relies on the serde defaults.
        let q: AdviceQuery = serde_json::from_str(r#"{"kind":"tile"}"#).unwrap();
        assert_eq!(
            q,
            AdviceQuery::Tile {
                level: 1,
                elem_size: 8,
                matrices: 3,
                occupancy: 0.75
            }
        );
        let q: AdviceQuery = serde_json::from_str(r#"{"kind":"threads"}"#).unwrap();
        assert_eq!(q, AdviceQuery::Threads { tolerance: 0.05 });
        let q: AdviceQuery = serde_json::from_str(r#"{"kind":"bcast"}"#).unwrap();
        assert_eq!(
            q,
            AdviceQuery::Bcast {
                ranks: 0,
                bytes: 32 * 1024
            }
        );
    }

    #[test]
    fn line_round_trip() {
        let resp = Response::Stored {
            digest: "d".repeat(64),
        };
        let mut buf = Vec::new();
        write_message(&mut buf, &resp).unwrap();
        assert!(buf.ends_with(b"\n"));
        let mut reader = io::BufReader::new(&buf[..]);
        let back: Response = read_message(&mut reader).unwrap().unwrap();
        assert_eq!(back, resp);
        // EOF after the single line.
        assert!(read_message::<Response>(&mut reader).unwrap().is_none());
    }

    #[test]
    fn stats_round_trip_with_ops() {
        let h = servet_obs::Histogram::new();
        for v in [800u64, 1200, 95_000] {
            h.record(v);
        }
        let stats = ServerStats {
            profiles: 2,
            requests: 7,
            ops: vec![OpLatency::from_snapshot("advise", &h.snapshot())],
            ..Default::default()
        };
        let resp = Response::Stats {
            stats: stats.clone(),
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"op\":\"advise\""), "{json}");
        assert_eq!(serde_json::from_str::<Response>(&json).unwrap(), resp);
        let op = &stats.ops[0];
        assert_eq!(op.count, 3);
        assert_eq!(op.min_ns, 800);
        assert_eq!(op.max_ns, 95_000);
        assert!(op.p50_ns >= 800 && op.p50_ns <= 2047, "{}", op.p50_ns);
        assert_eq!(op.p99_ns, 95_000);
        assert_eq!(op.p999_ns, 95_000);
    }

    #[test]
    fn accept_stats_round_trip_and_default() {
        let stats = ServerStats {
            profiles: 1,
            accept: AcceptStats {
                accepted: 70,
                rejected: 3,
                queue_depth: 2,
                queue_depth_max: 9,
                drain_killed: 1,
            },
            ..Default::default()
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"rejected\":3"), "{json}");
        assert_eq!(serde_json::from_str::<ServerStats>(&json).unwrap(), stats);
        // A pre-pool server omits "accept" entirely: all-zero default.
        let old = r#"{"profiles":1,"requests":2,"advice_hits":0,"advice_misses":0,
            "advice_evictions":0,"profile_hits":0,"profile_misses":0}"#;
        let parsed: ServerStats = serde_json::from_str(old).unwrap();
        assert_eq!(parsed.accept, AcceptStats::default());
        assert_eq!(parsed.events, EventStats::default());
        // A pre-drain-deadline reply omits "drain_killed" inside accept.
        let pre_drain = r#"{"accepted":70,"rejected":3,"queue_depth":2,"queue_depth_max":9}"#;
        let parsed: AcceptStats = serde_json::from_str(pre_drain).unwrap();
        assert_eq!(parsed.accepted, 70);
        assert_eq!(parsed.drain_killed, 0);
    }

    #[test]
    fn event_stats_round_trip_and_default() {
        let stats = ServerStats {
            profiles: 1,
            events: EventStats {
                ready_events: 1000,
                wakeups: 40,
                partial_reads: 7,
                deadline_kills: 2,
                oversized_rejected: 1,
                conns_open: 3,
                conns_peak: 512,
            },
            ..Default::default()
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"conns_peak\":512"), "{json}");
        assert_eq!(serde_json::from_str::<ServerStats>(&json).unwrap(), stats);
        // A pre-event-loop entry omits the p999 field: defaults to 0.
        let pre = r#"{"op":"get","count":1,"total_ns":5,"min_ns":5,"max_ns":5,
            "p50_ns":5,"p99_ns":5}"#;
        let parsed: OpLatency = serde_json::from_str(pre).unwrap();
        assert_eq!(parsed.p999_ns, 0);
        assert!(parsed.buckets.is_empty());
    }

    #[test]
    fn stats_without_ops_field_still_parses() {
        // A pre-observability server omits "ops" entirely; the field must
        // default to empty rather than fail the whole stats reply.
        let json = r#"{"reply":"stats","stats":{"profiles":1,"requests":2,
            "advice_hits":0,"advice_misses":0,"advice_evictions":0,
            "profile_hits":0,"profile_misses":0}}"#;
        match serde_json::from_str::<Response>(json).unwrap() {
            Response::Stats { stats } => {
                assert_eq!(stats.profiles, 1);
                assert!(stats.ops.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn busy_rejection_is_recognizable_on_the_wire() {
        let mut buf = Vec::new();
        write_message(&mut buf, &busy_response()).unwrap();
        let mut reader = io::BufReader::new(&buf[..]);
        match read_message::<Response>(&mut reader).unwrap().unwrap() {
            Response::Error { error } => assert!(is_busy_error(&error), "{error}"),
            other => panic!("unexpected {other:?}"),
        }
        // An ordinary protocol error must NOT look busy, or clients would
        // retry requests the server deliberately refused.
        assert!(!is_busy_error("no profile named tiny"));
    }

    #[test]
    fn busy_line_matches_raw_wire_bytes_without_parsing() {
        // The exact shape the server hand-builds for both busy flavors.
        assert!(is_busy_line(
            "{\"reply\":\"error\",\"error\":\"busy: accept queue full, retry with backoff\"}"
        ));
        assert!(is_busy_line(
            "{\"reply\":\"error\",\"error\":\"busy: server overloaded, retry with backoff\"}"
        ));
        // Ordinary errors and non-error replies must not look busy.
        assert!(!is_busy_line(
            "{\"reply\":\"error\",\"error\":\"no profile named tiny\"}"
        ));
        assert!(!is_busy_line("{\"reply\":\"listing\",\"entries\":[]}"));
    }

    #[test]
    fn garbage_line_is_invalid_data() {
        let mut reader = io::BufReader::new(&b"{nope\n"[..]);
        let err = read_message::<Request>(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
