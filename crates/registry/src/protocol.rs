//! The registry wire protocol: newline-delimited JSON, one request and
//! one response per line.
//!
//! Requests are tagged by `"cmd"`, responses by `"reply"`; the payloads
//! reuse the exact serde types the rest of the workspace consumes
//! ([`MachineProfile`], [`AdviceQuery`], [`AdviceOutcome`],
//! [`StoreEntry`]), so an answer read off the wire is the same value the
//! in-process API returns. `DESIGN.md` documents the JSON shapes.

use crate::advice::{AdviceOutcome, AdviceQuery};
use crate::cache::CacheStats;
use crate::store::StoreEntry;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use servet_core::profile::MachineProfile;
use std::io::{self, BufRead, Write};

/// A client request, one JSON object per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "cmd", rename_all = "snake_case")]
pub enum Request {
    /// Store a profile, optionally binding an alias to it.
    Put {
        /// The profile to store.
        profile: Box<MachineProfile>,
        /// Alias to bind to the stored digest.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        name: Option<String>,
    },
    /// Fetch a profile by alias, digest, or unique digest prefix.
    Get {
        /// Alias, digest, or unique digest prefix.
        key: String,
    },
    /// List every stored profile.
    List,
    /// Ask for autotuning advice against a stored profile.
    Advise {
        /// Alias, digest, or unique digest prefix.
        key: String,
        /// The advice query.
        query: AdviceQuery,
    },
    /// Fetch server counters.
    Stats,
}

/// Counter snapshot reported by [`Response::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Profiles currently on disk.
    pub profiles: usize,
    /// Requests handled since startup.
    pub requests: u64,
    /// Advice memo-cache hits.
    pub advice_hits: u64,
    /// Advice memo-cache misses.
    pub advice_misses: u64,
    /// Advice memo-cache evictions.
    pub advice_evictions: u64,
    /// Parsed-profile cache hits.
    pub profile_hits: u64,
    /// Parsed-profile cache misses.
    pub profile_misses: u64,
}

impl ServerStats {
    /// Fold the two cache snapshots into the wire struct.
    pub fn from_caches(
        profiles: usize,
        requests: u64,
        advice: CacheStats,
        profile_cache: CacheStats,
    ) -> Self {
        Self {
            profiles,
            requests,
            advice_hits: advice.hits,
            advice_misses: advice.misses,
            advice_evictions: advice.evictions,
            profile_hits: profile_cache.hits,
            profile_misses: profile_cache.misses,
        }
    }
}

/// A server response, one JSON object per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "reply", rename_all = "snake_case")]
pub enum Response {
    /// The profile was stored (or already present) under this digest.
    Stored {
        /// Content digest of the stored profile.
        digest: String,
    },
    /// A stored profile.
    Profile {
        /// The resolved digest.
        digest: String,
        /// The profile itself.
        profile: Box<MachineProfile>,
    },
    /// Every stored profile.
    Listing {
        /// One entry per stored profile, digest-sorted.
        entries: Vec<StoreEntry>,
    },
    /// An advice answer.
    Advice {
        /// The resolved digest the advice was computed against.
        digest: String,
        /// Whether the memo cache served it.
        cached: bool,
        /// The outcome, shared with `servet advise --json`.
        outcome: AdviceOutcome,
    },
    /// Server counters.
    Stats {
        /// The counters.
        stats: ServerStats,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable diagnostic.
        error: String,
    },
}

/// Serialize `msg` as one JSON line and flush it.
pub fn write_message<T: Serialize>(writer: &mut impl Write, msg: &T) -> io::Result<()> {
    let mut line = serde_json::to_string(msg).map_err(io::Error::other)?;
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Read one JSON line into `T`. `Ok(None)` means a clean EOF before any
/// byte; a line that fails to parse is an `InvalidData` error.
pub fn read_message<T: DeserializeOwned>(reader: &mut impl BufRead) -> io::Result<Option<T>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty line"));
    }
    serde_json::from_str(trimmed)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_wire_shapes() {
        let req = Request::Advise {
            key: "tiny".into(),
            query: AdviceQuery::Bcast {
                ranks: 8,
                bytes: 4096,
            },
        };
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"cmd\":\"advise\""), "{json}");
        assert!(json.contains("\"kind\":\"bcast\""), "{json}");
        assert_eq!(serde_json::from_str::<Request>(&json).unwrap(), req);
    }

    #[test]
    fn query_defaults_fill_in() {
        // A terse hand-written query relies on the serde defaults.
        let q: AdviceQuery = serde_json::from_str(r#"{"kind":"tile"}"#).unwrap();
        assert_eq!(
            q,
            AdviceQuery::Tile {
                level: 1,
                elem_size: 8,
                matrices: 3,
                occupancy: 0.75
            }
        );
        let q: AdviceQuery = serde_json::from_str(r#"{"kind":"threads"}"#).unwrap();
        assert_eq!(q, AdviceQuery::Threads { tolerance: 0.05 });
        let q: AdviceQuery = serde_json::from_str(r#"{"kind":"bcast"}"#).unwrap();
        assert_eq!(
            q,
            AdviceQuery::Bcast {
                ranks: 0,
                bytes: 32 * 1024
            }
        );
    }

    #[test]
    fn line_round_trip() {
        let resp = Response::Stored {
            digest: "d".repeat(64),
        };
        let mut buf = Vec::new();
        write_message(&mut buf, &resp).unwrap();
        assert!(buf.ends_with(b"\n"));
        let mut reader = io::BufReader::new(&buf[..]);
        let back: Response = read_message(&mut reader).unwrap().unwrap();
        assert_eq!(back, resp);
        // EOF after the single line.
        assert!(read_message::<Response>(&mut reader).unwrap().is_none());
    }

    #[test]
    fn garbage_line_is_invalid_data() {
        let mut reader = io::BufReader::new(&b"{nope\n"[..]);
        let err = read_message::<Request>(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
