//! # servet-registry
//!
//! The serving layer over Servet machine profiles. The paper's workflow
//! (§IV-E) measures a machine **once** and lets every autotuned code
//! consult the result; this crate turns that file-on-disk convention into
//! a long-lived, concurrent service:
//!
//! * [`digest`] — a dependency-free SHA-256; profiles are keyed by the
//!   digest of their canonical JSON.
//! * [`store`] — the content-addressed on-disk store with atomic writes
//!   and a named-alias index (`"dunnington"` → digest).
//! * [`cache`] — a sharded `RwLock` in-memory cache with hit/miss/
//!   eviction counters, used for parsed profiles and memoized advice.
//! * [`advice`] — the `servet-autotune` consumers (`advise_memory_threads`,
//!   `select_tile`, `select_broadcast`) behind one serde query/outcome
//!   type, memoized per `(digest, query)` — content addressing makes
//!   answers immortal.
//! * [`tune`] — search-based tuning sessions (the `servet-tune`
//!   strategies over the profile-oracle cost model), memoized per
//!   `(digest, space digest, options)` so a session is computed once per
//!   stored profile, ever.
//! * [`registry`] — store + caches behind a single request dispatch.
//! * [`protocol`] — the newline-delimited JSON wire types (documented in
//!   `DESIGN.md`).
//! * [`poll`] / [`timer`] / [`conn`] — the std-only event-loop
//!   substrate: a readiness [`poll::Poller`] (raw-syscall epoll with
//!   `poll(2)` and scan fallbacks), a hashed [`timer::TimerWheel`] of
//!   idle deadlines, and the per-connection [`conn::Conn`] state
//!   machine that buffers partial NDJSON lines across readiness
//!   events.
//! * [`server`] / [`client`] — an event-driven TCP server: one loop
//!   thread multiplexes every connection (10k+ sockets, `workers + 1`
//!   threads total) and feeds parsed request lines to a fixed worker
//!   pool over a bounded queue (idle deadlines, a typed `busy:`
//!   rejection on overload at both admission and execution,
//!   drain-deadline shutdown); plus the blocking client used by
//!   `servet query`, and the reconnecting
//!   [`client::RetryingRegistryClient`] (decorrelated-jitter backoff)
//!   that `servet zoo` streams profiles through.
//!
//! Request handling is instrumented with per-operation latency histograms
//! (`servet-obs`), surfaced through the `stats` protocol command — see
//! [`protocol::OpLatency`] and `crates/registry/README.md` for the wire
//! format.
//!
//! ```no_run
//! use servet_registry::prelude::*;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(Registry::open("/var/lib/servet")?);
//! let server = serve(registry, "127.0.0.1:7431", ServerConfig::default())?;
//! println!("serving on {}", server.addr());
//! server.join();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod advice;
pub mod cache;
pub mod client;
pub mod conn;
pub mod digest;
pub mod loadgen;
pub mod poll;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod store;
pub mod timer;
pub mod tune;

pub use advice::{compute_advice, AdviceEngine, AdviceOutcome, AdviceQuery};
pub use cache::{CacheStats, ShardedCache};
pub use client::{
    is_retryable, is_server_busy, Backoff, RegistryClient, RetryPolicy, RetryingRegistryClient,
};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use protocol::{
    busy_response, is_busy_error, AcceptStats, EventStats, OpLatency, Request, Response,
    ServerStats, BUSY_PREFIX,
};
pub use registry::{AcceptCounters, EventCounters, Registry};
pub use server::{serve, ServerConfig, ServerHandle};
pub use store::{canonical_json, profile_digest, ProfileStore, StoreEntry};
pub use tune::{TuneEngine, TuneQuery};

/// The common imports for serving and querying.
pub mod prelude {
    pub use crate::advice::{compute_advice, AdviceOutcome, AdviceQuery};
    pub use crate::client::{RegistryClient, RetryPolicy, RetryingRegistryClient};
    pub use crate::protocol::{Request, Response};
    pub use crate::registry::Registry;
    pub use crate::server::{serve, ServerConfig};
    pub use crate::store::profile_digest;
    pub use crate::tune::{TuneEngine, TuneQuery};
}
