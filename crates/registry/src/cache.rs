//! A sharded in-memory cache: one `RwLock`-guarded map per shard, so
//! concurrent readers on different keys rarely contend, plus global
//! hit/miss/eviction counters.
//!
//! `std`-only by design (the CI sandboxes cannot fetch crates): shard
//! selection hashes the key with the default `SipHash` and takes it
//! modulo the shard count; each shard evicts FIFO when it reaches its
//! capacity. The registry uses two instances — digest → parsed profile,
//! and `(digest, query)` → advice — and the serving tests assert on the
//! exposed counters.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Counter snapshot of one [`ShardedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// `get` calls that found the key.
    pub hits: u64,
    /// `get` calls that did not.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident across all shards.
    pub entries: usize,
}

struct Shard<K, V> {
    map: HashMap<K, V>,
    /// Insertion order for FIFO eviction; holds exactly the map's keys.
    order: VecDeque<K>,
}

/// A fixed-shard concurrent cache with FIFO eviction per shard.
pub struct ShardedCache<K, V> {
    shards: Vec<RwLock<Shard<K, V>>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache of `num_shards` shards (min 1) holding at most
    /// `capacity_per_shard` entries each (min 1).
    pub fn new(num_shards: usize, capacity_per_shard: usize) -> Self {
        let num_shards = num_shards.max(1);
        Self {
            shards: (0..num_shards)
                .map(|_| {
                    RwLock::new(Shard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            capacity_per_shard: capacity_per_shard.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_index(&self, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Clone of the cached value, counting a hit or miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = self.shards[self.shard_index(key)]
            .read()
            .unwrap_or_else(|e| e.into_inner());
        match shard.map.get(key) {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or replace) a value, evicting the shard's oldest entry if
    /// it is full.
    pub fn insert(&self, key: K, value: V) {
        let mut shard = self.shards[self.shard_index(&key)]
            .write()
            .unwrap_or_else(|e| e.into_inner());
        if shard.map.insert(key.clone(), value).is_some() {
            return; // replaced in place; key already tracked in `order`
        }
        shard.order.push_back(key);
        if shard.map.len() > self.capacity_per_shard {
            if let Some(oldest) = shard.order.pop_front() {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (counters keep accumulating).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.write().unwrap_or_else(|e| e.into_inner());
            shard.map.clear();
            shard.order.clear();
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn hit_and_miss_counters() {
        let cache: ShardedCache<String, u32> = ShardedCache::new(4, 16);
        assert_eq!(cache.get(&"a".to_string()), None);
        cache.insert("a".to_string(), 1);
        assert_eq!(cache.get(&"a".to_string()), Some(1));
        assert_eq!(cache.get(&"a".to_string()), Some(1));
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn replacement_does_not_grow_or_evict() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(1, 2);
        cache.insert(1, 10);
        cache.insert(1, 11);
        cache.insert(1, 12);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&1), Some(12));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        // Single shard of 2: inserting a third key evicts the oldest.
        let cache: ShardedCache<u32, u32> = ShardedCache::new(1, 2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(3, 30);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1), None, "oldest key should be gone");
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new(8, 16);
        for k in 0..64 {
            cache.insert(k, k);
        }
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_mixed_load_is_consistent() {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new(8, 1024));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..500u64 {
                        let k = t * 1000 + i;
                        cache.insert(k, k * 2);
                        assert_eq!(cache.get(&k), Some(k * 2));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 8 * 500);
        let stats = cache.stats();
        assert_eq!(stats.hits, 8 * 500);
        assert_eq!(stats.evictions, 0);
    }
}
