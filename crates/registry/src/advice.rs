//! The advice engine: the `servet-autotune` consumers behind a uniform
//! query type, memoized per `(profile digest, query)`.
//!
//! Profiles are immutable once stored (they are content-addressed), so an
//! advice answer never goes stale — a perfect memoization target. The
//! query and outcome types are serde structs shared verbatim between the
//! wire protocol, the `servet query advise` client, and the in-process
//! `servet advise --json` path, so every consumer sees byte-identical
//! answers.

use crate::cache::{CacheStats, ShardedCache};
use serde::{Deserialize, Serialize};
use servet_autotune::collectives::{select_broadcast, BcastPrediction};
use servet_autotune::concurrency::{advise_memory_threads, ConcurrencyAdvice};
use servet_autotune::padding::{advise_padding, PaddingAdvice};
use servet_autotune::tiling::{select_tile, TileChoice};
use servet_core::profile::MachineProfile;

fn default_tolerance() -> f64 {
    0.05
}
fn default_level() -> u8 {
    1
}
fn default_elem_size() -> usize {
    8
}
fn default_matrices() -> usize {
    3
}
fn default_occupancy() -> f64 {
    0.75
}
fn default_bytes() -> usize {
    32 * 1024
}

/// One advice request against a stored profile. Field defaults mirror the
/// long-standing `servet advise` CLI defaults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum AdviceQuery {
    /// How many threads should touch memory at once (§V, memory-bound
    /// regions)?
    Threads {
        /// Accept an aggregate within this fraction of the best.
        #[serde(default = "default_tolerance")]
        tolerance: f64,
    },
    /// Tile-size selection for a blocked matmul.
    Tile {
        /// Cache level the tile targets (1-based).
        #[serde(default = "default_level")]
        level: u8,
        /// Bytes per matrix element.
        #[serde(default = "default_elem_size")]
        elem_size: usize,
        /// Concurrently resident tiles.
        #[serde(default = "default_matrices")]
        matrices: usize,
        /// Fraction of the cache the tiles may fill.
        #[serde(default = "default_occupancy")]
        occupancy: f64,
    },
    /// Broadcast-algorithm ranking.
    Bcast {
        /// Participating ranks; 0 (the default) means every measured core.
        #[serde(default)]
        ranks: usize,
        /// Message size in bytes.
        #[serde(default = "default_bytes")]
        bytes: usize,
    },
    /// Per-thread padding and alignment against false sharing.
    Padding,
}

impl AdviceQuery {
    /// Resolve profile-dependent defaults so that equivalent queries
    /// memoize to the same key: `ranks: 0` becomes the profile's core
    /// count, and rank counts are clamped to it (as the CLI always did).
    pub fn resolved(&self, profile: &MachineProfile) -> AdviceQuery {
        match *self {
            AdviceQuery::Bcast { ranks, bytes } => {
                let all = profile.total_cores.max(1);
                let ranks = if ranks == 0 { all } else { ranks.min(all) };
                AdviceQuery::Bcast { ranks, bytes }
            }
            ref other => other.clone(),
        }
    }
}

/// The answer to an [`AdviceQuery`], wrapping the `servet-autotune`
/// result types unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum AdviceOutcome {
    /// Memory-concurrency advice; `None` means no contention was measured
    /// (use every core).
    Threads {
        /// The recommendation, if the memory system saturates.
        advice: Option<ConcurrencyAdvice>,
    },
    /// The selected tile.
    Tile {
        /// Tile edge and provenance.
        choice: TileChoice,
    },
    /// All broadcast predictions, best first.
    Bcast {
        /// Ranks actually priced (after default resolution).
        ranks: usize,
        /// Message bytes priced.
        bytes: usize,
        /// Predictions sorted by predicted time.
        predictions: Vec<BcastPrediction>,
    },
    /// The padding recommendation.
    Padding {
        /// Padding, alignment and provenance.
        advice: PaddingAdvice,
    },
}

/// Compute advice directly (no memoization) — the single code path shared
/// by the CLI and the server. Errors are human-readable strings matching
/// the CLI's long-standing diagnostics.
pub fn compute_advice(
    profile: &MachineProfile,
    query: &AdviceQuery,
) -> Result<AdviceOutcome, String> {
    match query.resolved(profile) {
        AdviceQuery::Threads { tolerance } => {
            let memory = profile
                .memory
                .as_ref()
                .ok_or("profile has no memory characterization")?;
            Ok(AdviceOutcome::Threads {
                advice: advise_memory_threads(memory, tolerance),
            })
        }
        AdviceQuery::Tile {
            level,
            elem_size,
            matrices,
            occupancy,
        } => select_tile(profile, level, elem_size, matrices, occupancy)
            .map(|choice| AdviceOutcome::Tile { choice })
            .ok_or_else(|| format!("profile has no cache level {level}")),
        AdviceQuery::Bcast { ranks, bytes } => {
            if profile.communication.is_none() {
                return Err("profile has no communication characterization".to_string());
            }
            Ok(AdviceOutcome::Bcast {
                ranks,
                bytes,
                predictions: select_broadcast(profile, ranks, bytes),
            })
        }
        AdviceQuery::Padding => advise_padding(profile)
            .map(|advice| AdviceOutcome::Padding { advice })
            .ok_or_else(|| "profile has no false-sharing sweep or line-size probe".to_string()),
    }
}

/// A memoizing wrapper over [`compute_advice`], keyed by
/// `(digest, resolved query)`.
pub struct AdviceEngine {
    cache: ShardedCache<String, Result<AdviceOutcome, String>>,
}

impl Default for AdviceEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl AdviceEngine {
    /// An engine with the default cache geometry (8 shards × 512).
    pub fn new() -> Self {
        Self::with_capacity(8, 512)
    }

    /// An engine whose memo cache has `shards` shards of `per_shard`
    /// entries each.
    pub fn with_capacity(shards: usize, per_shard: usize) -> Self {
        Self {
            cache: ShardedCache::new(shards, per_shard),
        }
    }

    fn memo_key(digest: &str, query: &AdviceQuery) -> String {
        let q = serde_json::to_string(query).expect("query serializes");
        format!("{digest}:{q}")
    }

    /// Answer `query` for the profile stored under `digest`, consulting
    /// the memo cache first. The second element reports whether the
    /// answer came from the cache.
    pub fn advise(
        &self,
        digest: &str,
        profile: &MachineProfile,
        query: &AdviceQuery,
    ) -> (Result<AdviceOutcome, String>, bool) {
        let resolved = query.resolved(profile);
        let key = Self::memo_key(digest, &resolved);
        if let Some(cached) = self.cache.get(&key) {
            return (cached, true);
        }
        let _span = servet_obs::span("advice.compute");
        servet_obs::counter("advice.computed").incr();
        let outcome = compute_advice(profile, &resolved);
        self.cache.insert(key, outcome.clone());
        (outcome, false)
    }

    /// Memo-cache counters (the serving tests assert on the hit count).
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::profile_digest;
    use servet_core::suite::{run_full_suite, SuiteConfig};
    use servet_core::SimPlatform;

    fn measured_profile() -> MachineProfile {
        let mut platform = SimPlatform::tiny_cluster().with_noise(0.003);
        run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024)).profile
    }

    #[test]
    fn advice_matches_direct_calls() {
        let profile = measured_profile();
        let tile = compute_advice(
            &profile,
            &AdviceQuery::Tile {
                level: 2,
                elem_size: 8,
                matrices: 3,
                occupancy: 0.75,
            },
        )
        .unwrap();
        let direct = select_tile(&profile, 2, 8, 3, 0.75).unwrap();
        assert_eq!(tile, AdviceOutcome::Tile { choice: direct });

        let bcast = compute_advice(
            &profile,
            &AdviceQuery::Bcast {
                ranks: 0,
                bytes: 8192,
            },
        )
        .unwrap();
        match bcast {
            AdviceOutcome::Bcast {
                ranks, predictions, ..
            } => {
                assert_eq!(ranks, profile.total_cores);
                assert_eq!(predictions, select_broadcast(&profile, ranks, 8192));
            }
            other => panic!("wrong outcome {other:?}"),
        }
    }

    #[test]
    fn missing_sections_are_clear_errors() {
        let mut profile = measured_profile();
        profile.memory = None;
        profile.communication = None;
        let err = compute_advice(&profile, &AdviceQuery::Threads { tolerance: 0.05 }).unwrap_err();
        assert!(err.contains("memory"), "{err}");
        let err = compute_advice(
            &profile,
            &AdviceQuery::Bcast {
                ranks: 4,
                bytes: 1024,
            },
        )
        .unwrap_err();
        assert!(err.contains("communication"), "{err}");
        let err = compute_advice(
            &profile,
            &AdviceQuery::Tile {
                level: 9,
                elem_size: 8,
                matrices: 3,
                occupancy: 0.75,
            },
        )
        .unwrap_err();
        assert!(err.contains("cache level 9"), "{err}");
    }

    #[test]
    fn memoization_hits_on_repeat_and_on_equivalent_queries() {
        let profile = measured_profile();
        let digest = profile_digest(&profile);
        let engine = AdviceEngine::new();
        let query = AdviceQuery::Bcast {
            ranks: 0,
            bytes: 8192,
        };

        let (first, cached) = engine.advise(&digest, &profile, &query);
        assert!(!cached);
        assert_eq!(engine.stats().hits, 0);

        let (second, cached) = engine.advise(&digest, &profile, &query);
        assert!(cached, "second identical query must be memoized");
        assert_eq!(first, second);
        assert_eq!(engine.stats().hits, 1);

        // ranks: 0 resolves to total_cores — the explicit form hits too.
        let explicit = AdviceQuery::Bcast {
            ranks: profile.total_cores,
            bytes: 8192,
        };
        let (third, cached) = engine.advise(&digest, &profile, &explicit);
        assert!(
            cached,
            "resolved-equivalent query must share the memo entry"
        );
        assert_eq!(first, third);

        // A different digest must not share entries.
        let (_, cached) = engine.advise("other-digest", &profile, &query);
        assert!(!cached);
    }

    #[test]
    fn padding_advice_flows_through_the_engine() {
        let mut platform = SimPlatform::tiny_cluster().with_noise(0.003);
        let profile = run_full_suite(
            &mut platform,
            &SuiteConfig {
                run_false_sharing: true,
                ..SuiteConfig::small(256 * 1024)
            },
        )
        .profile;
        let outcome = compute_advice(&profile, &AdviceQuery::Padding).unwrap();
        match outcome {
            AdviceOutcome::Padding { advice } => {
                assert!(advice.measured);
                assert!(advice.pad_bytes >= 64, "{advice:?}");
            }
            other => panic!("wrong outcome {other:?}"),
        }
    }

    #[test]
    fn padding_without_measurements_is_a_clear_error() {
        let mut profile = measured_profile();
        profile.false_sharing = None;
        profile.micro = None;
        let err = compute_advice(&profile, &AdviceQuery::Padding).unwrap_err();
        assert!(err.contains("false-sharing"), "{err}");
    }

    #[test]
    fn errors_are_memoized_too() {
        let mut profile = measured_profile();
        profile.memory = None;
        let digest = profile_digest(&profile);
        let engine = AdviceEngine::new();
        let query = AdviceQuery::Threads { tolerance: 0.05 };
        let (first, cached) = engine.advise(&digest, &profile, &query);
        assert!(first.is_err() && !cached);
        let (second, cached) = engine.advise(&digest, &profile, &query);
        assert!(second.is_err() && cached);
    }
}
