//! Readiness polling for the event-driven TCP front end — std-only, in
//! the same spirit as the dependency-free SHA-256 in [`crate::digest`].
//!
//! A [`Poller`] watches a set of file descriptors for read/write
//! readiness. Three backends exist, best-first:
//!
//! * **epoll** (Linux on x86_64/aarch64): `epoll_create1` /
//!   `epoll_ctl` / `epoll_pwait` issued as raw syscalls through thin
//!   inline-asm wrappers in [`sys`] — no `libc` crate, no FFI. This is
//!   the O(ready) backend that lets one thread multiplex 10k+ sockets.
//! * **poll** (Linux on x86_64/aarch64): the portable `poll(2)` shape
//!   (via the `ppoll` syscall), O(registered) per wait. Selected when
//!   `epoll_create1` fails, or explicitly for tests.
//! * **scan** (everything else): a pure-std degraded mode that reports
//!   every registered descriptor as ready after a short sleep. Callers
//!   must treat readiness as a hint (sockets are nonblocking and
//!   `WouldBlock` is normal), which makes this trivially correct —
//!   just not efficient. It exists so the crate still builds and works
//!   on targets without the syscall wrappers.
//!
//! Readiness is **level-triggered** on every backend: an event fires as
//! long as the condition holds, so the event loop may do partial reads
//! and writes without tracking edge state.

use std::io;
use std::time::Duration;

#[cfg(unix)]
use std::os::fd::RawFd;
#[cfg(not(unix))]
type RawFd = i32;

/// What to watch a descriptor for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Self = Self {
        readable: true,
        writable: false,
    };
    /// Read + write interest — a connection with buffered output.
    pub const READ_WRITE: Self = Self {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// Data can be read (includes peer half-close / EOF).
    pub readable: bool,
    /// Data can be written.
    pub writable: bool,
    /// The peer hung up or the socket errored; the owner should read
    /// to EOF and close.
    pub hangup: bool,
}

/// Which polling mechanism a [`Poller`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` via raw syscalls.
    Epoll,
    /// Linux `poll(2)` (the `ppoll` syscall) — the portable fallback.
    Poll,
    /// Pure-std spurious-readiness scanning — the degraded fallback.
    Scan,
}

/// A level-triggered readiness poller over registered descriptors.
pub struct Poller {
    imp: Impl,
}

enum Impl {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Epoll(epoll::Epoll),
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Poll(pollfds::PollFds),
    Scan(scan::Scan),
}

impl Poller {
    /// The best poller this platform offers: epoll where the syscall
    /// wrappers exist, the scan fallback elsewhere. Falls back one rung
    /// if the preferred backend cannot be constructed.
    pub fn new() -> io::Result<Self> {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            match epoll::Epoll::new() {
                Ok(e) => Ok(Self {
                    imp: Impl::Epoll(e),
                }),
                Err(_) => Self::with_backend(Backend::Poll),
            }
        }
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        {
            Self::with_backend(Backend::Scan)
        }
    }

    /// A poller on a specific backend (tests compare backends; callers
    /// on exotic targets may force `Scan`).
    pub fn with_backend(backend: Backend) -> io::Result<Self> {
        match backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Epoll => Ok(Self {
                imp: Impl::Epoll(epoll::Epoll::new()?),
            }),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Poll => Ok(Self {
                imp: Impl::Poll(pollfds::PollFds::new()),
            }),
            Backend::Scan => Ok(Self {
                imp: Impl::Scan(scan::Scan::new()),
            }),
            #[cfg(not(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            )))]
            _ => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no syscall backend on this target; use Backend::Scan",
            )),
        }
    }

    /// The backend actually in use.
    pub fn backend(&self) -> Backend {
        match &self.imp {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Impl::Epoll(_) => Backend::Epoll,
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Impl::Poll(_) => Backend::Poll,
            Impl::Scan(_) => Backend::Scan,
        }
    }

    /// Start watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Impl::Epoll(e) => e.register(fd, token, interest),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Impl::Poll(p) => p.register(fd, token, interest),
            Impl::Scan(s) => s.register(fd, token, interest),
        }
    }

    /// Change what `fd` is watched for.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Impl::Epoll(e) => e.modify(fd, token, interest),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Impl::Poll(p) => p.modify(fd, token, interest),
            Impl::Scan(s) => s.modify(fd, token, interest),
        }
    }

    /// Stop watching `fd`.
    pub fn deregister(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Impl::Epoll(e) => e.deregister(fd),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Impl::Poll(p) => p.deregister(fd, token),
            Impl::Scan(s) => s.deregister(fd, token),
        }
    }

    /// Block until at least one descriptor is ready or `timeout`
    /// elapses (`None` = wait forever); ready events are appended to
    /// `events` (cleared first). Returns the number of events.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        match &mut self.imp {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Impl::Epoll(e) => e.wait(events, timeout),
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Impl::Poll(p) => p.wait(events, timeout),
            Impl::Scan(s) => s.wait(events, timeout),
        }
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend())
            .finish()
    }
}

/// Thin raw-syscall wrappers (Linux x86_64/aarch64 only) — the whole
/// "libc" this crate needs, in ~60 lines of inline asm.
///
/// Every wrapper returns `io::Result`; negative raw returns are mapped
/// through `io::Error::from_raw_os_error(-ret)` so `ErrorKind` matching
/// works exactly as with std I/O.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub mod sys {
    use std::io;
    use std::os::fd::RawFd;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: usize = 3;
        pub const LISTEN: usize = 50;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
        pub const PPOLL: usize = 271;
        pub const PRLIMIT64: usize = 302;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const CLOSE: usize = 57;
        pub const LISTEN: usize = 201;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EPOLL_CREATE1: usize = 20;
        pub const PPOLL: usize = 73;
        pub const PRLIMIT64: usize = 261;
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a as isize => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
        ret
    }

    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// `epoll_event` with the kernel's x86_64 packing (4-byte aligned,
    /// 12 bytes); other architectures use the natural 16-byte layout.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        /// `EPOLL*` readiness bits.
        pub events: u32,
        /// Caller-owned token returned verbatim.
        pub data: u64,
    }

    /// `EPOLLIN`.
    pub const EPOLLIN: u32 = 0x001;
    /// `EPOLLOUT`.
    pub const EPOLLOUT: u32 = 0x004;
    /// `EPOLLERR` (always reported, no need to register).
    pub const EPOLLERR: u32 = 0x008;
    /// `EPOLLHUP` (always reported, no need to register).
    pub const EPOLLHUP: u32 = 0x010;
    /// `EPOLLRDHUP` — peer shut down its writing half.
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// `EPOLL_CTL_ADD`.
    pub const EPOLL_CTL_ADD: i32 = 1;
    /// `EPOLL_CTL_DEL`.
    pub const EPOLL_CTL_DEL: i32 = 2;
    /// `EPOLL_CTL_MOD`.
    pub const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: usize = 0x80000;

    /// `epoll_create1(EPOLL_CLOEXEC)` — a new epoll instance.
    pub fn epoll_create1() -> io::Result<RawFd> {
        check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })
            .map(|fd| fd as RawFd)
    }

    /// `epoll_ctl(epfd, op, fd, event)`.
    pub fn epoll_ctl(
        epfd: RawFd,
        op: i32,
        fd: RawFd,
        event: Option<&mut EpollEvent>,
    ) -> io::Result<()> {
        let ptr = event.map_or(0usize, |e| e as *mut EpollEvent as usize);
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                epfd as usize,
                op as usize,
                fd as usize,
                ptr,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    /// `epoll_pwait(epfd, events, maxevents, timeout_ms, NULL)`;
    /// `timeout_ms < 0` blocks forever. Retries `EINTR` internally.
    pub fn epoll_wait(
        epfd: RawFd,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        loop {
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    epfd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as isize as usize,
                    0, // sigmask = NULL
                    8, // sigsetsize
                )
            };
            match check(ret) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                other => return other,
            }
        }
    }

    /// One `poll(2)` descriptor entry.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        /// The descriptor (negative = ignore this slot).
        pub fd: i32,
        /// Requested `POLL*` bits.
        pub events: i16,
        /// Returned readiness bits.
        pub revents: i16,
    }

    /// `POLLIN`.
    pub const POLLIN: i16 = 0x001;
    /// `POLLOUT`.
    pub const POLLOUT: i16 = 0x004;
    /// `POLLERR`.
    pub const POLLERR: i16 = 0x008;
    /// `POLLHUP`.
    pub const POLLHUP: i16 = 0x010;
    /// `POLLRDHUP` (Linux).
    pub const POLLRDHUP: i16 = 0x2000;

    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }

    /// `ppoll(fds, n, timeout, NULL)` — the portable `poll(2)` shape;
    /// `timeout = None` blocks forever. Retries `EINTR` internally.
    pub fn poll(fds: &mut [PollFd], timeout: Option<std::time::Duration>) -> io::Result<usize> {
        let ts = timeout.map(|t| Timespec {
            sec: t.as_secs().min(i64::MAX as u64) as i64,
            nsec: t.subsec_nanos() as i64,
        });
        loop {
            let ts_ptr = ts
                .as_ref()
                .map_or(0usize, |t| t as *const Timespec as usize);
            let ret = unsafe {
                syscall6(
                    nr::PPOLL,
                    fds.as_mut_ptr() as usize,
                    fds.len(),
                    ts_ptr,
                    0, // sigmask = NULL
                    8, // sigsetsize
                    0,
                )
            };
            match check(ret) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                other => return other,
            }
        }
    }

    /// `close(fd)`.
    pub fn close(fd: RawFd) {
        let _ = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
    }

    /// Re-`listen(fd, backlog)` on an already listening socket to deepen
    /// its kernel accept backlog (std's `TcpListener::bind` hardcodes
    /// 128, which a 10k-connection storm overruns).
    pub fn listen(fd: RawFd, backlog: i32) -> io::Result<()> {
        check(unsafe { syscall6(nr::LISTEN, fd as usize, backlog as usize, 0, 0, 0, 0) })
            .map(|_| ())
    }

    #[repr(C)]
    struct Rlimit64 {
        cur: u64,
        max: u64,
    }

    const RLIMIT_NOFILE: usize = 7;

    /// Raise the soft `RLIMIT_NOFILE` to the hard limit (via
    /// `prlimit64`) and return the resulting soft limit. Thousands of
    /// multiplexed sockets need it; callers treat failure as "keep the
    /// current limit".
    pub fn raise_nofile_limit() -> io::Result<u64> {
        let mut old = Rlimit64 { cur: 0, max: 0 };
        check(unsafe {
            syscall6(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                0,
                &mut old as *mut Rlimit64 as usize,
                0,
                0,
            )
        })?;
        if old.cur >= old.max {
            return Ok(old.cur);
        }
        let new = Rlimit64 {
            cur: old.max,
            max: old.max,
        };
        check(unsafe {
            syscall6(
                nr::PRLIMIT64,
                0,
                RLIMIT_NOFILE,
                &new as *const Rlimit64 as usize,
                0,
                0,
                0,
            )
        })?;
        Ok(new.cur)
    }
}

/// Best-effort soft fd-limit raise; returns the (possibly unchanged)
/// soft limit, or `None` where unknowable. A no-op shim off Linux.
pub fn raise_nofile_limit() -> Option<u64> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        sys::raise_nofile_limit().ok()
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        None
    }
}

/// Deepen a listener's kernel accept backlog, best effort (no-op off
/// Linux).
pub fn deepen_listen_backlog(listener: &std::net::TcpListener, backlog: i32) {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        use std::os::fd::AsRawFd;
        let _ = sys::listen(listener.as_raw_fd(), backlog);
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        let _ = (listener, backlog);
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod epoll {
    use super::{sys, Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    pub struct Epoll {
        epfd: RawFd,
        buf: Vec<sys::EpollEvent>,
    }

    fn bits(interest: Interest) -> u32 {
        let mut e = sys::EPOLLRDHUP;
        if interest.readable {
            e |= sys::EPOLLIN;
        }
        if interest.writable {
            e |= sys::EPOLLOUT;
        }
        e
    }

    impl Epoll {
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                epfd: sys::epoll_create1()?,
                buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events: bits(interest),
                data: token,
            };
            sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, Some(&mut ev))
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events: bits(interest),
                data: token,
            };
            sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_MOD, fd, Some(&mut ev))
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let timeout_ms = match timeout {
                None => -1,
                Some(t) => t.as_millis().min(i32::MAX as u128) as i32,
            };
            let n = sys::epoll_wait(self.epfd, &mut self.buf, timeout_ms)?;
            for raw in &self.buf[..n] {
                let got = raw.events;
                events.push(Event {
                    token: raw.data,
                    readable: got & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: got & sys::EPOLLOUT != 0,
                    hangup: got & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            sys::close(self.epfd);
        }
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod pollfds {
    use super::{sys, Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    /// The `poll(2)` fallback: keeps the registered set in a flat array
    /// and rebuilds `revents` each wait. O(n) per wait — fine for
    /// hundreds of sockets, and always available.
    pub struct PollFds {
        fds: Vec<sys::PollFd>,
        tokens: Vec<u64>,
    }

    fn bits(interest: Interest) -> i16 {
        let mut e = sys::POLLRDHUP;
        if interest.readable {
            e |= sys::POLLIN;
        }
        if interest.writable {
            e |= sys::POLLOUT;
        }
        e
    }

    impl PollFds {
        pub fn new() -> Self {
            Self {
                fds: Vec::new(),
                tokens: Vec::new(),
            }
        }

        fn position(&self, fd: RawFd, token: u64) -> Option<usize> {
            self.fds
                .iter()
                .zip(&self.tokens)
                .position(|(p, &t)| p.fd == fd && t == token)
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.fds.push(sys::PollFd {
                fd,
                events: bits(interest),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            match self.position(fd, token) {
                Some(i) => {
                    self.fds[i].events = bits(interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn deregister(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
            match self.position(fd, token) {
                Some(i) => {
                    self.fds.swap_remove(i);
                    self.tokens.swap_remove(i);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            if self.fds.is_empty() {
                // Nothing registered: just honor the timeout.
                std::thread::sleep(timeout.unwrap_or(Duration::from_millis(10)));
                return Ok(0);
            }
            for p in &mut self.fds {
                p.revents = 0;
            }
            let n = sys::poll(&mut self.fds, timeout)?;
            if n > 0 {
                for (p, &token) in self.fds.iter().zip(&self.tokens) {
                    let got = p.revents;
                    if got == 0 {
                        continue;
                    }
                    events.push(Event {
                        token,
                        readable: got & (sys::POLLIN | sys::POLLRDHUP) != 0,
                        writable: got & sys::POLLOUT != 0,
                        hangup: got & (sys::POLLERR | sys::POLLHUP) != 0,
                    });
                }
            }
            Ok(events.len())
        }
    }
}

mod scan {
    use super::{Event, Interest};
    use std::io;
    use std::time::Duration;

    use super::RawFd;

    /// The degraded pure-std backend: every registered descriptor is
    /// reported ready (for its registered interest) after a short nap.
    /// Sound because sockets are nonblocking — a spurious "readable"
    /// costs one `WouldBlock` — but O(registered) wakeups per tick.
    pub struct Scan {
        entries: Vec<(RawFd, u64, Interest)>,
    }

    impl Scan {
        pub fn new() -> Self {
            Self {
                entries: Vec::new(),
            }
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.entries.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for e in &mut self.entries {
                if e.0 == fd && e.1 == token {
                    e.2 = interest;
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&mut self, fd: RawFd, token: u64) -> io::Result<()> {
            let before = self.entries.len();
            self.entries.retain(|e| !(e.0 == fd && e.1 == token));
            if self.entries.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            // Cap the nap so spurious readiness stays responsive.
            let nap = timeout
                .unwrap_or(Duration::from_millis(5))
                .min(Duration::from_millis(5));
            std::thread::sleep(nap);
            for &(_, token, interest) in &self.entries {
                events.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    hangup: false,
                });
            }
            Ok(events.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    #[cfg(unix)]
    use std::os::fd::AsRawFd;

    /// A connected loopback socket pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn backends() -> Vec<Backend> {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            vec![Backend::Epoll, Backend::Poll, Backend::Scan]
        }
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        {
            vec![Backend::Scan]
        }
    }

    #[test]
    fn readable_after_peer_writes_on_every_backend() {
        for backend in backends() {
            let (mut a, mut b) = pair();
            b.set_nonblocking(true).unwrap();
            let mut poller = Poller::with_backend(backend).unwrap();
            poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

            let mut events = Vec::new();
            // Nothing to read yet: a short wait returns empty (the scan
            // backend reports spuriously, which a read must disprove).
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            if backend != Backend::Scan {
                assert!(events.is_empty(), "{backend:?}: {events:?}");
            }

            a.write_all(b"x").unwrap();
            a.flush().unwrap();
            // Readiness must arrive (promptly).
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            let mut got = false;
            while std::time::Instant::now() < deadline && !got {
                poller
                    .wait(&mut events, Some(Duration::from_millis(50)))
                    .unwrap();
                for e in &events {
                    if e.token == 7 && e.readable {
                        let mut buf = [0u8; 8];
                        match b.read(&mut buf) {
                            Ok(n) if n > 0 => got = true,
                            Ok(_) => panic!("{backend:?}: unexpected EOF"),
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                            Err(e) => panic!("{backend:?}: {e}"),
                        }
                    }
                }
            }
            assert!(got, "{backend:?}: readable event never delivered");
        }
    }

    #[test]
    fn write_interest_fires_and_can_be_dropped() {
        for backend in backends() {
            let (_a, b) = pair();
            b.set_nonblocking(true).unwrap();
            let mut poller = Poller::with_backend(backend).unwrap();
            poller
                .register(b.as_raw_fd(), 3, Interest::READ_WRITE)
                .unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 3 && e.writable),
                "{backend:?}: an idle socket must be writable: {events:?}"
            );
            // Back to read-only: no more writable events (except Scan's
            // by-design spurious ones).
            poller.modify(b.as_raw_fd(), 3, Interest::READ).unwrap();
            if backend != Backend::Scan {
                poller
                    .wait(&mut events, Some(Duration::from_millis(50)))
                    .unwrap();
                assert!(
                    !events.iter().any(|e| e.token == 3 && e.writable),
                    "{backend:?}: {events:?}"
                );
            }
            poller.deregister(b.as_raw_fd(), 3).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: {events:?}");
        }
    }

    #[test]
    fn peer_close_reports_readable_eof() {
        for backend in backends() {
            let (a, mut b) = pair();
            b.set_nonblocking(true).unwrap();
            let mut poller = Poller::with_backend(backend).unwrap();
            poller.register(b.as_raw_fd(), 9, Interest::READ).unwrap();
            drop(a);
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            let mut saw_eof = false;
            let mut events = Vec::new();
            while std::time::Instant::now() < deadline && !saw_eof {
                poller
                    .wait(&mut events, Some(Duration::from_millis(50)))
                    .unwrap();
                for e in &events {
                    if e.token == 9 && (e.readable || e.hangup) {
                        let mut buf = [0u8; 8];
                        match b.read(&mut buf) {
                            Ok(0) => saw_eof = true,
                            Ok(_) => {}
                            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {}
                            Err(_) => saw_eof = true, // reset also proves the close
                        }
                    }
                }
            }
            assert!(saw_eof, "{backend:?}: close never surfaced");
        }
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn default_backend_is_epoll_on_linux() {
        assert_eq!(Poller::new().unwrap().backend(), Backend::Epoll);
    }

    #[test]
    fn nofile_raise_reports_a_limit() {
        // Must not error out on Linux; elsewhere it's a None no-op.
        let limit = raise_nofile_limit();
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        assert!(limit.unwrap() >= 1024);
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        assert!(limit.is_none());
    }
}
