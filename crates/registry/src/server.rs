//! The threaded TCP front end: one OS thread per connection, speaking
//! the newline-delimited JSON protocol of [`crate::protocol`].
//!
//! Connections carry any number of request lines; each gets exactly one
//! response line. A per-connection read timeout drops idle or stalled
//! clients, and [`ServerHandle::shutdown`] stops accepting, closes every
//! live connection, and joins all threads before returning — so tests
//! (and `servet serve` under a signal) always exit cleanly.

use crate::protocol::{read_message, write_message, Request, Response};
use crate::registry::Registry;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection read timeout; a client silent for this long is
    /// disconnected.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// A running server; dropping it shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl ServerHandle {
    /// The address actually bound (resolves `:0` to the chosen port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close live connections, and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Block until the server stops on its own (it never does unless the
    /// process is killed) — the body of `servet serve`.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock every worker stuck in a read.
        if let Ok(conns) = self.conns.lock() {
            for conn in conns.iter() {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        // Unblock the accept loop with a wake-up connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Bind `addr` and serve `registry` until [`ServerHandle::shutdown`].
pub fn serve(
    registry: Arc<Registry>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("servet-accept".into())
            .spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    servet_obs::counter("registry.server.connections").incr();
                    let _ = stream.set_read_timeout(Some(config.read_timeout));
                    let _ = stream.set_nodelay(true);
                    if let Ok(clone) = stream.try_clone() {
                        if let Ok(mut conns) = conns.lock() {
                            conns.push(clone);
                        }
                    }
                    let registry = Arc::clone(&registry);
                    let shutdown = Arc::clone(&shutdown);
                    let worker = std::thread::Builder::new()
                        .name("servet-conn".into())
                        .spawn(move || serve_connection(&registry, stream, &shutdown));
                    if let Ok(worker) = worker {
                        workers.push(worker);
                    }
                    // Reap finished workers so long servers don't
                    // accumulate handles.
                    workers.retain(|w| !w.is_finished());
                }
                for worker in workers {
                    let _ = worker.join();
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        conns,
    })
}

/// Serve one connection: a loop of read-line → dispatch → write-line.
fn serve_connection(registry: &Registry, stream: TcpStream, shutdown: &AtomicBool) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    while !shutdown.load(Ordering::SeqCst) {
        match read_message::<Request>(&mut reader) {
            Ok(Some(request)) => {
                let response = registry.handle(request);
                if write_message(&mut writer, &response).is_err() {
                    break;
                }
            }
            Ok(None) => break, // client hung up
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Malformed line: report it and keep the connection.
                let response = Response::Error {
                    error: format!("bad request: {e}"),
                };
                if write_message(&mut writer, &response).is_err() {
                    break;
                }
            }
            // Timeouts surface as WouldBlock (Linux) or TimedOut; the
            // per-connection policy is to drop stalled clients.
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RegistryClient;
    use servet_core::profile::MachineProfile;
    use servet_core::suite::{run_full_suite, SuiteConfig};
    use servet_core::SimPlatform;

    fn measured_profile() -> MachineProfile {
        let mut platform = SimPlatform::tiny_cluster().with_noise(0.003);
        run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024)).profile
    }

    fn temp_registry(tag: &str) -> Arc<Registry> {
        let dir = std::env::temp_dir().join(format!("servet-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(Registry::open(dir).unwrap())
    }

    #[test]
    fn round_trip_over_loopback() {
        let registry = temp_registry("loopback");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_secs(5),
            },
        )
        .unwrap();
        let profile = measured_profile();

        let mut client = RegistryClient::connect(server.addr()).unwrap();
        let digest = client.put(&profile, Some("tiny")).unwrap();
        match client.get("tiny").unwrap() {
            Response::Profile {
                digest: d,
                profile: p,
            } => {
                assert_eq!(d, digest);
                assert_eq!(*p, profile, "profile must round-trip the wire exactly");
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn malformed_line_gets_error_and_connection_survives() {
        use std::io::Write as _;
        let registry = temp_registry("malformed");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_secs(5),
            },
        )
        .unwrap();

        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"{definitely not json\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let resp: Response = read_message(&mut reader).unwrap().unwrap();
        assert!(matches!(resp, Response::Error { .. }));

        // Same connection still works afterwards.
        write_message(&mut stream, &Request::List).unwrap();
        let resp: Response = read_message(&mut reader).unwrap().unwrap();
        assert!(matches!(resp, Response::Listing { .. }));
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_dropped_after_timeout() {
        let registry = temp_registry("timeout");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_millis(100),
            },
        )
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream);
        // Say nothing: the server should hang up on us.
        let got: io::Result<Option<Response>> = read_message(&mut reader);
        assert!(matches!(got, Ok(None)), "expected EOF, got {got:?}");
        server.shutdown();
    }

    #[test]
    fn shutdown_closes_live_connections_promptly() {
        let registry = temp_registry("shutdown");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_secs(60),
            },
        )
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream);
        let start = std::time::Instant::now();
        server.shutdown();
        // Despite the 60 s read timeout, our connection dies immediately.
        let got: io::Result<Option<Response>> = read_message(&mut reader);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "shutdown took {:?}",
            start.elapsed()
        );
        // EOF or a reset error are both acceptable.
        assert!(!matches!(got, Ok(Some(_))), "unexpected message {got:?}");
    }
}
