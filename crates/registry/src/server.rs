//! The TCP front end: a fixed-size worker pool over a bounded accept
//! queue, speaking the newline-delimited JSON protocol of
//! [`crate::protocol`].
//!
//! The acceptor thread owns the listener and hands each accepted socket
//! to one of [`ServerConfig::workers`] long-lived worker threads through
//! a bounded channel of [`ServerConfig::backlog`] slots. When every
//! worker is busy and the queue is full, new connections receive a
//! one-line `busy:` rejection ([`crate::protocol::busy_response`]) and
//! are closed instead of spawning unbounded threads — the server never
//! runs more than `workers + 1` threads regardless of client count, and
//! a turned-away client can tell "overloaded, retry" apart from a
//! crashed server.
//! Queue depth, its high-water mark, and the rejected-connection count
//! are recorded on [`Registry::accept_counters`] and exported through
//! the `stats` operation.
//!
//! Connections carry any number of request lines; each gets exactly one
//! response line. A per-connection read timeout drops idle or stalled
//! clients, and [`ServerHandle::shutdown`] stops accepting, closes every
//! live connection (queued ones included), and joins all threads before
//! returning — so tests (and `servet serve` under a signal) always exit
//! cleanly.

use crate::protocol::{busy_response, read_message, write_message, Request, Response};
use crate::registry::Registry;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Live connections by id, so [`ServerHandle::shutdown`] can close them
/// and a worker can *deregister* its connection once served. The worker
/// explicitly `shutdown()`s the socket rather than relying on drop: a
/// registered clone would otherwise keep the kernel socket open and the
/// client would never see EOF.
type ConnMap = Mutex<HashMap<u64, TcpStream>>;

/// Tunables for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection read timeout; a client silent for this long is
    /// disconnected.
    pub read_timeout: Duration,
    /// Worker threads serving connections. The server never runs more
    /// serving threads than this (plus the acceptor), no matter how many
    /// clients connect.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker. When all
    /// workers are busy and this many connections are already queued,
    /// further arrivals are sent a one-line `busy:` rejection
    /// ([`crate::protocol::busy_response`]), closed, and counted as
    /// rejected. `0` means rendezvous: a connection is admitted only if
    /// a worker is blocked waiting for one — useful in tests that need
    /// rejection to be deterministic.
    pub backlog: usize,
    /// Prefix for server thread names (`<prefix>-accept`,
    /// `<prefix>-worker-N`), useful for telling pools apart in
    /// `/proc/<pid>/task` or a debugger.
    pub thread_prefix: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(30),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(2, 8),
            backlog: 128,
            thread_prefix: "servet".into(),
        }
    }
}

/// A running server; dropping it shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<ConnMap>,
}

impl ServerHandle {
    /// The address actually bound (resolves `:0` to the chosen port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close live connections, and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Block until the server stops on its own (it never does unless the
    /// process is killed) — the body of `servet serve`.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock every worker stuck in a read.
        if let Ok(conns) = self.conns.lock() {
            for conn in conns.values() {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        // Unblock the accept loop with a wake-up connection. The acceptor
        // then drops the queue sender, which drains the workers.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Bind `addr` and serve `registry` until [`ServerHandle::shutdown`].
///
/// Spawns `config.workers` worker threads and one acceptor; accepted
/// sockets flow to workers through a channel bounded by
/// `config.backlog`.
pub fn serve(
    registry: Arc<Registry>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let conns: Arc<ConnMap> = Arc::new(Mutex::new(HashMap::new()));

    let (tx, rx) = mpsc::sync_channel::<(u64, TcpStream)>(config.backlog);
    let rx = Arc::new(Mutex::new(rx));

    let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let registry = Arc::clone(&registry);
        let shutdown = Arc::clone(&shutdown);
        let rx = Arc::clone(&rx);
        let conns = Arc::clone(&conns);
        let worker = std::thread::Builder::new()
            .name(format!("{}-worker-{i}", config.thread_prefix))
            .spawn(move || loop {
                // Hold the receiver lock only for the blocking recv; the
                // connection is served with the lock released so the
                // other workers keep draining the queue.
                let received = match rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(_) => break,
                };
                let Ok((id, stream)) = received else { break };
                registry.accept_counters().dequeued();
                if !shutdown.load(Ordering::SeqCst) {
                    serve_connection(&registry, &stream, &shutdown);
                }
                // Half the socket lives in the `conns` map, so dropping
                // our handle would not close it — shut it down explicitly
                // (sends FIN / EOF to the client) and deregister it.
                let _ = stream.shutdown(Shutdown::Both);
                if let Ok(mut conns) = conns.lock() {
                    conns.remove(&id);
                }
            })?;
        workers.push(worker);
    }

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name(format!("{}-accept", config.thread_prefix))
            .spawn(move || {
                let mut next_id: u64 = 0;
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    servet_obs::counter("registry.server.connections").incr();
                    let _ = stream.set_read_timeout(Some(config.read_timeout));
                    let _ = stream.set_nodelay(true);
                    let id = next_id;
                    next_id += 1;
                    // Register the connection *before* handing it to the
                    // pool so shutdown can always see (and close) it.
                    if let (Ok(clone), Ok(mut conns)) = (stream.try_clone(), conns.lock()) {
                        conns.insert(id, clone);
                    }
                    let counters = registry.accept_counters();
                    counters.enqueued();
                    match tx.try_send((id, stream)) {
                        Ok(()) => counters.committed(),
                        Err(mpsc::TrySendError::Full((id, mut stream))) => {
                            counters.rejected();
                            servet_obs::counter("registry.server.rejected").incr();
                            // Tell the client *why* before hanging up, so it
                            // sees a distinct "server busy" rejection rather
                            // than an opaque EOF. Best effort under a short
                            // write timeout — a rejection path must never
                            // stall the acceptor behind a slow client.
                            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                            let _ = write_message(&mut stream, &busy_response());
                            let _ = stream.shutdown(Shutdown::Both);
                            if let Ok(mut conns) = conns.lock() {
                                conns.remove(&id);
                            }
                        }
                        Err(mpsc::TrySendError::Disconnected((id, stream))) => {
                            let _ = stream.shutdown(Shutdown::Both);
                            if let Ok(mut conns) = conns.lock() {
                                conns.remove(&id);
                            }
                            break;
                        }
                    }
                }
                // Dropping the sender wakes every worker out of recv once
                // the queue is drained; join them so shutdown is total.
                drop(tx);
                for worker in workers {
                    let _ = worker.join();
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        conns,
    })
}

/// Serve one connection: a loop of read-line → dispatch → write-line.
/// The caller keeps ownership of the socket so it can `shutdown()` it
/// afterwards regardless of how the loop ends.
fn serve_connection(registry: &Registry, stream: &TcpStream, shutdown: &AtomicBool) {
    let (Ok(read_half), Ok(write_half)) = (stream.try_clone(), stream.try_clone()) else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(write_half);
    while !shutdown.load(Ordering::SeqCst) {
        match read_message::<Request>(&mut reader) {
            Ok(Some(request)) => {
                let response = registry.handle(request);
                if write_message(&mut writer, &response).is_err() {
                    break;
                }
            }
            Ok(None) => break, // client hung up
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Malformed line: report it and keep the connection.
                let response = Response::Error {
                    error: format!("bad request: {e}"),
                };
                if write_message(&mut writer, &response).is_err() {
                    break;
                }
            }
            // Timeouts surface as WouldBlock (Linux) or TimedOut; the
            // per-connection policy is to drop stalled clients.
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RegistryClient;
    use servet_core::profile::MachineProfile;
    use servet_core::suite::{run_full_suite, SuiteConfig};
    use servet_core::SimPlatform;

    fn measured_profile() -> MachineProfile {
        let mut platform = SimPlatform::tiny_cluster().with_noise(0.003);
        run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024)).profile
    }

    fn temp_registry(tag: &str) -> Arc<Registry> {
        let dir = std::env::temp_dir().join(format!("servet-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(Registry::open(dir).unwrap())
    }

    /// Poll `cond` until it holds or a 30 s deadline passes.
    fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while !cond() {
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for: {what}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Count live threads of this process whose name starts with
    /// `prefix` (names are truncated to 15 bytes by the kernel, so keep
    /// prefixes short).
    #[cfg(target_os = "linux")]
    fn threads_with_prefix(prefix: &str) -> usize {
        let mut count = 0;
        if let Ok(entries) = std::fs::read_dir("/proc/self/task") {
            for entry in entries.flatten() {
                if let Ok(name) = std::fs::read_to_string(entry.path().join("comm")) {
                    if name.trim_end().starts_with(prefix) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    #[test]
    fn round_trip_over_loopback() {
        let registry = temp_registry("loopback");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_secs(5),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let profile = measured_profile();

        let mut client = RegistryClient::connect(server.addr()).unwrap();
        let digest = client.put(&profile, Some("tiny")).unwrap();
        match client.get("tiny").unwrap() {
            Response::Profile {
                digest: d,
                profile: p,
            } => {
                assert_eq!(d, digest);
                assert_eq!(*p, profile, "profile must round-trip the wire exactly");
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn malformed_line_gets_error_and_connection_survives() {
        use std::io::Write as _;
        let registry = temp_registry("malformed");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_secs(5),
                ..ServerConfig::default()
            },
        )
        .unwrap();

        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"{definitely not json\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let resp: Response = read_message(&mut reader).unwrap().unwrap();
        assert!(matches!(resp, Response::Error { .. }));

        // Same connection still works afterwards.
        write_message(&mut stream, &Request::List).unwrap();
        let resp: Response = read_message(&mut reader).unwrap().unwrap();
        assert!(matches!(resp, Response::Listing { .. }));
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_dropped_after_timeout() {
        let registry = temp_registry("timeout");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_millis(100),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream);
        // Say nothing: the server should hang up on us.
        let got: io::Result<Option<Response>> = read_message(&mut reader);
        assert!(matches!(got, Ok(None)), "expected EOF, got {got:?}");
        server.shutdown();
    }

    #[test]
    fn shutdown_closes_live_connections_promptly() {
        let registry = temp_registry("shutdown");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_secs(60),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream);
        let start = std::time::Instant::now();
        server.shutdown();
        // Despite the 60 s read timeout, our connection dies immediately.
        let got: io::Result<Option<Response>> = read_message(&mut reader);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "shutdown took {:?}",
            start.elapsed()
        );
        // EOF or a reset error are both acceptable.
        assert!(!matches!(got, Ok(Some(_))), "unexpected message {got:?}");
    }

    /// The acceptance bar for the pool: 64 concurrent connections are
    /// all admitted while the server runs exactly `workers + 1` threads,
    /// and the accept counters record the queue pressure.
    #[cfg(target_os = "linux")]
    #[test]
    fn worker_pool_bounds_server_threads_under_load() {
        const CLIENTS: usize = 64;
        const WORKERS: usize = 4;
        let registry = temp_registry("pool");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                workers: WORKERS,
                backlog: CLIENTS,
                thread_prefix: "pool64".into(),
                read_timeout: Duration::from_secs(30),
            },
        )
        .unwrap();
        let addr = server.addr();

        let barrier = Arc::new(std::sync::Barrier::new(CLIENTS + 1));
        let clients: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    // Hold the connection open until the main thread has
                    // sampled the server's thread count.
                    barrier.wait();
                    drop(stream);
                })
            })
            .collect();

        wait_until("all clients admitted", || {
            registry.accept_counters().snapshot().accepted >= CLIENTS as u64
        });
        // 64 live connections, yet the server is exactly the fixed pool.
        assert_eq!(threads_with_prefix("pool64"), WORKERS + 1);
        let snap = registry.accept_counters().snapshot();
        assert_eq!(snap.accepted, CLIENTS as u64);
        assert_eq!(snap.rejected, 0, "nothing rejected: {snap:?}");
        // Each worker can absorb at most one connection; the rest must
        // have been queued at some point.
        assert!(
            snap.queue_depth_max >= (CLIENTS - WORKERS) as u64,
            "high water too low: {snap:?}"
        );

        barrier.wait();
        for c in clients {
            c.join().unwrap();
        }
        server.shutdown();
        assert_eq!(threads_with_prefix("pool64"), 0, "pool threads leaked");
    }

    #[test]
    fn full_accept_queue_rejects_new_connections() {
        use std::io::{BufRead as _, Write as _};
        let registry = temp_registry("reject");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                backlog: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let counters = registry.accept_counters();

        // First connection occupies the only worker...
        let busy = TcpStream::connect(server.addr()).unwrap();
        wait_until("first connection in service", || {
            let s = counters.snapshot();
            s.accepted == 1 && s.queue_depth == 0
        });
        // ...the second fills the one-slot queue...
        let queued = TcpStream::connect(server.addr()).unwrap();
        wait_until("second connection queued", || {
            counters.snapshot().accepted == 2
        });
        // ...and the third is turned away with a busy line, then a close.
        let turned_away = TcpStream::connect(server.addr()).unwrap();
        wait_until("third connection rejected", || {
            counters.snapshot().rejected == 1
        });
        let mut reader = BufReader::new(turned_away);
        match read_message::<Response>(&mut reader) {
            Ok(Some(Response::Error { error })) => {
                assert!(crate::protocol::is_busy_error(&error), "{error}");
            }
            got => panic!("expected busy rejection, got {got:?}"),
        }
        let got: io::Result<Option<Response>> = read_message(&mut reader);
        assert!(matches!(got, Ok(None)), "expected EOF, got {got:?}");

        // Freeing the worker lets the queued connection get service:
        // a (malformed) request line still draws a response line.
        drop(busy);
        let mut queued_reader = BufReader::new(queued.try_clone().unwrap());
        let mut queued = queued;
        queued.write_all(b"not json\n").unwrap();
        let mut line = String::new();
        queued_reader.read_line(&mut line).unwrap();
        assert!(
            !line.trim().is_empty(),
            "queued connection never got served"
        );

        let snap = counters.snapshot();
        assert_eq!(snap.accepted, 2);
        assert_eq!(snap.rejected, 1);
        assert!(snap.queue_depth_max >= 1);
        server.shutdown();
    }

    /// The client-facing half of the busy protocol: a put against a
    /// saturated 1-worker/0-backlog server maps to the distinct
    /// "server busy" error, and the retrying client rides out the
    /// rejection with backoff once the worker frees up.
    #[test]
    fn rejected_client_retries_and_succeeds() {
        use crate::client::{is_retryable, RetryPolicy, RetryingRegistryClient};

        let registry = temp_registry("retry");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                // Rendezvous queue: with the one worker occupied, every
                // further arrival is deterministically rejected.
                backlog: 0,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let counters = registry.accept_counters();
        let profile = measured_profile();

        // Occupy the only worker.
        let busy = TcpStream::connect(server.addr()).unwrap();
        wait_until("first connection in service", || {
            counters.snapshot().accepted == 1
        });

        // A plain client is turned away. Depending on how the server's
        // close races the put's write it sees the typed busy error or a
        // reset/EOF — every one of them retryable, none of them the
        // opaque application error the old EOF-only close produced.
        let mut plain = RegistryClient::connect(server.addr()).unwrap();
        plain.set_timeout(Some(Duration::from_secs(10))).unwrap();
        let err = plain.put(&profile, Some("tiny")).unwrap_err();
        assert!(is_retryable(&err), "wanted retryable, got {err:?}");
        wait_until("rejection counted", || counters.snapshot().rejected >= 1);

        // Free the worker shortly; the retrying client's backoff must
        // carry it past the rejections to a successful put.
        let freer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            drop(busy);
        });
        let mut retrying = RetryingRegistryClient::new(
            server.addr(),
            RetryPolicy {
                attempts: 40,
                initial_backoff: Duration::from_millis(5),
                multiplier: 1.5,
                max_backoff: Duration::from_millis(100),
            },
        );
        let digest = retrying.put(&profile, Some("tiny")).unwrap();
        let (got_digest, got) = retrying.get_profile("tiny").unwrap();
        assert_eq!(got_digest, digest);
        assert_eq!(got, profile);

        freer.join().unwrap();
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_connections() {
        let registry = temp_registry("drain");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                backlog: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let counters = registry.accept_counters();

        let busy = TcpStream::connect(server.addr()).unwrap();
        wait_until("first connection in service", || {
            let s = counters.snapshot();
            s.accepted == 1 && s.queue_depth == 0
        });
        let queued_a = TcpStream::connect(server.addr()).unwrap();
        let queued_b = TcpStream::connect(server.addr()).unwrap();
        wait_until("two connections queued", || {
            counters.snapshot().accepted == 3
        });

        // Shutdown must close the served AND the still-queued
        // connections, promptly.
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "shutdown took {:?}",
            start.elapsed()
        );
        for stream in [busy, queued_a, queued_b] {
            let mut reader = BufReader::new(stream);
            let got: io::Result<Option<Response>> = read_message(&mut reader);
            assert!(!matches!(got, Ok(Some(_))), "unexpected message {got:?}");
        }
    }
}
