//! The event-driven TCP front end: one readiness loop multiplexing
//! every connection, speaking the newline-delimited JSON protocol of
//! [`crate::protocol`].
//!
//! A single loop thread (`<prefix>-accept`) owns the listener, a
//! [`crate::poll::Poller`] (epoll where available), a
//! [`crate::timer::TimerWheel`] of idle deadlines, and every live
//! [`crate::conn::Conn`]. Sockets are nonblocking; the loop reads
//! complete request lines out of per-connection buffers and hands them
//! to [`ServerConfig::workers`] CPU-bound worker threads through a
//! bounded channel of [`ServerConfig::backlog`] slots. Workers parse,
//! execute against the [`Registry`], serialize, and push the response
//! line back to the loop through a completion queue plus a one-byte
//! wake socket.
//!
//! Thousands of idle connections therefore cost no threads: the server
//! runs exactly `workers + 1` threads no matter how many clients
//! connect (see [`ServerConfig::max_conns`] for the admission cap).
//! Overload is explicit at two layers, both answered with a one-line
//! `busy:` rejection ([`crate::protocol::busy_response`]) and a close:
//!
//! * **admission** — more than `max_conns` live connections;
//! * **execution** — a parsed request finds the worker queue full.
//!
//! At most one request per connection is in flight at a time; while one
//! is, the loop stops reading that socket, so pipelining clients are
//! backpressured by the kernel, not by server memory. Unterminated
//! lines longer than [`ServerConfig::max_line_bytes`] are refused.
//!
//! [`ServerHandle::shutdown`] stops accepting, closes every idle
//! connection at once, lets in-flight requests finish for up to
//! [`ServerConfig::drain_grace`], then kills stragglers (counted as
//! `drain_killed` in [`crate::protocol::AcceptStats`]) and joins every
//! thread. Loop health is exported through
//! [`crate::protocol::EventStats`] via the `stats` operation.

use crate::conn::Conn;
use crate::poll::{deepen_listen_backlog, raise_nofile_limit, Event, Interest, Poller};
use crate::protocol::{busy_response, write_message, Request, Response};
use crate::registry::Registry;
use crate::timer::TimerWheel;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poller token of the listening socket.
const LISTENER: u64 = 0;
/// Poller token of the wake-pipe read end.
const WAKE: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN: u64 = 2;

#[cfg(unix)]
fn raw_fd<T: std::os::fd::AsRawFd>(s: &T) -> std::os::fd::RawFd {
    s.as_raw_fd()
}
#[cfg(not(unix))]
fn raw_fd<T>(_s: &T) -> i32 {
    -1
}

/// Tunables for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Idle deadline: a connection with no complete request and no
    /// read activity for this long is disconnected.
    pub read_timeout: Duration,
    /// Worker threads executing requests. The server never runs more
    /// threads than this plus the event loop, no matter how many
    /// clients connect.
    pub workers: usize,
    /// Parsed requests that may wait for a free worker. When all
    /// workers are busy and this many requests are queued, further
    /// requests are answered with a one-line `busy:` rejection
    /// ([`crate::protocol::busy_response`]) and the connection is
    /// closed. `0` means rendezvous: a request is accepted only if a
    /// worker is blocked waiting for one — useful in tests that need
    /// rejection to be deterministic.
    pub backlog: usize,
    /// Prefix for server thread names (`<prefix>-accept` for the event
    /// loop, `<prefix>-worker-N`), useful for telling pools apart in
    /// `/proc/<pid>/task` or a debugger.
    pub thread_prefix: String,
    /// Live-connection admission cap. Arrivals beyond it get the
    /// `busy:` line and a close instead of degrading everyone.
    pub max_conns: usize,
    /// How long [`ServerHandle::shutdown`] waits for in-flight
    /// requests to finish before killing their connections.
    pub drain_grace: Duration,
    /// Longest accepted request line. An unterminated line growing past
    /// this is refused with an error response and a close (the
    /// slow-loris bound: per-connection memory stays finite).
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(30),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(2, 8),
            backlog: 128,
            thread_prefix: "servet".into(),
            max_conns: 10_240,
            drain_grace: Duration::from_secs(5),
            max_line_bytes: 16 * 1024 * 1024,
        }
    }
}

/// Wakes the event loop out of `Poller::wait` from another thread by
/// writing one byte into a nonblocking loopback socket the loop polls.
struct Waker {
    tx: TcpStream,
}

impl Waker {
    fn wake(&self) {
        // WouldBlock means bytes are already pending: the loop will
        // wake regardless, so every outcome here is fine.
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// A loopback socket pair standing in for a pipe: `(read end, write
/// end)`, both nonblocking.
fn wake_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    rx.set_nonblocking(true)?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true).ok();
    Ok((rx, tx))
}

/// One parsed-off request line headed for a worker.
struct Job {
    conn: u64,
    line: Vec<u8>,
}

/// One serialized response line headed back to the loop.
struct Completion {
    conn: u64,
    line: Vec<u8>,
}

/// A running server; dropping it shuts it down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    loop_thread: Option<JoinHandle<()>>,
    waker: Arc<Waker>,
}

impl ServerHandle {
    /// The address actually bound (resolves `:0` to the chosen port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight requests for up to the
    /// configured grace, close every connection, and join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Block until the server stops on its own (it never does unless
    /// the process is killed) — the body of `servet serve`.
    pub fn join(mut self) {
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.loop_thread.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Turn a raw request line into a response, end to end: parse,
/// dispatch, done. Runs on a worker thread — the CPU-bound stage.
fn execute(registry: &Registry, raw: &[u8]) -> Response {
    let text = match std::str::from_utf8(raw) {
        Ok(t) => t.trim(),
        Err(e) => {
            return Response::Error {
                error: format!("bad request: {e}"),
            }
        }
    };
    if text.is_empty() {
        return Response::Error {
            error: "bad request: empty line".into(),
        };
    }
    match serde_json::from_str::<Request>(text) {
        Ok(request) => registry.handle(request),
        Err(e) => Response::Error {
            error: format!("bad request: {e}"),
        },
    }
}

/// Serialize a response as one newline-terminated JSON line.
fn encode_line(response: &Response) -> Vec<u8> {
    // Error replies are hand-built: byte-stable, serializer-independent,
    // and available even when the JSON backend is broken — clients can
    // always read why they were refused.
    if let Response::Error { error } = response {
        return error_line(error);
    }
    let mut buf = Vec::with_capacity(128);
    if write_message(&mut buf, response).is_err() {
        buf.clear();
        buf = error_line("internal: response serialization failed");
    }
    buf
}

/// Hand-build an error reply line with no serializer in the path. The
/// event loop uses this for its own replies (busy, oversized) so a
/// broken or panicking serializer can never take the loop thread down
/// with it.
fn error_line(message: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(message.len() + 32);
    buf.extend_from_slice(b"{\"reply\":\"error\",\"error\":\"");
    for byte in message.bytes() {
        match byte {
            b'"' => buf.extend_from_slice(b"\\\""),
            b'\\' => buf.extend_from_slice(b"\\\\"),
            b'\n' => buf.extend_from_slice(b"\\n"),
            b'\r' => buf.extend_from_slice(b"\\r"),
            b'\t' => buf.extend_from_slice(b"\\t"),
            0x00..=0x1f => {
                buf.extend_from_slice(format!("\\u{byte:04x}").as_bytes());
            }
            _ => buf.push(byte),
        }
    }
    buf.extend_from_slice(b"\"}\n");
    buf
}

/// The `busy:` rejection as a ready-to-send wire line, serde-free so
/// the event loop can emit it directly.
fn busy_line() -> Vec<u8> {
    match busy_response() {
        Response::Error { error } => error_line(&error),
        _ => error_line("busy: server overloaded, retry with backoff"),
    }
}

/// Bind `addr` and serve `registry` until [`ServerHandle::shutdown`].
///
/// Spawns `config.workers` worker threads plus one event-loop thread;
/// request lines flow to workers through a channel bounded by
/// `config.backlog`, responses flow back through a completion queue.
pub fn serve(
    registry: Arc<Registry>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    // A 10k-connection storm overruns std's hardcoded 128-deep kernel
    // accept backlog; deepen it (and the fd limit) best-effort.
    deepen_listen_backlog(&listener, config.max_conns.clamp(128, 65_535) as i32);
    let _ = raise_nofile_limit();

    let shutdown = Arc::new(AtomicBool::new(false));
    let (wake_rx, wake_tx) = wake_pair()?;
    let waker = Arc::new(Waker { tx: wake_tx });

    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.backlog);
    let job_rx = Arc::new(Mutex::new(job_rx));
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let registry = Arc::clone(&registry);
        let job_rx = Arc::clone(&job_rx);
        let completions = Arc::clone(&completions);
        let waker = Arc::clone(&waker);
        let worker = std::thread::Builder::new()
            .name(format!("{}-worker-{i}", config.thread_prefix))
            .spawn(move || loop {
                // Hold the receiver lock only for the blocking recv so
                // the other workers keep draining the queue.
                let received = match job_rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(_) => break,
                };
                let Ok(job) = received else { break };
                registry.accept_counters().request_dequeued();
                // A panicking handler must cost its request, not the
                // worker — and never leave the client waiting forever
                // on a response that will not come.
                let line = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    encode_line(&execute(&registry, &job.line))
                }))
                .unwrap_or_else(|_| error_line("internal: request handler panicked"));
                if let Ok(mut queue) = completions.lock() {
                    queue.push(Completion {
                        conn: job.conn,
                        line,
                    });
                }
                waker.wake();
            })?;
        workers.push(worker);
    }

    let poller = Poller::new()?;
    // Tick the wheel well inside the idle deadline so kills land close
    // to it, without sub-millisecond wakeups.
    let granularity = (config.read_timeout / 8)
        .max(Duration::from_millis(1))
        .min(Duration::from_millis(250));
    let event_loop = EventLoop {
        registry,
        config: config.clone(),
        poller,
        listener,
        wake_rx,
        conns: HashMap::new(),
        wheel: TimerWheel::new(granularity),
        next_token: FIRST_CONN,
        job_tx: Some(job_tx),
        completions,
        shutdown: Arc::clone(&shutdown),
    };
    let loop_thread = std::thread::Builder::new()
        .name(format!("{}-accept", config.thread_prefix))
        .spawn(move || event_loop.run(workers))?;

    Ok(ServerHandle {
        addr,
        shutdown,
        loop_thread: Some(loop_thread),
        waker,
    })
}

/// The readiness loop: accepts, reads, dispatches, flushes, expires.
struct EventLoop {
    registry: Arc<Registry>,
    config: ServerConfig,
    poller: Poller,
    listener: TcpListener,
    wake_rx: TcpStream,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
    next_token: u64,
    /// Dropped at shutdown so workers drain the queue and exit.
    job_tx: Option<mpsc::SyncSender<Job>>,
    completions: Arc<Mutex<Vec<Completion>>>,
    shutdown: Arc<AtomicBool>,
}

impl EventLoop {
    fn run(mut self, workers: Vec<JoinHandle<()>>) {
        let listener_ok = self
            .poller
            .register(raw_fd(&self.listener), LISTENER, Interest::READ)
            .is_ok();
        let wake_ok = self
            .poller
            .register(raw_fd(&self.wake_rx), WAKE, Interest::READ)
            .is_ok();
        let mut events: Vec<Event> = Vec::new();
        let mut drain_deadline: Option<Instant> = None;
        while listener_ok && wake_ok && !self.tick(&mut events, &mut drain_deadline) {}
        // Dropping the sender wakes every worker out of recv once the
        // queue is drained; join them so shutdown is total.
        drop(self.job_tx.take());
        for worker in workers {
            let _ = worker.join();
        }
    }

    /// One pass of the event loop; returns `true` when the loop should
    /// exit (poller failure, or drain complete).
    fn tick(&mut self, events: &mut Vec<Event>, drain_deadline: &mut Option<Instant>) -> bool {
        let now = Instant::now();
        let timeout = self.poll_timeout(now, *drain_deadline);
        if self.poller.wait(events, timeout).is_err() {
            return true;
        }
        if !events.is_empty() {
            self.registry.event_counters().ready(events.len() as u64);
        }
        for &ev in events.iter() {
            match ev.token {
                LISTENER => self.accept_ready(drain_deadline.is_some()),
                WAKE => self.drain_waker(),
                token => self.conn_event(token, ev),
            }
        }
        self.apply_completions();
        self.expire_deadlines();

        if drain_deadline.is_none() && self.shutdown.load(Ordering::SeqCst) {
            *drain_deadline = Some(Instant::now() + self.config.drain_grace);
            self.begin_drain();
        }
        if let Some(deadline) = *drain_deadline {
            if self.conns.is_empty() {
                return true;
            }
            if Instant::now() >= deadline {
                self.kill_remaining();
                return true;
            }
        }
        false
    }

    /// How long the poller may sleep: bounded by the next timer tick
    /// and, while draining, by the drain deadline.
    fn poll_timeout(&self, now: Instant, drain: Option<Instant>) -> Option<Duration> {
        let mut timeout = self.wheel.next_timeout(now);
        if let Some(deadline) = drain {
            let until = deadline
                .saturating_duration_since(now)
                .max(Duration::from_millis(1));
            timeout = Some(timeout.map_or(until, |t| t.min(until)));
        }
        timeout
    }

    /// Accept everything the kernel has queued. New arrivals past the
    /// admission cap (or during drain) are turned away immediately.
    fn accept_ready(&mut self, draining: bool) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    servet_obs::counter("registry.server.connections").incr();
                    if draining {
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    if self.conns.len() >= self.config.max_conns {
                        self.reject_conn(stream);
                        continue;
                    }
                    self.admit(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Tell an un-admitted client *why* before hanging up, so it sees a
    /// distinct "server busy" rejection rather than an opaque EOF. Best
    /// effort under a short write timeout — a rejection must never
    /// stall the loop behind a slow client.
    fn reject_conn(&mut self, stream: TcpStream) {
        self.registry.accept_counters().conn_rejected();
        servet_obs::counter("registry.server.rejected").incr();
        let mut stream = stream;
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        let _ = stream.write_all(&busy_line());
        let _ = stream.shutdown(Shutdown::Both);
    }

    fn admit(&mut self, stream: TcpStream) {
        let token = self.next_token;
        let deadline = Instant::now() + self.config.read_timeout;
        let Ok(conn) = Conn::new(stream, token, deadline) else {
            return;
        };
        if self
            .poller
            .register(raw_fd(conn.stream()), token, Interest::READ)
            .is_err()
        {
            conn.shutdown();
            return;
        }
        self.next_token += 1;
        self.wheel.insert(deadline, token, conn.generation);
        self.registry.accept_counters().conn_admitted();
        self.registry.event_counters().conn_opened();
        self.conns.insert(token, conn);
    }

    /// Swallow pending wake bytes (their only job was ending the wait).
    fn drain_waker(&mut self) {
        self.registry.event_counters().wakeup();
        let mut buf = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// React to readiness on one connection, then advance its state
    /// machine.
    fn conn_event(&mut self, token: u64, ev: Event) {
        let mut dead = false;
        let mut read_bytes = 0usize;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return; // already closed; stale event
            };
            if (ev.readable || ev.hangup) && !conn.inflight && !conn.closing {
                // Cap buffered-but-unparsed input a little above the
                // line limit so the overflow check can trip.
                let cap = self.config.max_line_bytes.saturating_add(64 * 1024);
                match conn.read_ready(cap) {
                    Ok(outcome) => read_bytes = outcome.bytes,
                    Err(_) => dead = true,
                }
            }
            if !dead && ev.writable && conn.wants_write() && conn.flush().is_err() {
                dead = true;
            }
        }
        if dead {
            self.close_conn(token);
        } else {
            self.advance(token, read_bytes);
        }
    }

    /// Advance one connection's state machine: dispatch a buffered
    /// line, flush output, decide close, sync poller interest, re-arm
    /// the idle deadline. Safe to call any time.
    fn advance(&mut self, token: u64, read_bytes: usize) {
        let mut remove = false;
        if let Some(conn) = self.conns.get_mut(&token) {
            if !conn.inflight && !conn.closing {
                match conn.lines.pop_line() {
                    Some(line) => {
                        self.registry.accept_counters().request_enqueued();
                        let sent = self
                            .job_tx
                            .as_ref()
                            .map(|tx| tx.try_send(Job { conn: token, line }));
                        match sent {
                            Some(Ok(())) => {
                                conn.inflight = true;
                                // Cancel the idle deadline while the
                                // request is ours, not the client's.
                                conn.generation = conn.generation.wrapping_add(1);
                            }
                            Some(Err(mpsc::TrySendError::Full(_))) => {
                                self.registry.accept_counters().request_rejected();
                                self.registry.accept_counters().conn_rejected();
                                servet_obs::counter("registry.server.rejected").incr();
                                conn.queue_write(&busy_line());
                                conn.closing = true;
                            }
                            Some(Err(mpsc::TrySendError::Disconnected(_))) | None => {
                                self.registry.accept_counters().request_rejected();
                                conn.closing = true;
                            }
                        }
                    }
                    None => {
                        if conn.lines.line_overflows(self.config.max_line_bytes) {
                            self.registry.event_counters().oversized();
                            conn.queue_write(&error_line(&format!(
                                "bad request: line exceeds {} bytes",
                                self.config.max_line_bytes
                            )));
                            conn.closing = true;
                        } else if read_bytes > 0 && !conn.lines.is_empty() {
                            self.registry.event_counters().partial_read();
                        }
                    }
                }
            }
            if conn.wants_write() && conn.flush().is_err() {
                remove = true;
            }
            if !remove {
                if conn.closing && conn.drained() {
                    remove = true;
                } else if conn.peer_eof && conn.drained() && conn.lines.is_empty() {
                    remove = true; // clean EOF, nothing pending
                }
            }
            if !remove && !conn.inflight && read_bytes > 0 {
                let generation = conn.rearm_deadline(Instant::now() + self.config.read_timeout);
                self.wheel.insert(conn.deadline, token, generation);
            }
            if !remove {
                let want = conn.desired_interest();
                if want != conn.registered {
                    if self
                        .poller
                        .modify(raw_fd(conn.stream()), token, want)
                        .is_err()
                    {
                        remove = true;
                    } else {
                        conn.registered = want;
                    }
                }
            }
        }
        if remove {
            self.close_conn(token);
        }
    }

    /// Deliver finished responses back onto their connections.
    fn apply_completions(&mut self) {
        let batch = match self.completions.lock() {
            Ok(mut queue) => std::mem::take(&mut *queue),
            Err(_) => return,
        };
        for done in batch {
            let token = done.conn;
            {
                let Some(conn) = self.conns.get_mut(&token) else {
                    continue; // connection died while the request ran
                };
                conn.inflight = false;
                conn.queue_write(&done.line);
                if !conn.closing && !conn.peer_eof {
                    let generation = conn.rearm_deadline(Instant::now() + self.config.read_timeout);
                    self.wheel.insert(conn.deadline, token, generation);
                }
            }
            self.advance(token, 0);
        }
    }

    /// Kill connections whose idle deadline passed. Stale fires (the
    /// generation moved on) are ignored.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let mut expired: Vec<(u64, u64)> = Vec::new();
        self.wheel.expire(now, |token, generation| {
            expired.push((token, generation));
        });
        for (token, generation) in expired {
            let kill = self
                .conns
                .get(&token)
                .is_some_and(|c| c.generation == generation && !c.inflight);
            if kill {
                self.registry.event_counters().deadline_kill();
                self.close_conn(token);
            }
        }
    }

    /// Enter drain: stop watching the listener, close idle connections
    /// immediately, and flag the rest to close as soon as their
    /// in-flight work flushes.
    fn begin_drain(&mut self) {
        let _ = self.poller.deregister(raw_fd(&self.listener), LISTENER);
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.closing = true;
            }
            self.advance(token, 0);
        }
    }

    /// The drain grace expired: kill whatever is left.
    fn kill_remaining(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.registry.accept_counters().drain_killed();
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(raw_fd(conn.stream()), token);
            conn.shutdown();
            self.registry.event_counters().conn_closed();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RegistryClient;
    use crate::protocol::read_message;
    use servet_core::profile::MachineProfile;
    use servet_core::suite::{run_full_suite, SuiteConfig};
    use servet_core::SimPlatform;
    use std::io::{BufRead, BufReader};

    fn measured_profile() -> MachineProfile {
        let mut platform = SimPlatform::tiny_cluster().with_noise(0.003);
        run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024)).profile
    }

    fn temp_registry(tag: &str) -> Arc<Registry> {
        let dir = std::env::temp_dir().join(format!("servet-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(Registry::open(dir).unwrap())
    }

    /// Poll `cond` until it holds or a 30 s deadline passes.
    fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while !cond() {
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for: {what}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Count live threads of this process whose name starts with
    /// `prefix` (names are truncated to 15 bytes by the kernel, so keep
    /// prefixes short).
    #[cfg(target_os = "linux")]
    fn threads_with_prefix(prefix: &str) -> usize {
        let mut count = 0;
        if let Ok(entries) = std::fs::read_dir("/proc/self/task") {
            for entry in entries.flatten() {
                if let Ok(name) = std::fs::read_to_string(entry.path().join("comm")) {
                    if name.trim_end().starts_with(prefix) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    #[test]
    fn round_trip_over_loopback() {
        let registry = temp_registry("loopback");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_secs(5),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let profile = measured_profile();

        let mut client = RegistryClient::connect(server.addr()).unwrap();
        let digest = client.put(&profile, Some("tiny")).unwrap();
        match client.get("tiny").unwrap() {
            Response::Profile {
                digest: d,
                profile: p,
            } => {
                assert_eq!(d, digest);
                assert_eq!(*p, profile, "profile must round-trip the wire exactly");
            }
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn malformed_line_gets_error_and_connection_survives() {
        use std::io::Write as _;
        let registry = temp_registry("malformed");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_secs(5),
                ..ServerConfig::default()
            },
        )
        .unwrap();

        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"{definitely not json\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let resp: Response = read_message(&mut reader).unwrap().unwrap();
        assert!(matches!(resp, Response::Error { .. }));

        // Same connection still works afterwards.
        write_message(&mut stream, &Request::List).unwrap();
        let resp: Response = read_message(&mut reader).unwrap().unwrap();
        assert!(matches!(resp, Response::Listing { .. }));
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_dropped_after_timeout() {
        let registry = temp_registry("timeout");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_millis(100),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream);
        // Say nothing: the server should hang up on us.
        let got: io::Result<Option<Response>> = read_message(&mut reader);
        assert!(matches!(got, Ok(None)), "expected EOF, got {got:?}");
        assert!(
            registry.event_counters().snapshot().deadline_kills >= 1,
            "idle kill must be counted"
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_closes_live_connections_promptly() {
        let registry = temp_registry("shutdown");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                read_timeout: Duration::from_secs(60),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream);
        let start = std::time::Instant::now();
        server.shutdown();
        // Despite the 60 s read timeout, our connection dies immediately.
        let got: io::Result<Option<Response>> = read_message(&mut reader);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "shutdown took {:?}",
            start.elapsed()
        );
        // EOF or a reset error are both acceptable.
        assert!(!matches!(got, Ok(Some(_))), "unexpected message {got:?}");
    }

    /// The acceptance bar for the event loop: 64 concurrent connections
    /// are all admitted AND served while the server runs exactly
    /// `workers + 1` threads.
    #[cfg(target_os = "linux")]
    #[test]
    fn worker_pool_bounds_server_threads_under_load() {
        const CLIENTS: usize = 64;
        const WORKERS: usize = 4;
        let registry = temp_registry("pool");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                workers: WORKERS,
                backlog: CLIENTS,
                thread_prefix: "pool64".into(),
                read_timeout: Duration::from_secs(30),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr();

        // Every client sends one request, reads its reply, then holds
        // the connection open until the main thread has sampled the
        // server's thread count. The request is raw bytes and the reply
        // is read as a raw line — no serializer anywhere in the client
        // path — so a client thread always reaches the barrier even
        // when no JSON backend is available; missing the barrier would
        // deadlock the whole test.
        let served = Arc::new(std::sync::Barrier::new(CLIENTS + 1));
        let release = Arc::new(std::sync::Barrier::new(CLIENTS + 1));
        let clients: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let served = Arc::clone(&served);
                let release = Arc::clone(&release);
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(20)))
                        .unwrap();
                    let sent = stream.write_all(b"{\"cmd\":\"list\"}\n").is_ok();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut line = String::new();
                    let got = reader.read_line(&mut line).unwrap_or(0);
                    served.wait();
                    release.wait();
                    drop(stream);
                    assert!(sent, "every client must get its request out");
                    assert!(got > 0, "every client must draw a reply line");
                })
            })
            .collect();

        served.wait();
        // 64 live, served connections, yet the server is exactly the
        // fixed pool plus the event loop.
        assert_eq!(threads_with_prefix("pool64"), WORKERS + 1);
        let snap = registry.accept_counters().snapshot();
        assert_eq!(snap.accepted, CLIENTS as u64);
        assert_eq!(snap.rejected, 0, "nothing rejected: {snap:?}");
        assert_eq!(snap.queue_depth, 0, "all requests drained: {snap:?}");
        let events = registry.event_counters().snapshot();
        assert_eq!(events.conns_open, CLIENTS as u64, "{events:?}");
        assert!(events.conns_peak >= CLIENTS as u64, "{events:?}");

        release.wait();
        for c in clients {
            c.join().unwrap();
        }
        server.shutdown();
        assert_eq!(threads_with_prefix("pool64"), 0, "pool threads leaked");
    }

    /// Admission control: arrivals past `max_conns` get the typed
    /// `busy:` line and an EOF, and a freed slot re-opens the door.
    #[test]
    fn over_admission_cap_rejects_with_busy_line() {
        use std::io::{BufRead as _, Write as _};
        let registry = temp_registry("reject");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                backlog: 4,
                max_conns: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let accept = registry.accept_counters();
        let events = registry.event_counters();

        let first = TcpStream::connect(server.addr()).unwrap();
        wait_until("first connection admitted", || {
            events.snapshot().conns_open == 1
        });
        let _second = TcpStream::connect(server.addr()).unwrap();
        wait_until("second connection admitted", || {
            events.snapshot().conns_open == 2
        });
        // The third is over the cap: busy line, then a close.
        let turned_away = TcpStream::connect(server.addr()).unwrap();
        wait_until("third connection rejected", || {
            accept.snapshot().rejected == 1
        });
        // The busy line is hand-built (never JSON-encoded), so read it
        // raw: it must classify as busy straight off the wire.
        let mut reader = BufReader::new(turned_away);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            crate::protocol::is_busy_line(&line),
            "expected busy rejection, got {line:?}"
        );
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "expected EOF");

        // Freeing a slot lets the next arrival in: a (malformed)
        // request line still draws a response line.
        drop(first);
        wait_until("slot freed", || events.snapshot().conns_open == 1);
        let mut admitted = TcpStream::connect(server.addr()).unwrap();
        admitted.write_all(b"not json\n").unwrap();
        let mut line = String::new();
        BufReader::new(admitted.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(!line.trim().is_empty(), "admitted connection never served");

        let snap = accept.snapshot();
        assert_eq!(snap.accepted, 3);
        assert_eq!(snap.rejected, 1);
        server.shutdown();
    }

    /// A full request queue answers with the same typed `busy:` line.
    /// With one worker and a rendezvous queue, concurrent clients must
    /// collide with an executing request quickly.
    #[test]
    fn saturated_request_queue_rejects_with_busy_line() {
        use std::io::{BufRead as _, Write as _};
        let registry = temp_registry("busyq");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                backlog: 0,
                read_timeout: Duration::from_secs(10),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let hammers: Vec<_> = (0..4)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || -> Option<String> {
                    while !stop.load(Ordering::SeqCst) {
                        let Ok(mut stream) = TcpStream::connect(addr) else {
                            continue;
                        };
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                        if stream.write_all(b"{\"cmd\":\"list\"}\n").is_err() {
                            continue;
                        }
                        let mut reader = BufReader::new(stream);
                        let mut line = String::new();
                        if reader.read_line(&mut line).unwrap_or(0) == 0 {
                            continue;
                        }
                        if crate::protocol::is_busy_line(&line) {
                            // The busy line is followed by a close.
                            let mut rest = String::new();
                            assert_eq!(reader.read_line(&mut rest).unwrap_or(0), 0);
                            stop.store(true, Ordering::SeqCst);
                            return Some(line);
                        }
                    }
                    None
                })
            })
            .collect();
        wait_until("a request-level rejection", || stop.load(Ordering::SeqCst));
        let busy_lines: Vec<String> = hammers
            .into_iter()
            .filter_map(|h| h.join().unwrap())
            .collect();
        assert!(!busy_lines.is_empty());
        assert!(registry.accept_counters().snapshot().rejected >= 1);
        server.shutdown();
    }

    /// The client-facing half of the busy protocol: a put against a
    /// server at its admission cap maps to the distinct "server busy"
    /// error, and the retrying client rides out the rejection with
    /// backoff once the slot frees up.
    #[test]
    fn rejected_client_retries_and_succeeds() {
        use crate::client::{is_retryable, RetryPolicy, RetryingRegistryClient};

        let registry = temp_registry("retry");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                // One admission slot: with it occupied, every further
                // arrival is deterministically rejected.
                max_conns: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let accept = registry.accept_counters();
        let events = registry.event_counters();
        let profile = measured_profile();

        // Occupy the only slot.
        let busy = TcpStream::connect(server.addr()).unwrap();
        wait_until("first connection admitted", || {
            events.snapshot().conns_open == 1
        });

        // A plain client is turned away. Depending on how the server's
        // close races the put's write it sees the typed busy error or a
        // reset/EOF — every one of them retryable, none of them the
        // opaque application error the old EOF-only close produced.
        let mut plain = RegistryClient::connect(server.addr()).unwrap();
        plain.set_timeout(Some(Duration::from_secs(10))).unwrap();
        let err = plain.put(&profile, Some("tiny")).unwrap_err();
        assert!(is_retryable(&err), "wanted retryable, got {err:?}");
        wait_until("rejection counted", || accept.snapshot().rejected >= 1);

        // Free the slot shortly; the retrying client's backoff must
        // carry it past the rejections to a successful put.
        let freer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            drop(busy);
        });
        let mut retrying = RetryingRegistryClient::new(
            server.addr(),
            RetryPolicy {
                attempts: 40,
                initial_backoff: Duration::from_millis(5),
                multiplier: 1.5,
                max_backoff: Duration::from_millis(100),
                ..RetryPolicy::default()
            },
        );
        let digest = retrying.put(&profile, Some("tiny")).unwrap();
        let (got_digest, got) = retrying.get_profile("tiny").unwrap();
        assert_eq!(got_digest, digest);
        assert_eq!(got, profile);

        freer.join().unwrap();
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_connections() {
        let registry = temp_registry("drain");
        let server = serve(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                backlog: 4,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let events = registry.event_counters();

        let a = TcpStream::connect(server.addr()).unwrap();
        let b = TcpStream::connect(server.addr()).unwrap();
        let c = TcpStream::connect(server.addr()).unwrap();
        wait_until("three connections admitted", || {
            events.snapshot().conns_open == 3
        });

        // Shutdown must close every live connection, promptly, and
        // without needing the drain-kill hammer (they are all idle).
        let start = std::time::Instant::now();
        server.shutdown();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "shutdown took {:?}",
            start.elapsed()
        );
        assert_eq!(registry.accept_counters().snapshot().drain_killed, 0);
        for stream in [a, b, c] {
            let mut reader = BufReader::new(stream);
            let got: io::Result<Option<Response>> = read_message(&mut reader);
            assert!(!matches!(got, Ok(Some(_))), "unexpected message {got:?}");
        }
    }
}
