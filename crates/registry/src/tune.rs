//! The tune engine: search-based autotuning served from stored
//! profiles, memoized per `(profile digest, space digest, options)`.
//!
//! The shape mirrors [`crate::advice::AdviceEngine`] exactly — profiles
//! are content-addressed and immutable, the search strategies are
//! deterministic in their options, and the profile oracle is a pure
//! function of the profile, so a tuning session's outcome can never go
//! stale and is a perfect memoization target. Unlike the advice memo
//! key (digest + serialized query), the tune key is built from the
//! *space digest* plus a canonical rendering of the options, so two
//! clients declaring the same space differently (`log2` sugar vs an
//! explicit value list) share one cache entry.

use crate::cache::{CacheStats, ShardedCache};
use serde::{Deserialize, Serialize};
use servet_core::profile::MachineProfile;
use servet_tune::{kernel_space, tune, ParamSpace, ProfileOracle, TuneOptions, TuneOutcome};

fn default_n() -> usize {
    64
}

/// Largest kernel edge the server will price. The profile oracle is
/// closed-form (cost is independent of `n`'s magnitude), but the value
/// still parameterizes working-set math, so bound it to something sane.
const MAX_N: usize = 4096;

/// Hard cap on the space an exhaustive request may enumerate
/// server-side — mirrors the search engine's own limit, but as a typed
/// error instead of a panic.
const MAX_EXHAUSTIVE: usize = 1 << 20;

/// One tuning request against a stored profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneQuery {
    /// The space to search. Omitted means the standard kernel space for
    /// the profiled machine ([`kernel_space`] over its core count).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub space: Option<ParamSpace>,
    /// Strategy and its budgets/seed.
    pub options: TuneOptions,
    /// Kernel matrix edge the profile oracle prices.
    #[serde(default = "default_n")]
    pub n: usize,
}

/// Validate a space that arrived over the wire (it bypassed
/// [`ParamSpace::new`]'s panicking asserts, so every declaration bug
/// must become a protocol error here).
fn validate_space(space: &ParamSpace) -> Result<(), String> {
    if space.params.is_empty() {
        return Err("space has no parameters".into());
    }
    for (i, p) in space.params.iter().enumerate() {
        if p.values.is_empty() {
            return Err(format!("parameter {:?} has no values", p.name));
        }
        if space.params[..i].iter().any(|q| q.name == p.name) {
            return Err(format!("duplicate parameter name {:?}", p.name));
        }
    }
    Ok(())
}

/// A memoizing tuning engine over stored profiles, the `tune` operation
/// of the wire protocol.
pub struct TuneEngine {
    cache: ShardedCache<String, Result<TuneOutcome, String>>,
}

impl Default for TuneEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl TuneEngine {
    /// An engine with the default cache geometry (8 shards × 512).
    pub fn new() -> Self {
        Self::with_capacity(8, 512)
    }

    /// An engine whose memo cache has `shards` shards of `per_shard`
    /// entries each.
    pub fn with_capacity(shards: usize, per_shard: usize) -> Self {
        Self {
            cache: ShardedCache::new(shards, per_shard),
        }
    }

    /// The memoization key: profile digest, space digest, and a
    /// canonical rendering of every option that can change the result.
    /// (No serializer involved, so the key is stable across serde
    /// versions and environments.)
    fn memo_key(digest: &str, space: &ParamSpace, options: &TuneOptions, n: usize) -> String {
        format!(
            "{digest}:{}:{}:s{}:w{}:t{}:m{}:n{n}",
            space.digest(),
            options.strategy.wire_name(),
            options.seed,
            options.sweeps,
            options.steps,
            options.samples,
        )
    }

    /// Run (or recall) a tuning session for the profile stored under
    /// `digest`. The second element reports whether the memo cache
    /// served it. Errors are memoized too — a bad space stays bad.
    pub fn tune(
        &self,
        digest: &str,
        profile: &MachineProfile,
        query: &TuneQuery,
    ) -> (Result<TuneOutcome, String>, bool) {
        if !(8..=MAX_N).contains(&query.n) {
            return (
                Err(format!("n must be between 8 and {MAX_N}, got {}", query.n)),
                false,
            );
        }
        // Resolve the default space so an explicit identical space
        // shares the memo entry with the omitted form.
        let space = match &query.space {
            Some(space) => {
                if let Err(e) = validate_space(space) {
                    return (Err(e), false);
                }
                space.clone()
            }
            None => kernel_space(profile.total_cores.max(1), query.n),
        };
        if query.options.strategy == servet_tune::Strategy::Exhaustive
            && space.len() > MAX_EXHAUSTIVE
        {
            return (
                Err(format!(
                    "space of {} points is too large for exhaustive search",
                    space.len()
                )),
                false,
            );
        }
        let key = Self::memo_key(digest, &space, &query.options, query.n);
        if let Some(cached) = self.cache.get(&key) {
            return (cached, true);
        }
        let _span = servet_obs::span("tune.compute");
        servet_obs::counter("tune.computed").incr();
        let oracle = ProfileOracle::new(profile.clone(), query.n);
        let outcome = Ok(tune(&oracle, &space, &query.options, 1));
        self.cache.insert(key, outcome.clone());
        (outcome, false)
    }

    /// Memo-cache counters (the serving tests assert on the hit count).
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servet_core::suite::{run_full_suite, SuiteConfig};
    use servet_core::SimPlatform;
    use servet_tune::{Param, Strategy};

    fn measured_profile() -> MachineProfile {
        let mut platform = SimPlatform::tiny_cluster().with_noise(0.003);
        run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024)).profile
    }

    #[test]
    fn memoization_hits_on_repeat_and_on_equivalent_spaces() {
        let profile = measured_profile();
        // A literal digest: the engine never re-derives it, and the real
        // one would route through serde_json (stubbed out in some builds).
        let digest = "a".repeat(64);
        let engine = TuneEngine::new();
        let query = TuneQuery {
            space: None,
            options: TuneOptions::new(Strategy::Line),
            n: 64,
        };

        let (first, cached) = engine.tune(&digest, &profile, &query);
        assert!(!cached);
        let first = first.expect("line search succeeds");
        assert!(!first.best.is_empty());

        let (second, cached) = engine.tune(&digest, &profile, &query);
        assert!(cached, "second identical query must be memoized");
        assert_eq!(first, second.unwrap());
        assert_eq!(engine.stats().hits, 1);

        // Declaring the default space explicitly lands on the same entry
        // (the key hashes the materialized space, not the request text).
        let explicit = TuneQuery {
            space: Some(kernel_space(profile.total_cores, 64)),
            options: TuneOptions::new(Strategy::Line),
            n: 64,
        };
        let (third, cached) = engine.tune(&digest, &profile, &explicit);
        assert!(cached, "equivalent explicit space must share the entry");
        assert_eq!(first, third.unwrap());

        // A different digest must not share entries.
        let (_, cached) = engine.tune("other-digest", &profile, &query);
        assert!(!cached);

        // Nor different options.
        let hotter = TuneQuery {
            space: None,
            options: TuneOptions::new(Strategy::MonteCarlo).with_seed(7),
            n: 64,
        };
        let (_, cached) = engine.tune(&digest, &profile, &hotter);
        assert!(!cached);
    }

    #[test]
    fn strategies_agree_on_the_profile_oracle() {
        // The profile oracle's surface is benign enough that line search
        // should land on the exhaustive optimum for the kernel space.
        let profile = measured_profile();
        let digest = "b".repeat(64);
        let engine = TuneEngine::new();
        let outcome = |strategy| {
            let query = TuneQuery {
                space: None,
                options: TuneOptions::new(strategy),
                n: 64,
            };
            engine.tune(&digest, &profile, &query).0.unwrap()
        };
        let exhaustive = outcome(Strategy::Exhaustive);
        let line = outcome(Strategy::Line);
        assert_eq!(exhaustive.best_score, line.best_score);
        assert!(line.evaluations < exhaustive.evaluations);
    }

    #[test]
    fn invalid_inputs_are_typed_errors_not_panics() {
        let profile = measured_profile();
        let engine = TuneEngine::new();

        let empty = TuneQuery {
            space: Some(ParamSpace { params: Vec::new() }),
            options: TuneOptions::new(Strategy::Exhaustive),
            n: 64,
        };
        let (out, _) = engine.tune("d", &profile, &empty);
        assert!(out.unwrap_err().contains("no parameters"));

        let dup = TuneQuery {
            space: Some(ParamSpace {
                params: vec![Param::fixed_set("x", &[1]), Param::fixed_set("x", &[2])],
            }),
            options: TuneOptions::new(Strategy::Exhaustive),
            n: 64,
        };
        let (out, _) = engine.tune("d", &profile, &dup);
        assert!(out.unwrap_err().contains("duplicate"));

        let tiny_n = TuneQuery {
            space: None,
            options: TuneOptions::new(Strategy::Line),
            n: 2,
        };
        let (out, _) = engine.tune("d", &profile, &tiny_n);
        assert!(out.unwrap_err().contains("n must be"));

        let huge = TuneQuery {
            space: Some(ParamSpace {
                params: (0..7)
                    .map(|i| Param::fixed_set(&format!("p{i}"), &(0..8u64).collect::<Vec<_>>()))
                    .collect(),
            }),
            options: TuneOptions::new(Strategy::Exhaustive),
            n: 64,
        };
        let (out, _) = engine.tune("d", &profile, &huge);
        assert!(out.unwrap_err().contains("too large"), "8^7 points");
    }
}
