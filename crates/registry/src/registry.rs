//! The registry proper: the content-addressed store fronted by a sharded
//! parsed-profile cache and the memoizing advice engine, behind a single
//! [`Registry::handle`] dispatch that the TCP server, the CLI, and the
//! tests all share.

use crate::advice::{AdviceEngine, AdviceQuery};
use crate::cache::ShardedCache;
use crate::protocol::{AcceptStats, EventStats, OpLatency, Request, Response, ServerStats};
use crate::store::{ProfileStore, StoreEntry};
use crate::tune::{TuneEngine, TuneQuery};
use servet_core::profile::MachineProfile;
use servet_obs::Histogram;
use servet_tune::TuneOutcome;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-operation handling-latency histograms, owned by the registry (not
/// the process-global `servet-obs` metrics) so concurrently running
/// registries — tests, embedded servers — never mix their numbers.
#[derive(Debug, Default)]
struct OpMetrics {
    put: Histogram,
    get: Histogram,
    list: Histogram,
    advise: Histogram,
    tune: Histogram,
    stats: Histogram,
}

impl OpMetrics {
    fn histogram(&self, request: &Request) -> &Histogram {
        match request {
            Request::Put { .. } => &self.put,
            Request::Get { .. } => &self.get,
            Request::List => &self.list,
            Request::Advise { .. } => &self.advise,
            Request::Tune { .. } => &self.tune,
            Request::Stats => &self.stats,
        }
    }

    /// Wire digests for every operation seen so far, in protocol order.
    fn snapshot(&self) -> Vec<OpLatency> {
        [
            ("put", &self.put),
            ("get", &self.get),
            ("list", &self.list),
            ("advise", &self.advise),
            ("tune", &self.tune),
            ("stats", &self.stats),
        ]
        .into_iter()
        .filter(|(_, h)| !h.is_empty())
        .map(|(op, h)| OpLatency::from_snapshot(op, &h.snapshot()))
        .collect()
    }
}

/// Live accept-path counters, owned by the registry so the `stats`
/// operation can report the serving layer's health next to the per-op
/// latency digests. The TCP front end increments them; an in-process
/// registry simply reports zeros.
///
/// Under the event-driven front end `accepted`/`rejected` count
/// *connections* (admission), while the queue-depth pair tracks
/// *requests* waiting in the bounded worker queue — a connection is no
/// longer queued as a unit of work, its parsed request lines are.
#[derive(Debug, Default)]
pub struct AcceptCounters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_max: AtomicU64,
    drain_killed: AtomicU64,
}

impl AcceptCounters {
    /// A connection passed admission and now multiplexes on the event
    /// loop.
    pub fn conn_admitted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was turned away — at admission (`max_conns` live
    /// connections already) or because the request queue was full when
    /// its request arrived. Either way the peer got the one-line
    /// `busy:` rejection and a close.
    pub fn conn_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A request is about to be offered to the worker queue. Counted
    /// into the depth *before* the offer so a racing worker's
    /// [`Self::request_dequeued`] can never underflow it.
    pub fn request_enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }

    /// A worker took a queued request into service.
    pub fn request_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// The queue was full ([`Self::request_enqueued`] already ran): roll
    /// the depth back; the caller also counts the connection rejected.
    pub fn request_rejected(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A connection was killed for overstaying the shutdown drain
    /// grace period.
    pub fn drain_killed(&self) {
        self.drain_killed.fetch_add(1, Ordering::Relaxed);
    }

    /// Current values as the wire struct.
    pub fn snapshot(&self) -> AcceptStats {
        AcceptStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_max: self.queue_depth_max.load(Ordering::Relaxed),
            drain_killed: self.drain_killed.load(Ordering::Relaxed),
        }
    }
}

/// Live event-loop counters, owned by the registry for the same reason
/// as [`AcceptCounters`]: concurrently running registries must never
/// mix their numbers through process globals.
#[derive(Debug, Default)]
pub struct EventCounters {
    ready_events: AtomicU64,
    wakeups: AtomicU64,
    partial_reads: AtomicU64,
    deadline_kills: AtomicU64,
    oversized_rejected: AtomicU64,
    conns_open: AtomicU64,
    conns_peak: AtomicU64,
}

impl EventCounters {
    /// `n` readiness events came back from one poller wait.
    pub fn ready(&self, n: u64) {
        self.ready_events.fetch_add(n, Ordering::Relaxed);
    }

    /// The loop was woken by the wake channel (completion or shutdown).
    pub fn wakeup(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// A read pass buffered bytes without completing a line.
    pub fn partial_read(&self) {
        self.partial_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was killed by its read/idle deadline.
    pub fn deadline_kill(&self) {
        self.deadline_kills.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was closed for an oversized request line.
    pub fn oversized(&self) {
        self.oversized_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was registered with the event loop.
    pub fn conn_opened(&self) {
        let open = self.conns_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.conns_peak.fetch_max(open, Ordering::Relaxed);
    }

    /// A connection was deregistered.
    pub fn conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current values as the wire struct.
    pub fn snapshot(&self) -> EventStats {
        EventStats {
            ready_events: self.ready_events.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            partial_reads: self.partial_reads.load(Ordering::Relaxed),
            deadline_kills: self.deadline_kills.load(Ordering::Relaxed),
            oversized_rejected: self.oversized_rejected.load(Ordering::Relaxed),
            conns_open: self.conns_open.load(Ordering::Relaxed),
            conns_peak: self.conns_peak.load(Ordering::Relaxed),
        }
    }
}

/// A profile registry over one store directory.
pub struct Registry {
    store: ProfileStore,
    /// digest → parsed profile, so repeated advice/get on hot profiles
    /// skips disk and JSON parsing.
    profiles: ShardedCache<String, Arc<MachineProfile>>,
    advice: AdviceEngine,
    tuner: TuneEngine,
    requests: AtomicU64,
    ops: OpMetrics,
    accept: AcceptCounters,
    events: EventCounters,
}

impl Registry {
    /// Open a registry rooted at `dir` with default cache geometry.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self {
            store: ProfileStore::open(dir)?,
            profiles: ShardedCache::new(8, 64),
            advice: AdviceEngine::new(),
            tuner: TuneEngine::new(),
            requests: AtomicU64::new(0),
            ops: OpMetrics::default(),
            accept: AcceptCounters::default(),
            events: EventCounters::default(),
        })
    }

    /// The underlying store.
    pub fn store(&self) -> &ProfileStore {
        &self.store
    }

    /// The accept-path counters the TCP front end maintains.
    pub fn accept_counters(&self) -> &AcceptCounters {
        &self.accept
    }

    /// The event-loop counters the TCP front end maintains.
    pub fn event_counters(&self) -> &EventCounters {
        &self.events
    }

    /// Store a profile (optionally aliased); returns its digest.
    pub fn put(&self, profile: MachineProfile, name: Option<&str>) -> io::Result<String> {
        let digest = self.store.put(&profile)?;
        if let Some(name) = name {
            self.store.alias(name, &digest)?;
        }
        self.profiles.insert(digest.clone(), Arc::new(profile));
        Ok(digest)
    }

    /// Resolve `key` and fetch its profile, serving hot digests from the
    /// in-memory cache.
    pub fn get(&self, key: &str) -> io::Result<Option<(String, Arc<MachineProfile>)>> {
        let Some(digest) = self.store.resolve(key)? else {
            return Ok(None);
        };
        if let Some(profile) = self.profiles.get(&digest) {
            return Ok(Some((digest, profile)));
        }
        let profile = Arc::new(self.store.load(&digest)?);
        self.profiles.insert(digest.clone(), Arc::clone(&profile));
        Ok(Some((digest, profile)))
    }

    /// List the stored profiles.
    pub fn list(&self) -> io::Result<Vec<StoreEntry>> {
        self.store.list()
    }

    /// Advice for the profile under `key`; the bool reports a memo hit.
    pub fn advise(
        &self,
        key: &str,
        query: &AdviceQuery,
    ) -> io::Result<Option<(String, Result<crate::advice::AdviceOutcome, String>, bool)>> {
        let Some((digest, profile)) = self.get(key)? else {
            return Ok(None);
        };
        let (outcome, cached) = self.advice.advise(&digest, &profile, query);
        Ok(Some((digest, outcome, cached)))
    }

    /// Run (or recall) a tuning session for the profile under `key`; the
    /// bool reports a memo hit.
    pub fn tune(
        &self,
        key: &str,
        query: &TuneQuery,
    ) -> io::Result<Option<(String, Result<TuneOutcome, String>, bool)>> {
        let Some((digest, profile)) = self.get(key)? else {
            return Ok(None);
        };
        let (outcome, cached) = self.tuner.tune(&digest, &profile, query);
        Ok(Some((digest, outcome, cached)))
    }

    /// Counter snapshot, including per-operation latency digests.
    pub fn stats(&self) -> ServerStats {
        ServerStats::from_caches(
            self.store.len().unwrap_or(0),
            self.requests.load(Ordering::Relaxed),
            self.advice.stats(),
            self.profiles.stats(),
            self.ops.snapshot(),
            self.accept.snapshot(),
            self.events.snapshot(),
        )
    }

    /// Handle one protocol request — the single dispatch shared by the
    /// TCP server and in-process callers. Never panics on bad input;
    /// failures become [`Response::Error`]. Handling time is recorded
    /// into the per-operation latency histograms that [`Self::stats`]
    /// reports.
    pub fn handle(&self, request: Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let histogram = self.ops.histogram(&request);
        let start = Instant::now();
        let response = self.dispatch(request);
        histogram.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        response
    }

    fn dispatch(&self, request: Request) -> Response {
        match request {
            Request::Put { profile, name } => {
                // Verify the content round-trips under our schema before
                // accepting it (rejects too-new schema versions too).
                if profile.schema_version > servet_core::profile::SCHEMA_VERSION {
                    return Response::Error {
                        error: format!(
                            "profile schema_version {} is newer than the supported version {}",
                            profile.schema_version,
                            servet_core::profile::SCHEMA_VERSION
                        ),
                    };
                }
                match self.put(*profile, name.as_deref()) {
                    Ok(digest) => Response::Stored { digest },
                    Err(e) => Response::Error {
                        error: e.to_string(),
                    },
                }
            }
            Request::Get { key } => match self.get(&key) {
                Ok(Some((digest, profile))) => Response::Profile {
                    digest,
                    profile: Box::new((*profile).clone()),
                },
                Ok(None) => Response::Error {
                    error: format!("no profile matches {key:?}"),
                },
                Err(e) => Response::Error {
                    error: e.to_string(),
                },
            },
            Request::List => match self.list() {
                Ok(entries) => Response::Listing { entries },
                Err(e) => Response::Error {
                    error: e.to_string(),
                },
            },
            Request::Advise { key, query } => match self.advise(&key, &query) {
                Ok(Some((digest, Ok(outcome), cached))) => Response::Advice {
                    digest,
                    cached,
                    outcome,
                },
                Ok(Some((_, Err(error), _))) => Response::Error { error },
                Ok(None) => Response::Error {
                    error: format!("no profile matches {key:?}"),
                },
                Err(e) => Response::Error {
                    error: e.to_string(),
                },
            },
            Request::Tune { key, query } => match self.tune(&key, &query) {
                Ok(Some((digest, Ok(outcome), cached))) => Response::Tuned {
                    digest,
                    cached,
                    outcome,
                },
                Ok(Some((_, Err(error), _))) => Response::Error { error },
                Ok(None) => Response::Error {
                    error: format!("no profile matches {key:?}"),
                },
                Err(e) => Response::Error {
                    error: e.to_string(),
                },
            },
            Request::Stats => Response::Stats {
                stats: self.stats(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::profile_digest;
    use servet_core::suite::{run_full_suite, SuiteConfig};
    use servet_core::SimPlatform;

    fn measured_profile() -> MachineProfile {
        let mut platform = SimPlatform::tiny_cluster().with_noise(0.003);
        run_full_suite(&mut platform, &SuiteConfig::small(256 * 1024)).profile
    }

    fn temp_registry(tag: &str) -> Registry {
        let dir =
            std::env::temp_dir().join(format!("servet-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Registry::open(dir).unwrap()
    }

    #[test]
    fn handle_covers_the_protocol() {
        let registry = temp_registry("handle");
        let profile = measured_profile();
        let digest = profile_digest(&profile);

        let resp = registry.handle(Request::Put {
            profile: Box::new(profile.clone()),
            name: Some("tiny".into()),
        });
        assert_eq!(
            resp,
            Response::Stored {
                digest: digest.clone()
            }
        );

        match registry.handle(Request::Get { key: "tiny".into() }) {
            Response::Profile {
                digest: d,
                profile: p,
            } => {
                assert_eq!(d, digest);
                assert_eq!(*p, profile);
            }
            other => panic!("unexpected {other:?}"),
        }

        match registry.handle(Request::List) {
            Response::Listing { entries } => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].aliases, vec!["tiny".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }

        let advise = Request::Advise {
            key: "tiny".into(),
            query: AdviceQuery::Tile {
                level: 1,
                elem_size: 8,
                matrices: 3,
                occupancy: 0.75,
            },
        };
        match registry.handle(advise.clone()) {
            Response::Advice { cached, .. } => assert!(!cached),
            other => panic!("unexpected {other:?}"),
        }
        match registry.handle(advise) {
            Response::Advice { cached, .. } => assert!(cached),
            other => panic!("unexpected {other:?}"),
        }

        match registry.handle(Request::Stats) {
            Response::Stats { stats } => {
                assert_eq!(stats.profiles, 1);
                assert_eq!(stats.advice_hits, 1);
                assert!(stats.requests >= 5);
                // Every exercised operation has a latency digest.
                let op = |name: &str| stats.ops.iter().find(|o| o.op == name);
                for name in ["put", "get", "list", "advise"] {
                    let entry = op(name).unwrap_or_else(|| panic!("no digest for {name}"));
                    assert!(entry.count >= 1);
                    assert!(entry.max_ns >= entry.min_ns);
                    assert!(entry.p99_ns >= entry.p50_ns);
                    assert!(!entry.buckets.is_empty());
                }
                // This Stats request itself is still in flight, so `stats`
                // may or may not appear; it must once a second one lands.
                assert_eq!(op("ghost"), None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match registry.handle(Request::Stats) {
            Response::Stats { stats } => {
                let entry = stats.ops.iter().find(|o| o.op == "stats").unwrap();
                assert!(entry.count >= 1);
            }
            other => panic!("unexpected {other:?}"),
        }

        match registry.handle(Request::Get {
            key: "ghost".into(),
        }) {
            Response::Error { error } => assert!(error.contains("ghost")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn accept_counters_track_depth_and_high_water() {
        let registry = temp_registry("accept");
        let c = registry.accept_counters();
        assert_eq!(c.snapshot(), AcceptStats::default());
        // Three connections admitted, each with a request queued...
        for _ in 0..3 {
            c.conn_admitted();
            c.request_enqueued();
        }
        // ...one request taken by a worker, then a fourth connection's
        // request finds the queue full (roll back + conn rejection) and
        // a drain kill lands during shutdown.
        c.request_dequeued();
        c.request_enqueued();
        c.request_rejected();
        c.conn_rejected();
        c.drain_killed();
        let snap = c.snapshot();
        assert_eq!(snap.accepted, 3);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.queue_depth_max, 3);
        assert_eq!(snap.drain_killed, 1);
        // And the stats surface carries them.
        assert_eq!(registry.stats().accept, snap);
    }

    #[test]
    fn event_counters_track_open_high_water() {
        let registry = temp_registry("events");
        let c = registry.event_counters();
        assert_eq!(c.snapshot(), crate::protocol::EventStats::default());
        c.conn_opened();
        c.conn_opened();
        c.conn_closed();
        c.conn_opened();
        c.ready(5);
        c.wakeup();
        c.partial_read();
        c.deadline_kill();
        c.oversized();
        let snap = c.snapshot();
        assert_eq!(snap.conns_open, 2);
        assert_eq!(snap.conns_peak, 2);
        assert_eq!(snap.ready_events, 5);
        assert_eq!(snap.wakeups, 1);
        assert_eq!(snap.partial_reads, 1);
        assert_eq!(snap.deadline_kills, 1);
        assert_eq!(snap.oversized_rejected, 1);
        assert_eq!(registry.stats().events, snap);
    }

    #[test]
    fn tune_dispatch_memoizes_and_reports_latency() {
        use servet_tune::{Strategy, TuneOptions};
        let registry = temp_registry("tune");
        // Storing canonicalizes through serde_json; skip where it is a
        // panicking stub (the engine-level tests in `tune.rs` still run).
        let stored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            registry.put(measured_profile(), Some("tiny"))
        }));
        let Ok(Ok(_)) = stored else {
            eprintln!("serde_json unavailable (stub); skipping dispatch test");
            return;
        };
        let request = Request::Tune {
            key: "tiny".into(),
            query: TuneQuery {
                space: None,
                options: TuneOptions::new(Strategy::Line),
                n: 64,
            },
        };
        let first = match registry.handle(request.clone()) {
            Response::Tuned {
                cached, outcome, ..
            } => {
                assert!(!cached, "first session computes");
                outcome
            }
            other => panic!("unexpected {other:?}"),
        };
        match registry.handle(request) {
            Response::Tuned {
                cached, outcome, ..
            } => {
                assert!(cached, "second identical session is memoized");
                assert_eq!(outcome, first);
            }
            other => panic!("unexpected {other:?}"),
        }
        match registry.handle(Request::Stats) {
            Response::Stats { stats } => {
                let op = stats.ops.iter().find(|o| o.op == "tune").expect("tune op");
                assert_eq!(op.count, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown key: typed error, not a panic.
        match registry.handle(Request::Tune {
            key: "ghost".into(),
            query: TuneQuery {
                space: None,
                options: TuneOptions::new(Strategy::MonteCarlo),
                n: 64,
            },
        }) {
            Response::Error { error } => assert!(error.contains("ghost")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn too_new_profile_is_refused() {
        let registry = temp_registry("schema");
        let mut profile = measured_profile();
        profile.schema_version = servet_core::profile::SCHEMA_VERSION + 1;
        match registry.handle(Request::Put {
            profile: Box::new(profile),
            name: None,
        }) {
            Response::Error { error } => assert!(error.contains("newer"), "{error}"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
