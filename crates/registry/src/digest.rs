//! Content digests for the profile store: a dependency-free SHA-256.
//!
//! The registry keys every profile by the SHA-256 of its canonical JSON
//! (see [`crate::store`]), so identical measurements always land on the
//! same key no matter which client uploaded them. The implementation is
//! the plain FIPS 180-4 construction over `std` only — the CI sandboxes
//! this repo builds in cannot fetch crates, so no external hash crate.

/// Streaming SHA-256 (FIPS 180-4).
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

#[rustfmt::skip]
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher with the FIPS initial state.
    pub fn new() -> Self {
        Self {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Pad, finish, and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // Length goes in directly: buf_len is 56, one compress remains.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        let add = [a, b, c, d, e, f, g, h];
        for (s, x) in self.state.iter_mut().zip(add) {
            *s = s.wrapping_add(x);
        }
    }
}

/// SHA-256 of `bytes` as a lowercase 64-character hex string — the key
/// format used throughout the registry (file names, wire protocol).
pub fn sha256_hex(bytes: &[u8]) -> String {
    let mut hasher = Sha256::new();
    hasher.update(bytes);
    to_hex(&hasher.finalize())
}

/// Lowercase hex of a byte slice.
pub fn to_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

/// Is `s` a plausible full digest (64 lowercase hex chars)?
pub fn looks_like_digest(s: &str) -> bool {
    s.len() == 64
        && s.bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 997]; // deliberately not a divisor of 64
        let mut remaining = 1_000_000usize;
        while remaining > 0 {
            let take = remaining.min(chunk.len());
            h.update(&chunk[..take]);
            remaining -= take;
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|x| x.to_le_bytes()).collect();
        let one_shot = sha256_hex(&data);
        for split in [0usize, 1, 63, 64, 65, 100, 3999] {
            let mut h = Sha256::new();
            let (a, b) = data.split_at(split.min(data.len()));
            h.update(a);
            h.update(b);
            assert_eq!(to_hex(&h.finalize()), one_shot, "split {split}");
        }
    }

    #[test]
    fn digest_shape_checks() {
        let d = sha256_hex(b"x");
        assert!(looks_like_digest(&d));
        assert!(!looks_like_digest("abc"));
        assert!(!looks_like_digest(&d.to_uppercase()));
        assert!(!looks_like_digest(&format!("{}g", &d[..63])));
    }
}
