//! CPU affinity: pin the calling thread to one core.
//!
//! The paper sets "the affinity of MPI processes to particular cores ...
//! with the `sched` system library"; this module is the Rust equivalent
//! over `sched_setaffinity(2)`. Pinning is best-effort: on platforms or
//! containers where it fails (restricted cpusets, non-Linux), measurements
//! still run, just without placement control.

/// Pin the calling thread to `core`. Returns `true` on success.
#[cfg(target_os = "linux")]
pub fn pin_to_core(core: usize) -> bool {
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        libc::CPU_SET(core, &mut set);
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
    }
}

/// Pinning is a no-op off Linux.
#[cfg(not(target_os = "linux"))]
pub fn pin_to_core(_core: usize) -> bool {
    false
}

/// The set of cores the calling thread may run on, by index.
#[cfg(target_os = "linux")]
pub fn allowed_cores() -> Vec<usize> {
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        if libc::sched_getaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &mut set) != 0 {
            return Vec::new();
        }
        (0..libc::CPU_SETSIZE as usize)
            .filter(|&c| libc::CPU_ISSET(c, &set))
            .collect()
    }
}

/// Unknown affinity off Linux.
#[cfg(not(target_os = "linux"))]
pub fn allowed_cores() -> Vec<usize> {
    Vec::new()
}

/// Number of logical cores available to this process.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// OS page size in bytes.
#[cfg(target_os = "linux")]
pub fn page_size() -> usize {
    let ps = unsafe { libc::sysconf(libc::_SC_PAGESIZE) };
    if ps > 0 {
        ps as usize
    } else {
        4096
    }
}

/// Assume 4 KB pages off Linux.
#[cfg(not(target_os = "linux"))]
pub fn page_size() -> usize {
    4096
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_core() {
        assert!(available_cores() >= 1);
    }

    #[test]
    fn page_size_sane() {
        let ps = page_size();
        assert!(ps.is_power_of_two());
        assert!(ps >= 1024 && ps <= 1024 * 1024);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn allowed_cores_nonempty() {
        let cores = allowed_cores();
        assert!(!cores.is_empty());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_to_first_allowed_core() {
        let cores = allowed_cores();
        assert!(pin_to_core(cores[0]));
        // Restore the original mask for later tests.
        unsafe {
            let mut set: libc::cpu_set_t = std::mem::zeroed();
            libc::CPU_ZERO(&mut set);
            for &c in &cores {
                libc::CPU_SET(c, &mut set);
            }
            libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set);
        }
    }
}
