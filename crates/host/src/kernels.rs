//! Measurement kernels for the host backend.
//!
//! These are the paper's actual measured loops:
//!
//! * [`strided_traversal_ns`] — the Fig. 1 kernel. The stride is **stored
//!   in the array** (`j += a[j]`), exactly as the paper prescribes "to
//!   avoid aggressive compiler optimizations": the compiler cannot know
//!   the stride, so it cannot vectorize or elide the loads, and each load
//!   depends on the previous one.
//! * [`copy_bandwidth_gbs`] — a STREAM-like copy (§III-C cites STREAM as
//!   the model for the bandwidth measurement).
//! * [`PingPong`] — a two-thread message bounce over rendezvous channels,
//!   standing in for MPI point-to-point over shared memory.

use std::hint::black_box;
use std::time::Instant;

/// Minimum measured time per kernel invocation; repetitions scale until a
/// measurement lasts this long, keeping timer noise below ~1 %.
const MIN_MEASURE_NS: u128 = 2_000_000;

/// Average nanoseconds per access of a strided traversal over a
/// `size`-byte array, stride `stride` bytes.
///
/// One warm-up pass precedes timing; timed passes repeat until the
/// measurement is long enough to trust.
pub fn strided_traversal_ns(size: usize, stride: usize) -> f64 {
    assert!(stride >= std::mem::size_of::<usize>());
    let elems = (size / std::mem::size_of::<usize>()).max(1);
    let stride_elems = stride / std::mem::size_of::<usize>();
    // Each visited element stores the stride, read back as the increment —
    // the paper's `A[j] = the amount of integers stored in 1KB`.
    let mut a = vec![0usize; elems];
    let mut j = 0usize;
    while j < elems {
        a[j] = stride_elems;
        j += stride_elems;
    }
    let accesses_per_pass = elems.div_ceil(stride_elems);

    let run_pass = |a: &[usize]| -> usize {
        let mut aux = 0usize;
        let mut j = 0usize;
        while j < elems {
            aux = aux.wrapping_add(elems);
            j += a[j];
        }
        aux
    };
    // Warm-up.
    black_box(run_pass(&a));
    let mut passes = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..passes {
            black_box(run_pass(black_box(&a)));
        }
        let elapsed = start.elapsed().as_nanos();
        if elapsed >= MIN_MEASURE_NS {
            servet_obs::counter("host.kernel.traversals").incr();
            servet_obs::histogram("host.kernel.traversal_ns")
                .record(elapsed.min(u64::MAX as u128) as u64);
            return elapsed as f64 / (passes * accesses_per_pass) as f64;
        }
        passes *= 2;
    }
}

/// Average nanoseconds per access chasing a pointer chain that visits the
/// given **distinct** byte offsets in order — the prefetcher-proof pattern
/// kernel behind the line-size and associativity probes.
///
/// The chain is embedded in the array itself (`j = a[j]`), so every load
/// depends on the previous one and the compiler can neither reorder nor
/// elide them; the access order is the caller's, which defeats stride
/// prefetchers that a sequential sweep would train.
pub fn pattern_chase_ns(size: usize, offsets: &[u64]) -> f64 {
    assert!(!offsets.is_empty());
    let elems = (size / std::mem::size_of::<usize>()).max(1);
    let mut a = vec![0usize; elems];
    // Link offset i -> offset i+1 (wrapping), indices in elements.
    let idx: Vec<usize> = offsets
        .iter()
        .map(|&o| (o as usize / std::mem::size_of::<usize>()).min(elems - 1))
        .collect();
    for w in idx.windows(2) {
        a[w[0]] = w[1];
    }
    a[*idx.last().expect("non-empty")] = idx[0];

    let steps = offsets.len();
    let run_pass = |a: &[usize], start: usize| -> usize {
        let mut j = start;
        for _ in 0..steps {
            j = a[j];
        }
        j
    };
    black_box(run_pass(&a, idx[0]));
    let mut passes = 1usize;
    loop {
        let start = Instant::now();
        let mut j = idx[0];
        for _ in 0..passes {
            j = run_pass(black_box(&a), j);
        }
        black_box(j);
        let elapsed = start.elapsed().as_nanos();
        if elapsed >= MIN_MEASURE_NS {
            return elapsed as f64 / (passes * steps) as f64;
        }
        passes *= 2;
    }
}

/// STREAM-like copy bandwidth in GB/s using `buf_bytes` source and
/// destination buffers (should exceed every cache level several times
/// over). Counts read + write traffic, as STREAM does.
pub fn copy_bandwidth_gbs(buf_bytes: usize) -> f64 {
    let elems = (buf_bytes / 8).max(1);
    let src = vec![1.0f64; elems];
    let mut dst = vec![0.0f64; elems];
    // Warm-up.
    dst.copy_from_slice(&src);
    black_box(&dst);
    let mut reps = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..reps {
            dst.copy_from_slice(black_box(&src));
            black_box(&mut dst);
        }
        let elapsed = start.elapsed().as_nanos();
        if elapsed >= MIN_MEASURE_NS * 5 {
            servet_obs::counter("host.kernel.copies").incr();
            servet_obs::histogram("host.kernel.copy_ns")
                .record(elapsed.min(u64::MAX as u128) as u64);
            let bytes = 2.0 * (elems * 8) as f64 * reps as f64;
            return bytes / elapsed as f64; // bytes/ns == GB/s
        }
        reps *= 2;
    }
}

/// A two-thread ping-pong: thread A sends a `size`-byte message to thread
/// B, B copies it into its own buffer and bounces it back. Mean one-way
/// latency emulates an MPI shared-memory transfer.
pub struct PingPong {
    to_b: crossbeam::channel::Sender<Box<[u8]>>,
    from_b: crossbeam::channel::Receiver<Box<[u8]>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl PingPong {
    /// Spawn the partner thread, optionally pinned to `core_b`.
    pub fn new(size: usize, core_b: Option<usize>) -> Self {
        let (to_b, rx_b) = crossbeam::channel::bounded::<Box<[u8]>>(1);
        let (tx_back, from_b) = crossbeam::channel::bounded::<Box<[u8]>>(1);
        let handle = std::thread::spawn(move || {
            if let Some(c) = core_b {
                crate::affinity::pin_to_core(c);
            }
            let mut local = vec![0u8; size].into_boxed_slice();
            while let Ok(msg) = rx_b.recv() {
                // Receive = copy into the receiver's buffer.
                local.copy_from_slice(&msg);
                black_box(&local);
                if tx_back.send(msg).is_err() {
                    break;
                }
            }
        });
        Self {
            to_b,
            from_b,
            handle: Some(handle),
        }
    }

    /// Mean one-way latency in µs over `reps` round trips.
    pub fn latency_us(&mut self, size: usize, reps: usize) -> f64 {
        assert!(reps > 0);
        let mut msg = vec![0u8; size].into_boxed_slice();
        // Warm-up round trip.
        self.to_b.send(msg).expect("partner alive");
        msg = self.from_b.recv().expect("partner alive");
        let start = Instant::now();
        for _ in 0..reps {
            self.to_b.send(msg).expect("partner alive");
            msg = self.from_b.recv().expect("partner alive");
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        black_box(&msg);
        elapsed / (2.0 * reps as f64) / 1000.0
    }
}

impl Drop for PingPong {
    fn drop(&mut self) {
        // Closing the channel stops the partner loop.
        let (dead_tx, _) = crossbeam::channel::bounded(1);
        self.to_b = dead_tx;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traversal_returns_positive_time() {
        let ns = strided_traversal_ns(64 * 1024, 1024);
        assert!(ns > 0.0 && ns < 10_000.0, "ns = {ns}");
    }

    #[test]
    fn traversal_large_is_not_faster_than_tiny() {
        // 4 KB fits every L1; 64 MB fits no cache. Per-access time should
        // rise (with margin for shared-runner noise).
        let small = strided_traversal_ns(4 * 1024, 1024);
        let large = strided_traversal_ns(64 * 1024 * 1024, 1024);
        assert!(
            large > small,
            "cache effect invisible: small {small} ns, large {large} ns"
        );
    }

    #[test]
    fn pattern_chase_visits_offsets() {
        // Chasing 64 distinct lines of a small array is fast; the same
        // pattern over a huge array (cache misses) is slower.
        let offsets: Vec<u64> = (0..64u64).map(|i| i * 1024).collect();
        let small = pattern_chase_ns(64 * 1024, &offsets);
        let big_offsets: Vec<u64> = (0..16_384u64)
            .map(|i| (i * 7919 + 13) % 16_384 * 4096)
            .collect();
        let mut dedup = big_offsets.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), big_offsets.len(), "offsets must be distinct");
        let large = pattern_chase_ns(64 * 1024 * 1024, &big_offsets);
        assert!(
            small > 0.0 && large > small,
            "small {small} vs large {large}"
        );
    }

    #[test]
    fn copy_bandwidth_positive() {
        let bw = copy_bandwidth_gbs(32 * 1024 * 1024);
        assert!(bw > 0.05 && bw < 1000.0, "bw = {bw} GB/s");
    }

    #[test]
    fn ping_pong_round_trips() {
        let mut pp = PingPong::new(4096, None);
        let lat = pp.latency_us(4096, 64);
        assert!(lat > 0.0 && lat < 10_000.0, "lat = {lat} µs");
    }

    #[test]
    fn ping_pong_larger_messages_cost_more() {
        let mut small = PingPong::new(64, None);
        let mut large = PingPong::new(4 * 1024 * 1024, None);
        let ls = small.latency_us(64, 64);
        let ll = large.latency_us(4 * 1024 * 1024, 16);
        assert!(ll > ls, "small {ls} µs vs large {ll} µs");
    }
}
