//! # servet-host
//!
//! Real-hardware backend for the Servet suite: implements
//! [`servet_core::Platform`] with timed loops on the machine the program is
//! running on, the way the paper's original C + MPI implementation does.
//!
//! * [`kernels`] — the measurement kernels: the paper's Fig. 1 traversal
//!   loop with the stride *read from the array* (so an optimizing compiler
//!   cannot collapse it), a STREAM-like copy, and a thread ping-pong.
//! * [`affinity`] — CPU pinning via `sched_setaffinity` (the paper pins MPI
//!   processes "with the `sched` system library").
//! * [`sysinfo`] — the OS's own sysfs view of the cache hierarchy, used
//!   only to cross-check measurements, never to produce them.
//! * [`platform`] — the [`platform::HostPlatform`] gluing them together.
//!
//! Times are reported in nanoseconds where the simulator reports cycles;
//! every detection algorithm in `servet-core` is scale-free (plateaus,
//! gradients, ratios), so the unit does not matter.
//!
//! On a unicore container the cache-size benchmark is fully functional;
//! pair benchmarks degrade to time-sliced threads and are useful as smoke
//! tests only — run on a real multicore for meaningful topology results.

pub mod affinity;
pub mod kernels;
pub mod platform;
pub mod sysinfo;

pub use platform::HostPlatform;
