//! Read the OS's own view of the cache hierarchy (Linux sysfs), for
//! validating Servet's measurements on real machines.
//!
//! The paper's §I argues that specification-based information is often
//! inaccessible or unreliable (`dmidecode` needs root; documentation is
//! vendor-specific) — which is precisely why Servet *measures*. Where
//! sysfs is available, though, it makes a good cross-check: the
//! `host_probe` example and `servet probe` report measured-vs-reported
//! side by side.

use std::fs;
use std::path::Path;

/// One cache level as reported by the OS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportedCache {
    /// Level (1, 2, 3, ...).
    pub level: u8,
    /// "Data", "Instruction" or "Unified".
    pub cache_type: String,
    /// Size in bytes.
    pub size: usize,
    /// Line size in bytes, when reported.
    pub line_size: Option<usize>,
    /// Ways of associativity, when reported.
    pub associativity: Option<usize>,
    /// Cores sharing this cache instance, when reported.
    pub shared_with: Vec<usize>,
}

fn read_trimmed(path: &Path) -> Option<String> {
    fs::read_to_string(path).ok().map(|s| s.trim().to_string())
}

/// Parse a sysfs size string like "32K" or "12288K".
fn parse_size(text: &str) -> Option<usize> {
    if let Some(kb) = text.strip_suffix('K') {
        kb.parse::<usize>().ok().map(|v| v * 1024)
    } else if let Some(mb) = text.strip_suffix('M') {
        mb.parse::<usize>().ok().map(|v| v * 1024 * 1024)
    } else {
        text.parse().ok()
    }
}

/// Parse a cpu list like "0-3,8,10-11".
fn parse_cpu_list(text: &str) -> Vec<usize> {
    let mut cpus = Vec::new();
    for part in text.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = part.split_once('-') {
            if let (Ok(lo), Ok(hi)) = (lo.parse::<usize>(), hi.parse::<usize>()) {
                cpus.extend(lo..=hi);
            }
        } else if let Ok(v) = part.parse::<usize>() {
            cpus.push(v);
        }
    }
    cpus
}

/// Data/unified caches of `cpu` as reported under
/// `/sys/devices/system/cpu/cpu<N>/cache/`, innermost first. Empty when
/// sysfs is unavailable (non-Linux, restricted container).
pub fn reported_caches(cpu: usize) -> Vec<ReportedCache> {
    let base = format!("/sys/devices/system/cpu/cpu{cpu}/cache");
    let Ok(entries) = fs::read_dir(&base) else {
        return Vec::new();
    };
    let mut caches = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if !path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("index"))
        {
            continue;
        }
        let Some(level) = read_trimmed(&path.join("level")).and_then(|v| v.parse::<u8>().ok())
        else {
            continue;
        };
        let cache_type = read_trimmed(&path.join("type")).unwrap_or_default();
        if cache_type == "Instruction" {
            continue; // Servet measures the data side
        }
        let Some(size) = read_trimmed(&path.join("size")).and_then(|v| parse_size(&v)) else {
            continue;
        };
        caches.push(ReportedCache {
            level,
            cache_type,
            size,
            line_size: read_trimmed(&path.join("coherency_line_size")).and_then(|v| v.parse().ok()),
            associativity: read_trimmed(&path.join("ways_of_associativity"))
                .and_then(|v| v.parse().ok()),
            shared_with: read_trimmed(&path.join("shared_cpu_list"))
                .map(|v| parse_cpu_list(&v))
                .unwrap_or_default(),
        });
    }
    caches.sort_by_key(|c| c.level);
    caches
}

/// Compare measured sizes against the OS-reported hierarchy. Returns
/// `(level, measured, reported)` triples for levels present in both.
pub fn compare_with_reported(
    measured: &[(u8, usize)],
    reported: &[ReportedCache],
) -> Vec<(u8, usize, usize)> {
    measured
        .iter()
        .filter_map(|&(level, size)| {
            reported
                .iter()
                .find(|r| r.level == level)
                .map(|r| (level, size, r.size))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_parsing() {
        assert_eq!(parse_size("32K"), Some(32 * 1024));
        assert_eq!(parse_size("12M"), Some(12 * 1024 * 1024));
        assert_eq!(parse_size("512"), Some(512));
        assert_eq!(parse_size("junk"), None);
    }

    #[test]
    fn cpu_list_parsing() {
        assert_eq!(parse_cpu_list("0-3"), vec![0, 1, 2, 3]);
        assert_eq!(parse_cpu_list("0,2,4"), vec![0, 2, 4]);
        assert_eq!(parse_cpu_list("0-1,8-9"), vec![0, 1, 8, 9]);
        assert_eq!(parse_cpu_list(""), Vec::<usize>::new());
    }

    #[test]
    fn reported_caches_well_formed() {
        // May be empty in restricted containers; when present it must be
        // sorted and sane.
        let caches = reported_caches(0);
        for w in caches.windows(2) {
            assert!(w[0].level <= w[1].level);
        }
        for c in &caches {
            assert!(c.size > 0);
            assert_ne!(c.cache_type, "Instruction");
        }
    }

    #[test]
    fn comparison_joins_on_level() {
        let reported = vec![
            ReportedCache {
                level: 1,
                cache_type: "Data".into(),
                size: 32 * 1024,
                line_size: Some(64),
                associativity: Some(8),
                shared_with: vec![0],
            },
            ReportedCache {
                level: 2,
                cache_type: "Unified".into(),
                size: 1024 * 1024,
                line_size: Some(64),
                associativity: Some(16),
                shared_with: vec![0, 1],
            },
        ];
        let measured = [(1u8, 32 * 1024usize), (2, 2 * 1024 * 1024), (3, 9 << 20)];
        let joined = compare_with_reported(&measured, &reported);
        assert_eq!(
            joined,
            vec![(1, 32 * 1024, 32 * 1024), (2, 2 * 1024 * 1024, 1024 * 1024)]
        );
    }
}
