//! [`Platform`] implementation over the host kernels.

use crate::affinity;
use crate::kernels;
use servet_core::platform::{CoreId, Platform, TraverseJob};
use std::sync::Barrier;
use std::time::Instant;

/// The machine this process runs on, as a Servet measurement target.
///
/// Cache benchmarks are meaningful everywhere; pair benchmarks require the
/// process to actually own multiple cores (check [`HostPlatform::num_cores`]).
pub struct HostPlatform {
    name: String,
    cores: usize,
    page_size: usize,
    pin: bool,
    started: Instant,
}

impl Default for HostPlatform {
    fn default() -> Self {
        Self::new()
    }
}

impl HostPlatform {
    /// Detect the current machine.
    pub fn new() -> Self {
        let cores = affinity::available_cores();
        Self {
            name: format!("host({cores} cores)"),
            cores,
            page_size: affinity::page_size(),
            pin: cores > 1,
            started: Instant::now(),
        }
    }

    /// Pretend the machine has `cores` cores (testing aid: lets the pair
    /// benchmarks run as time-sliced threads on fewer physical cores).
    pub fn with_core_override(mut self, cores: usize) -> Self {
        self.cores = cores;
        self.pin = false;
        self
    }

    /// Force pinning on or off.
    pub fn with_pinning(mut self, pin: bool) -> Self {
        self.pin = pin;
        self
    }

    fn maybe_pin(&self, core: CoreId) {
        if self.pin {
            affinity::pin_to_core(core);
        }
    }
}

impl Platform for HostPlatform {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_cores(&self) -> usize {
        self.cores
    }

    fn page_size(&self) -> usize {
        self.page_size
    }

    fn traverse_cycles(&mut self, core: CoreId, size: usize, stride: usize) -> f64 {
        self.maybe_pin(core);
        kernels::strided_traversal_ns(size, stride)
    }

    fn traverse_concurrent_cycles(&mut self, jobs: &[TraverseJob], stride: usize) -> Vec<f64> {
        let barrier = Barrier::new(jobs.len());
        let pin = self.pin;
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|&(core, size)| {
                    let barrier = &barrier;
                    s.spawn(move || {
                        if pin {
                            affinity::pin_to_core(core);
                        }
                        barrier.wait();
                        kernels::strided_traversal_ns(size, stride)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("traversal thread panicked"))
                .collect()
        })
    }

    fn copy_bandwidth_gbs(&mut self, active: &[CoreId]) -> Vec<f64> {
        // Buffers several times larger than any plausible cache.
        let buf = 32 * 1024 * 1024;
        let barrier = Barrier::new(active.len());
        let pin = self.pin;
        std::thread::scope(|s| {
            let handles: Vec<_> = active
                .iter()
                .map(|&core| {
                    let barrier = &barrier;
                    s.spawn(move || {
                        if pin {
                            affinity::pin_to_core(core);
                        }
                        barrier.wait();
                        kernels::copy_bandwidth_gbs(buf)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("copy thread panicked"))
                .collect()
        })
    }

    fn traverse_pattern_cycles(&mut self, core: CoreId, size: usize, offsets: &[u64]) -> f64 {
        self.maybe_pin(core);
        kernels::pattern_chase_ns(size, offsets)
    }

    fn message_latency_us(&mut self, a: CoreId, b: CoreId, size: usize) -> f64 {
        self.maybe_pin(a);
        let core_b = if self.pin { Some(b) } else { None };
        let mut pp = kernels::PingPong::new(size, core_b);
        pp.latency_us(size, 200)
    }

    fn concurrent_message_latency_us(
        &mut self,
        pairs: &[(CoreId, CoreId)],
        size: usize,
    ) -> Vec<f64> {
        let barrier = Barrier::new(pairs.len());
        let pin = self.pin;
        std::thread::scope(|s| {
            let handles: Vec<_> = pairs
                .iter()
                .map(|&(a, b)| {
                    let barrier = &barrier;
                    s.spawn(move || {
                        if pin {
                            affinity::pin_to_core(a);
                        }
                        let core_b = if pin { Some(b) } else { None };
                        let mut pp = kernels::PingPong::new(size, core_b);
                        barrier.wait();
                        pp.latency_us(size, 100)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("message thread panicked"))
                .collect()
        })
    }

    fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_something() {
        let p = HostPlatform::new();
        assert!(p.num_cores() >= 1);
        assert!(p.page_size().is_power_of_two());
        assert!(p.name().starts_with("host("));
    }

    #[test]
    fn traverse_measures() {
        let mut p = HostPlatform::new();
        let t = p.traverse_cycles(0, 64 * 1024, 1024);
        assert!(t > 0.0);
        let before = p.elapsed_seconds();
        p.traverse_cycles(0, 64 * 1024, 1024);
        assert!(p.elapsed_seconds() > before);
    }

    #[test]
    fn concurrent_traverse_returns_per_job() {
        let mut p = HostPlatform::new().with_core_override(2);
        let r = p.traverse_concurrent_cycles(&[(0, 32 * 1024), (1, 32 * 1024)], 1024);
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn copy_bandwidth_per_core() {
        let mut p = HostPlatform::new().with_core_override(2);
        let r = p.copy_bandwidth_gbs(&[0, 1]);
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn messaging_smoke() {
        let mut p = HostPlatform::new().with_core_override(2);
        assert!(p.supports_messaging());
        let lat = p.message_latency_us(0, 1, 1024);
        assert!(lat > 0.0);
        let lats = p.concurrent_message_latency_us(&[(0, 1)], 1024);
        assert_eq!(lats.len(), 1);
    }
}
