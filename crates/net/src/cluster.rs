//! The virtual cluster: ranks, affinity, timed messaging, virtual time.
//!
//! [`VirtualCluster`] plays the role MPI plays in the paper's reference
//! implementation: processes (ranks) are pinned to cores (the paper uses the
//! `sched` library for affinity), point-to-point messages are timed, and
//! several messages can be sent concurrently. All time is *virtual*: the
//! cluster keeps a ledger of simulated microseconds, which the suite uses to
//! reproduce the execution times of Table I.

use crate::contention::ContentionModel;
use crate::model::CommModel;
use crate::topology::{ClusterTopology, GlobalCore};

/// Deterministic hash → `[0, 1)` float, used for measurement jitter.
fn jitter_unit(seed: u64) -> f64 {
    // splitmix64 finalizer.
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A simulated multicore cluster with an MPI-like timed messaging surface.
#[derive(Debug, Clone)]
pub struct VirtualCluster {
    topo: ClusterTopology,
    model: CommModel,
    contention: ContentionModel,
    /// `affinity[rank]` — the core each rank is pinned to.
    affinity: Vec<GlobalCore>,
    /// Virtual time consumed by all operations so far, µs.
    elapsed_us: f64,
    /// Operation counter, also salts the jitter.
    ops: u64,
    seed: u64,
}

impl VirtualCluster {
    /// Create a cluster with one rank per core, rank `i` pinned to core `i`.
    pub fn new(topo: ClusterTopology, model: CommModel, contention: ContentionModel) -> Self {
        topo.validate().expect("invalid topology");
        let n = topo.total_cores();
        Self {
            topo,
            model,
            contention,
            affinity: (0..n).collect(),
            elapsed_us: 0.0,
            ops: 0,
            seed: 0xC0FFEE,
        }
    }

    /// Change the jitter seed (distinct seeds give distinct measurement
    /// noise streams).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The cluster topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    /// The ground-truth communication model (used by tests and ablations,
    /// never by the benchmarks themselves).
    pub fn model(&self) -> &CommModel {
        &self.model
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.affinity.len()
    }

    /// Pin ranks to cores. Cores must be distinct and in range.
    pub fn set_affinity(&mut self, affinity: Vec<GlobalCore>) {
        let mut seen = vec![false; self.topo.total_cores()];
        for &c in &affinity {
            assert!(c < self.topo.total_cores(), "core {c} out of range");
            assert!(!seen[c], "core {c} pinned twice");
            seen[c] = true;
        }
        self.affinity = affinity;
    }

    /// Core a rank is pinned to.
    pub fn core_of_rank(&self, rank: usize) -> GlobalCore {
        self.affinity[rank]
    }

    /// Deterministic multiplicative jitter for the next measurement.
    fn jitter(&mut self, a: GlobalCore, b: GlobalCore, size: usize) -> f64 {
        let j = self.model.jitter;
        if j == 0.0 {
            return 1.0;
        }
        self.ops += 1;
        let h = self
            .seed
            .wrapping_mul(31)
            .wrapping_add(a as u64)
            .wrapping_mul(31)
            .wrapping_add(b as u64)
            .wrapping_mul(31)
            .wrapping_add(size as u64)
            .wrapping_mul(31)
            .wrapping_add(self.ops);
        1.0 + j * (2.0 * jitter_unit(h) - 1.0)
    }

    /// Latency in µs of one message from `rank_a` to `rank_b`.
    ///
    /// This is the `l = Latency sending a message between the two cores`
    /// step of the paper's Fig. 7.
    pub fn send_latency_us(&mut self, rank_a: usize, rank_b: usize, size: usize) -> f64 {
        let (a, b) = (self.core_of_rank(rank_a), self.core_of_rank(rank_b));
        assert_ne!(a, b, "rank {rank_a} and {rank_b} share core {a}");
        let layer = self.topo.layer_between(a, b);
        let base = self.model.latency_us(layer, size);
        let t = base * self.jitter(a, b, size);
        self.elapsed_us += t;
        t
    }

    /// Mean one-way latency over `reps` ping-pong iterations.
    pub fn ping_pong_us(&mut self, rank_a: usize, rank_b: usize, size: usize, reps: usize) -> f64 {
        assert!(reps > 0);
        let mut total = 0.0;
        for _ in 0..reps {
            total += self.send_latency_us(rank_a, rank_b, size);
            total += self.send_latency_us(rank_b, rank_a, size);
        }
        total / (2.0 * reps as f64)
    }

    /// Latencies when all `pairs` (by rank) send one `size`-byte message
    /// concurrently — the scalability probe of §III-D. The virtual clock
    /// advances by the slowest message.
    pub fn concurrent_send_latency_us(
        &mut self,
        pairs: &[(usize, usize)],
        size: usize,
    ) -> Vec<f64> {
        let core_pairs: Vec<(GlobalCore, GlobalCore)> = pairs
            .iter()
            .map(|&(ra, rb)| (self.core_of_rank(ra), self.core_of_rank(rb)))
            .collect();
        let slowdowns = self.contention.slowdowns(&self.topo, &core_pairs);
        let mut out = Vec::with_capacity(pairs.len());
        let mut worst = 0.0f64;
        for (&(a, b), &slow) in core_pairs.iter().zip(&slowdowns) {
            let layer = self.topo.layer_between(a, b);
            let base = self.model.latency_us(layer, size);
            let t = base * slow * self.jitter(a, b, size);
            worst = worst.max(t);
            out.push(t);
        }
        self.elapsed_us += worst;
        out
    }

    /// Total virtual time consumed so far, in µs.
    pub fn elapsed_us(&self) -> f64 {
        self.elapsed_us
    }

    /// Add non-messaging virtual time (e.g. local computation between
    /// measurements) to the ledger.
    pub fn charge_us(&mut self, us: f64) {
        self.elapsed_us += us;
    }

    /// Reset the virtual-time ledger.
    pub fn reset_clock(&mut self) {
        self.elapsed_us = 0.0;
        self.ops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::topology::Layer;

    fn ft() -> VirtualCluster {
        presets::finis_terrae_cluster(2)
    }

    #[test]
    fn latency_reflects_layers() {
        let mut c = ft();
        let intra_proc = c.send_latency_us(0, 1, 16 * 1024);
        let intra_cell = c.send_latency_us(0, 2, 16 * 1024);
        let intra_node = c.send_latency_us(0, 8, 16 * 1024);
        let inter_node = c.send_latency_us(0, 16, 16 * 1024);
        assert!(intra_proc < intra_cell);
        assert!(intra_cell < intra_node);
        assert!(intra_node < inter_node);
        // Paper: intra-node ≈ 2× faster than inter-node.
        let intra_avg = (intra_proc + intra_cell + intra_node) / 3.0;
        let ratio = inter_node / intra_avg;
        assert!((1.5..3.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let mut c1 = ft();
        let mut c2 = ft();
        for _ in 0..32 {
            let a = c1.send_latency_us(0, 16, 1024);
            let b = c2.send_latency_us(0, 16, 1024);
            assert_eq!(a, b);
        }
        let base = c1.model().latency_us(Layer::InterNode, 1024);
        let j = c1.model().jitter;
        let t = c1.send_latency_us(0, 16, 1024);
        assert!(t >= base * (1.0 - j) && t <= base * (1.0 + j));
    }

    #[test]
    fn repeated_sends_vary_within_jitter() {
        let mut c = ft();
        let a = c.send_latency_us(0, 16, 4096);
        let b = c.send_latency_us(0, 16, 4096);
        assert_ne!(a, b, "jitter should vary across trials");
    }

    #[test]
    fn ping_pong_averages() {
        let mut c = ft();
        let m = c.ping_pong_us(0, 16, 16 * 1024, 8);
        let base = c.model().latency_us(Layer::InterNode, 16 * 1024);
        assert!((m - base).abs() / base < 0.05, "mean {m} vs base {base}");
    }

    #[test]
    fn concurrent_sends_slow_down() {
        let mut c = ft();
        let solo = c.send_latency_us(0, 16, 16 * 1024);
        let pairs: Vec<(usize, usize)> = (0..16).map(|i| (i, 16 + i)).collect();
        let lat = c.concurrent_send_latency_us(&pairs, 16 * 1024);
        let worst = lat.iter().copied().fold(0.0, f64::max);
        assert!(
            worst > 3.0 * solo,
            "16 concurrent IB messages: {worst} vs {solo}"
        );
    }

    #[test]
    fn elapsed_accumulates() {
        let mut c = ft();
        assert_eq!(c.elapsed_us(), 0.0);
        let t = c.send_latency_us(0, 1, 1024);
        assert!((c.elapsed_us() - t).abs() < 1e-12);
        c.charge_us(100.0);
        assert!(c.elapsed_us() > 100.0);
        c.reset_clock();
        assert_eq!(c.elapsed_us(), 0.0);
    }

    #[test]
    fn affinity_changes_layers() {
        let mut c = ft();
        // Pin rank 0 to core 0 and rank 1 to core 16: the rank pair now
        // crosses the network.
        let mut aff: Vec<usize> = (0..32).collect();
        aff.swap(1, 16);
        c.set_affinity(aff);
        assert_eq!(c.core_of_rank(1), 16);
        let t01 = c.send_latency_us(0, 1, 16 * 1024);
        let base = c.model().latency_us(Layer::InterNode, 16 * 1024);
        assert!((t01 - base).abs() / base < 0.05);
        assert_eq!(c.num_ranks(), 32);
    }

    #[test]
    #[should_panic]
    fn duplicate_affinity_panics() {
        let mut c = ft();
        c.set_affinity(vec![0, 0]);
    }

    #[test]
    #[should_panic]
    fn rank_out_of_range_panics() {
        let mut c = ft();
        c.set_affinity(vec![0, 1]);
        // Rank 2 no longer exists after shrinking the job to 2 ranks.
        c.send_latency_us(0, 2, 64);
    }
}
