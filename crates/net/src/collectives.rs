//! Collective communication algorithms over the virtual cluster.
//!
//! The paper's motivation (§I, §V): codes that know the machine's
//! communication layers can pick hierarchy-aware collective algorithms
//! (e.g. Sistare et al., Sanders & Träff, Tipparaju et al. — refs \[5\]-\[7\])
//! instead of topology-blind ones. These simulated collectives let the
//! autotuning crate *evaluate* that choice against the same network model
//! the Servet benchmarks characterize.

use crate::cluster::VirtualCluster;
use serde::{Deserialize, Serialize};

/// Broadcast algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BcastAlgorithm {
    /// Root sends to every rank, one message at a time.
    Flat,
    /// Classic binomial tree over rank order, topology-blind.
    BinomialTree,
    /// Hierarchy-aware: binomial tree among node leaders over the network,
    /// then binomial trees inside each node in parallel.
    Hierarchical,
}

impl BcastAlgorithm {
    /// All algorithm variants.
    pub fn all() -> [BcastAlgorithm; 3] {
        [
            BcastAlgorithm::Flat,
            BcastAlgorithm::BinomialTree,
            BcastAlgorithm::Hierarchical,
        ]
    }

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            BcastAlgorithm::Flat => "flat",
            BcastAlgorithm::BinomialTree => "binomial",
            BcastAlgorithm::Hierarchical => "hierarchical",
        }
    }
}

/// Simulated completion time (µs) of broadcasting `size` bytes from rank 0
/// to `ranks` ranks using `algo`.
///
/// `ranks` must not exceed the cluster's rank count. Rank 0 is always the
/// root; callers wanting another root can re-pin affinities.
pub fn broadcast_time_us(
    c: &mut VirtualCluster,
    algo: BcastAlgorithm,
    ranks: usize,
    size: usize,
) -> f64 {
    assert!(ranks >= 1 && ranks <= c.num_ranks());
    match algo {
        BcastAlgorithm::Flat => {
            let mut t = 0.0;
            for r in 1..ranks {
                t += c.send_latency_us(0, r, size);
            }
            t
        }
        BcastAlgorithm::BinomialTree => binomial_time(c, &(0..ranks).collect::<Vec<_>>(), size),
        BcastAlgorithm::Hierarchical => {
            // Group ranks by the node their core sits on.
            let nodes = group_by_node(c, ranks);
            // Stage 1: binomial among node leaders.
            let leaders: Vec<usize> = nodes.iter().map(|g| g[0]).collect();
            let t_inter = binomial_time(c, &leaders, size);
            // Stage 2: per-node binomial trees, concurrently; the stage
            // costs as much as the slowest node.
            let t_intra = nodes
                .iter()
                .map(|g| binomial_time(c, g, size))
                .fold(0.0, f64::max);
            t_inter + t_intra
        }
    }
}

/// Completion time of a binomial-tree broadcast over the given ranks
/// (first rank is the root). Each round's messages are sent concurrently.
fn binomial_time(c: &mut VirtualCluster, ranks: &[usize], size: usize) -> f64 {
    let n = ranks.len();
    if n <= 1 {
        return 0.0;
    }
    let mut t = 0.0;
    let mut have = 1usize; // ranks[0..have] already hold the data
    while have < n {
        let senders = have.min(n - have);
        let pairs: Vec<(usize, usize)> =
            (0..senders).map(|i| (ranks[i], ranks[have + i])).collect();
        let lats = c.concurrent_send_latency_us(&pairs, size);
        t += lats.iter().copied().fold(0.0, f64::max);
        have += senders;
    }
    t
}

/// Allgather algorithm choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllgatherAlgorithm {
    /// `ranks - 1` rounds around a ring; each rank forwards the block it
    /// just received. Bandwidth-optimal, latency-heavy.
    Ring,
    /// Recursive doubling: `log2(ranks)` rounds of pairwise exchanges
    /// with doubling block sizes. Requires a power-of-two rank count.
    RecursiveDoubling,
}

impl AllgatherAlgorithm {
    /// All algorithm variants.
    pub fn all() -> [AllgatherAlgorithm; 2] {
        [
            AllgatherAlgorithm::Ring,
            AllgatherAlgorithm::RecursiveDoubling,
        ]
    }

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            AllgatherAlgorithm::Ring => "ring",
            AllgatherAlgorithm::RecursiveDoubling => "recursive-doubling",
        }
    }
}

/// Simulated completion time (µs) of an allgather where each of `ranks`
/// ranks contributes `block` bytes.
pub fn allgather_time_us(
    c: &mut VirtualCluster,
    algo: AllgatherAlgorithm,
    ranks: usize,
    block: usize,
) -> f64 {
    assert!(ranks >= 1 && ranks <= c.num_ranks());
    if ranks == 1 {
        return 0.0;
    }
    match algo {
        AllgatherAlgorithm::Ring => {
            let mut t = 0.0;
            for _round in 0..ranks - 1 {
                let pairs: Vec<(usize, usize)> = (0..ranks).map(|r| (r, (r + 1) % ranks)).collect();
                let lats = c.concurrent_send_latency_us(&pairs, block);
                t += lats.iter().copied().fold(0.0, f64::max);
            }
            t
        }
        AllgatherAlgorithm::RecursiveDoubling => {
            assert!(
                ranks.is_power_of_two(),
                "recursive doubling needs a power-of-two rank count"
            );
            let mut t = 0.0;
            let mut dist = 1usize;
            let mut chunk = block;
            while dist < ranks {
                // Every rank exchanges with its partner: both directions
                // are concurrent messages.
                let pairs: Vec<(usize, usize)> = (0..ranks).map(|r| (r, r ^ dist)).collect();
                let lats = c.concurrent_send_latency_us(&pairs, chunk);
                t += lats.iter().copied().fold(0.0, f64::max);
                chunk *= 2;
                dist *= 2;
            }
            t
        }
    }
}

/// Ranks `0..ranks` grouped by node, each group in rank order.
fn group_by_node(c: &VirtualCluster, ranks: usize) -> Vec<Vec<usize>> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for r in 0..ranks {
        let node = c.topology().node_of(c.core_of_rank(r));
        match groups.iter_mut().find(|(n, _)| *n == node) {
            Some((_, g)) => g.push(r),
            None => groups.push((node, vec![r])),
        }
    }
    groups.sort_by_key(|(n, _)| *n);
    groups.into_iter().map(|(_, g)| g).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn flat_broadcast_is_sum_of_sends() {
        let mut c = presets::tiny_cluster();
        let t = broadcast_time_us(&mut c, BcastAlgorithm::Flat, 4, 1024);
        assert!(t > 0.0);
        // 3 sends, each ≥ the fastest layer's latency.
        assert!(t >= 3.0 * 0.3 * 0.9);
    }

    #[test]
    fn binomial_beats_flat_at_scale() {
        let mut c1 = presets::finis_terrae_cluster(2);
        let mut c2 = presets::finis_terrae_cluster(2);
        let flat = broadcast_time_us(&mut c1, BcastAlgorithm::Flat, 32, 16 * 1024);
        let tree = broadcast_time_us(&mut c2, BcastAlgorithm::BinomialTree, 32, 16 * 1024);
        assert!(tree < flat, "tree {tree} vs flat {flat}");
    }

    #[test]
    fn hierarchical_beats_blind_binomial_across_nodes() {
        // Rank order interleaves nodes badly for the blind tree only when
        // ranks alternate; with the identity affinity the blind binomial
        // sends many inter-node messages, the hierarchical one sends
        // exactly log2(#nodes) rounds of them.
        let mut c1 = presets::finis_terrae_cluster(4);
        let mut c2 = presets::finis_terrae_cluster(4);
        let blind = broadcast_time_us(&mut c1, BcastAlgorithm::BinomialTree, 64, 32 * 1024);
        let hier = broadcast_time_us(&mut c2, BcastAlgorithm::Hierarchical, 64, 32 * 1024);
        assert!(hier < blind, "hier {hier} vs blind {blind}");
    }

    #[test]
    fn single_rank_broadcast_is_free() {
        let mut c = presets::tiny_cluster();
        for algo in BcastAlgorithm::all() {
            assert_eq!(broadcast_time_us(&mut c, algo, 1, 4096), 0.0);
        }
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(BcastAlgorithm::Flat.name(), "flat");
        assert_eq!(BcastAlgorithm::BinomialTree.name(), "binomial");
        assert_eq!(BcastAlgorithm::Hierarchical.name(), "hierarchical");
    }

    #[test]
    fn allgather_algorithms_complete() {
        let mut c = presets::finis_terrae_cluster(2);
        let ring = allgather_time_us(&mut c, AllgatherAlgorithm::Ring, 32, 4 * 1024);
        let mut c = presets::finis_terrae_cluster(2);
        let rd = allgather_time_us(&mut c, AllgatherAlgorithm::RecursiveDoubling, 32, 4 * 1024);
        assert!(ring > 0.0 && rd > 0.0);
        // For small blocks, the logarithmic algorithm beats the ring's
        // 31 latency-bound rounds.
        assert!(rd < ring, "rd {rd} vs ring {ring}");
    }

    #[test]
    fn allgather_single_rank_free() {
        let mut c = presets::tiny_cluster();
        for algo in AllgatherAlgorithm::all() {
            assert_eq!(allgather_time_us(&mut c, algo, 1, 1024), 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn recursive_doubling_requires_power_of_two() {
        let mut c = presets::tiny_cluster();
        allgather_time_us(&mut c, AllgatherAlgorithm::RecursiveDoubling, 6, 64);
    }

    #[test]
    fn allgather_names() {
        assert_eq!(AllgatherAlgorithm::Ring.name(), "ring");
        assert_eq!(
            AllgatherAlgorithm::RecursiveDoubling.name(),
            "recursive-doubling"
        );
    }

    #[test]
    fn group_by_node_partitions_ranks() {
        let c = presets::finis_terrae_cluster(2);
        let groups = group_by_node(&c, 32);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (0..16).collect::<Vec<_>>());
        assert_eq!(groups[1], (16..32).collect::<Vec<_>>());
    }
}
