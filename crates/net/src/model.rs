//! Per-layer piecewise latency models.
//!
//! Real MPI implementations on multicore clusters switch protocols with
//! message size (eager below a threshold, rendezvous above) and change
//! effective bandwidth when transfers stop fitting in shared caches. The
//! paper's §III-D argues that this piecewise structure is exactly why the
//! classic single-line models (Hockney, LogP) "show poor accuracy on current
//! communication middleware on multicore clusters" — so the simulator's
//! ground truth is built piecewise, and the Servet benchmark characterizes
//! it empirically, segment by segment.

use crate::topology::Layer;
use serde::{Deserialize, Serialize};

/// One protocol segment: for message sizes up to `max_size` bytes, latency
/// is `base_us + size * per_byte_ns / 1000` microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolSegment {
    /// Largest message size (bytes, inclusive) this segment covers.
    pub max_size: usize,
    /// Fixed startup cost in microseconds.
    pub base_us: f64,
    /// Marginal cost per byte in nanoseconds.
    pub per_byte_ns: f64,
}

impl ProtocolSegment {
    /// Latency of a `size`-byte message under this segment, in µs.
    pub fn latency_us(&self, size: usize) -> f64 {
        self.base_us + size as f64 * self.per_byte_ns / 1000.0
    }
}

/// Piecewise latency model of one communication layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerModel {
    /// Segments ordered by `max_size`; the last one must cover `usize::MAX`.
    pub segments: Vec<ProtocolSegment>,
}

impl LayerModel {
    /// Build from segments; panics if unordered or not covering all sizes
    /// (models are compiled-in presets, not user input).
    pub fn new(segments: Vec<ProtocolSegment>) -> Self {
        assert!(!segments.is_empty(), "layer model needs segments");
        for w in segments.windows(2) {
            assert!(w[0].max_size < w[1].max_size, "segments out of order");
        }
        assert_eq!(
            segments.last().unwrap().max_size,
            usize::MAX,
            "last segment must be unbounded"
        );
        Self { segments }
    }

    /// The segment serving a `size`-byte message.
    pub fn segment_for(&self, size: usize) -> &ProtocolSegment {
        self.segments
            .iter()
            .find(|s| size <= s.max_size)
            .expect("last segment is unbounded")
    }

    /// Latency of a `size`-byte message, in µs.
    pub fn latency_us(&self, size: usize) -> f64 {
        self.segment_for(size).latency_us(size)
    }

    /// Effective bandwidth of a `size`-byte message, in GB/s.
    pub fn bandwidth_gbs(&self, size: usize) -> f64 {
        if size == 0 {
            return 0.0;
        }
        size as f64 / (self.latency_us(size) * 1000.0)
    }
}

/// The complete communication model of a cluster: one [`LayerModel`] per
/// layer present, plus measurement jitter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommModel {
    layers: Vec<(Layer, LayerModel)>,
    /// Relative measurement jitter applied deterministically per
    /// `(pair, size)` query, so repeated benchmark trials look realistic
    /// without breaking reproducibility.
    pub jitter: f64,
}

impl CommModel {
    /// Build from `(layer, model)` pairs.
    pub fn new(layers: Vec<(Layer, LayerModel)>, jitter: f64) -> Self {
        assert!(!layers.is_empty());
        Self { layers, jitter }
    }

    /// The model for `layer`; panics if the cluster preset lacks it —
    /// topology and model presets are built together.
    pub fn layer(&self, layer: Layer) -> &LayerModel {
        &self
            .layers
            .iter()
            .find(|(l, _)| *l == layer)
            .unwrap_or_else(|| panic!("no model for layer {layer:?}"))
            .1
    }

    /// Layers present in this model.
    pub fn layers(&self) -> Vec<Layer> {
        self.layers.iter().map(|(l, _)| *l).collect()
    }

    /// Noise-free latency for a message over `layer`.
    pub fn latency_us(&self, layer: Layer, size: usize) -> f64 {
        self.layer(layer).latency_us(size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_model() -> LayerModel {
        LayerModel::new(vec![
            ProtocolSegment {
                max_size: 64 * 1024,
                base_us: 1.0,
                per_byte_ns: 0.2,
            },
            ProtocolSegment {
                max_size: usize::MAX,
                base_us: 5.0,
                per_byte_ns: 0.4,
            },
        ])
    }

    #[test]
    fn latency_within_segment_is_linear() {
        let m = simple_model();
        assert!((m.latency_us(0) - 1.0).abs() < 1e-12);
        assert!((m.latency_us(1000) - 1.2).abs() < 1e-12);
        assert!((m.latency_us(10_000) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn protocol_switch_jumps() {
        let m = simple_model();
        let before = m.latency_us(64 * 1024);
        let after = m.latency_us(64 * 1024 + 1);
        assert!(after > before, "rendezvous switch should cost");
    }

    #[test]
    fn bandwidth_rises_and_saturates() {
        let m = simple_model();
        let small = m.bandwidth_gbs(64);
        let large = m.bandwidth_gbs(16 * 1024 * 1024);
        assert!(small < large);
        // Asymptote of the large segment: 1/0.4 ns per byte = 2.5 GB/s.
        assert!((large - 2.5).abs() < 0.1, "large = {large}");
        assert_eq!(m.bandwidth_gbs(0), 0.0);
    }

    #[test]
    fn segment_selection_boundary_inclusive() {
        let m = simple_model();
        assert_eq!(m.segment_for(64 * 1024).max_size, 64 * 1024);
        assert_eq!(m.segment_for(64 * 1024 + 1).max_size, usize::MAX);
    }

    #[test]
    #[should_panic]
    fn unordered_segments_panic() {
        LayerModel::new(vec![
            ProtocolSegment {
                max_size: usize::MAX,
                base_us: 1.0,
                per_byte_ns: 0.1,
            },
            ProtocolSegment {
                max_size: 10,
                base_us: 1.0,
                per_byte_ns: 0.1,
            },
        ]);
    }

    #[test]
    #[should_panic]
    fn unbounded_tail_required() {
        LayerModel::new(vec![ProtocolSegment {
            max_size: 1024,
            base_us: 1.0,
            per_byte_ns: 0.1,
        }]);
    }

    #[test]
    fn comm_model_lookup() {
        let cm = CommModel::new(
            vec![
                (Layer::SharedCache, simple_model()),
                (Layer::IntraNode, simple_model()),
            ],
            0.02,
        );
        assert_eq!(cm.layers(), vec![Layer::SharedCache, Layer::IntraNode]);
        assert!((cm.latency_us(Layer::SharedCache, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn missing_layer_panics() {
        let cm = CommModel::new(vec![(Layer::SharedCache, simple_model())], 0.0);
        cm.layer(Layer::InterNode);
    }
}
