//! Baseline communication models: Hockney and LogGP.
//!
//! §III-D: "Traditionally, the characterization of the communication
//! overhead has been done using extensions either of the LogP model or of
//! the Hockney's linear model. However, both of them show poor accuracy on
//! current communication middleware on multicore clusters." These fits are
//! implemented so the ablation benchmark can quantify that inaccuracy
//! against Servet's per-layer piecewise characterization.

use serde::{Deserialize, Serialize};
use servet_stats::regress::fit_line;

/// Hockney's linear model: `T(s) = latency + s / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HockneyModel {
    /// Startup latency in µs.
    pub latency_us: f64,
    /// Asymptotic bandwidth in bytes/µs (equal to MB/s ÷ 1, i.e. 1e-3 GB/s
    /// per unit).
    pub bytes_per_us: f64,
}

impl HockneyModel {
    /// Least-squares fit over `(size_bytes, latency_us)` samples. Returns
    /// `None` when the samples cannot determine a line or imply
    /// non-positive bandwidth.
    pub fn fit(samples: &[(usize, f64)]) -> Option<Self> {
        let xs: Vec<f64> = samples.iter().map(|&(s, _)| s as f64).collect();
        let ys: Vec<f64> = samples.iter().map(|&(_, t)| t).collect();
        let fit = fit_line(&xs, &ys)?;
        if fit.slope <= 0.0 {
            return None;
        }
        Some(Self {
            latency_us: fit.intercept,
            bytes_per_us: 1.0 / fit.slope,
        })
    }

    /// Predicted latency for a `size`-byte message, µs.
    pub fn predict_us(&self, size: usize) -> f64 {
        self.latency_us + size as f64 / self.bytes_per_us
    }

    /// Mean relative prediction error over samples.
    pub fn mean_relative_error(&self, samples: &[(usize, f64)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples
            .iter()
            .map(|&(s, t)| ((self.predict_us(s) - t) / t).abs())
            .sum::<f64>()
            / samples.len() as f64
    }
}

/// A LogGP-style fit: `T(s) = L + 2o + (s - 1) * G`, with the small-message
/// overhead `o` and per-byte gap `G` estimated separately from small and
/// large message samples.
///
/// LogGP extends LogP with a large-message gap-per-byte `G`; like Hockney it
/// remains a *single* line per network and therefore cannot express protocol
/// switches or per-layer differences.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogGpModel {
    /// Combined constant term `L + 2o`, µs.
    pub l_plus_2o_us: f64,
    /// Gap per byte `G`, µs.
    pub gap_per_byte_us: f64,
}

impl LogGpModel {
    /// Fit: the constant term from the smallest-message sample, the gap
    /// from a least-squares slope over all samples.
    pub fn fit(samples: &[(usize, f64)]) -> Option<Self> {
        if samples.len() < 2 {
            return None;
        }
        let min = samples
            .iter()
            .min_by_key(|&&(s, _)| s)
            .expect("non-empty samples");
        let xs: Vec<f64> = samples.iter().map(|&(s, _)| s as f64).collect();
        let ys: Vec<f64> = samples.iter().map(|&(_, t)| t).collect();
        let fit = fit_line(&xs, &ys)?;
        if fit.slope <= 0.0 {
            return None;
        }
        Some(Self {
            l_plus_2o_us: min.1.min(fit.intercept.max(0.0)),
            gap_per_byte_us: fit.slope,
        })
    }

    /// Predicted latency for a `size`-byte message, µs.
    pub fn predict_us(&self, size: usize) -> f64 {
        self.l_plus_2o_us + (size.saturating_sub(1)) as f64 * self.gap_per_byte_us
    }

    /// Mean relative prediction error over samples.
    pub fn mean_relative_error(&self, samples: &[(usize, f64)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples
            .iter()
            .map(|&(s, t)| ((self.predict_us(s) - t) / t).abs())
            .sum::<f64>()
            / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_samples() -> Vec<(usize, f64)> {
        // Perfect Hockney network: 2 µs + s / 1000 bytes-per-µs.
        [64usize, 256, 1024, 4096, 16384]
            .iter()
            .map(|&s| (s, 2.0 + s as f64 / 1000.0))
            .collect()
    }

    #[test]
    fn hockney_recovers_linear_network() {
        let m = HockneyModel::fit(&linear_samples()).unwrap();
        assert!((m.latency_us - 2.0).abs() < 1e-6);
        assert!((m.bytes_per_us - 1000.0).abs() < 1e-3);
        assert!(m.mean_relative_error(&linear_samples()) < 1e-9);
    }

    #[test]
    fn hockney_rejects_degenerate_input() {
        assert!(HockneyModel::fit(&[(64, 1.0)]).is_none());
        assert!(HockneyModel::fit(&[(64, 5.0), (128, 4.0), (256, 3.0)]).is_none());
    }

    #[test]
    fn hockney_misfits_piecewise_network() {
        // Protocol switch at 8 KB: eager 1 µs + 0.1 ns/B, rendezvous
        // 20 µs + 0.4 ns/B. One line cannot capture both.
        let samples: Vec<(usize, f64)> = [256usize, 1024, 4096, 8192, 32768, 131072, 1 << 20]
            .iter()
            .map(|&s| {
                let t = if s <= 8192 {
                    1.0 + s as f64 * 0.1 / 1000.0
                } else {
                    20.0 + s as f64 * 0.4 / 1000.0
                };
                (s, t)
            })
            .collect();
        let m = HockneyModel::fit(&samples).unwrap();
        assert!(
            m.mean_relative_error(&samples) > 0.5,
            "err = {}",
            m.mean_relative_error(&samples)
        );
    }

    #[test]
    fn loggp_predicts_monotonically() {
        let m = LogGpModel::fit(&linear_samples()).unwrap();
        assert!(m.predict_us(64) < m.predict_us(4096));
        assert!(m.mean_relative_error(&linear_samples()) < 0.5);
    }

    #[test]
    fn loggp_rejects_degenerate_input() {
        assert!(LogGpModel::fit(&[(64, 1.0)]).is_none());
    }
}
