//! # servet-net
//!
//! Cluster interconnect simulator for the Servet reproduction.
//!
//! The communication-cost benchmark (paper §III-D) measures message latency
//! between every pair of cores of a multicore cluster, groups pairs into
//! *communication layers*, characterizes each layer's point-to-point
//! bandwidth across message sizes, and probes each interconnect's
//! scalability under concurrent messages. This crate provides the cluster
//! those measurements run against:
//!
//! * [`topology`] — where each core sits (node / cell / processor /
//!   L2-sharing group) and the ground-truth communication layer between any
//!   two cores.
//! * [`model`] — per-layer piecewise latency models with eager/rendezvous
//!   protocol switches and cache-exhaustion knees, the structure that makes
//!   single-line models (Hockney, LogP) inaccurate on multicore clusters.
//! * [`contention`] — slowdown of concurrent messages sharing a bus or an
//!   InfiniBand link (the paper's "a message sent through the InfiniBand
//!   network when there are other 31 messages is 7 times slower").
//! * [`cluster`] — [`cluster::VirtualCluster`]: ranks, affinity, timed
//!   sends, concurrent sends, collectives, and a virtual-time ledger used to
//!   reproduce Table I.
//! * [`baselines`] — Hockney and LogGP model fits (§III-D's related work),
//!   implemented as comparison baselines.
//! * [`presets`] — the paper's two cluster configurations: the Dunnington
//!   node and Finis Terrae over InfiniBand.

pub mod baselines;
pub mod cluster;
pub mod collectives;
pub mod contention;
pub mod model;
pub mod presets;
pub mod topology;

pub use cluster::VirtualCluster;
pub use contention::ContentionModel;
pub use model::{CommModel, LayerModel, ProtocolSegment};
pub use topology::{ClusterTopology, Layer};
