//! Cluster topology: core placement and ground-truth communication layers.
//!
//! A cluster is `num_nodes` identical shared-memory nodes. Within a node,
//! each core belongs to a cell (NUMA domain), a processor (socket) and
//! possibly an L2-sharing group; between nodes, messages cross the
//! interconnection network. The communication layer of a core pair is fully
//! determined by the closest structure the two cores share — this is the
//! hierarchy the paper's Fig. 7 benchmark discovers experimentally.

use serde::{Deserialize, Serialize};

/// A cluster-wide core index: `node * cores_per_node + local_core`.
pub type GlobalCore = usize;

/// Communication layer between two cores, ordered from fastest to slowest.
///
/// Not every machine exhibits every layer: Dunnington (single node) has
/// `SharedCache` / `IntraProcessor` / `IntraNode`; Finis Terrae has
/// `IntraCell` / `IntraNode` / `InterNode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// The pair shares a cache level (e.g. Dunnington L2 pairs): transfers
    /// can complete inside the cache.
    SharedCache,
    /// Same socket, no shared cache between exactly this pair (e.g. two
    /// cores of a hexa-core sharing only L3).
    IntraProcessor,
    /// Same NUMA cell, different sockets.
    IntraCell,
    /// Same node, different cells (or different sockets on a flat node).
    IntraNode,
    /// Different nodes: the message crosses the cluster network.
    InterNode,
}

impl Layer {
    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Layer::SharedCache => "shared-cache",
            Layer::IntraProcessor => "intra-processor",
            Layer::IntraCell => "intra-cell",
            Layer::IntraNode => "intra-node",
            Layer::InterNode => "inter-node",
        }
    }
}

/// Placement of every core of a cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTopology {
    /// Human-readable cluster name.
    pub name: String,
    /// Number of identical nodes.
    pub num_nodes: usize,
    /// Cores per node.
    pub cores_per_node: usize,
    /// `cell_of[local_core]` — NUMA cell within the node.
    pub cell_of: Vec<usize>,
    /// `proc_of[local_core]` — socket within the node.
    pub proc_of: Vec<usize>,
    /// `l2_group_of[local_core]` — L2 sharing group within the node; cores
    /// with private L2s get unique group ids.
    pub l2_group_of: Vec<usize>,
}

impl ClusterTopology {
    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_nodes == 0 || self.cores_per_node == 0 {
            return Err("empty cluster".into());
        }
        for (name, v) in [
            ("cell_of", &self.cell_of),
            ("proc_of", &self.proc_of),
            ("l2_group_of", &self.l2_group_of),
        ] {
            if v.len() != self.cores_per_node {
                return Err(format!(
                    "{name} has {} entries, want {}",
                    v.len(),
                    self.cores_per_node
                ));
            }
        }
        Ok(())
    }

    /// Total number of cores in the cluster.
    pub fn total_cores(&self) -> usize {
        self.num_nodes * self.cores_per_node
    }

    /// Node of a global core.
    pub fn node_of(&self, core: GlobalCore) -> usize {
        core / self.cores_per_node
    }

    /// Local index of a global core within its node.
    pub fn local_of(&self, core: GlobalCore) -> usize {
        core % self.cores_per_node
    }

    /// Ground-truth communication layer between two distinct cores.
    pub fn layer_between(&self, a: GlobalCore, b: GlobalCore) -> Layer {
        assert_ne!(a, b, "no layer between a core and itself");
        if self.node_of(a) != self.node_of(b) {
            return Layer::InterNode;
        }
        let (la, lb) = (self.local_of(a), self.local_of(b));
        if self.l2_group_of[la] == self.l2_group_of[lb] {
            Layer::SharedCache
        } else if self.proc_of[la] == self.proc_of[lb] {
            Layer::IntraProcessor
        } else if self.cell_of[la] == self.cell_of[lb] && self.num_cells() > 1 {
            Layer::IntraCell
        } else {
            Layer::IntraNode
        }
    }

    /// Number of distinct cells per node.
    pub fn num_cells(&self) -> usize {
        let mut cells: Vec<usize> = self.cell_of.clone();
        cells.sort_unstable();
        cells.dedup();
        cells.len()
    }

    /// The distinct layers this topology exhibits, fastest first.
    pub fn layers_present(&self, max_cores: Option<usize>) -> Vec<Layer> {
        let total = max_cores
            .unwrap_or(self.total_cores())
            .min(self.total_cores());
        let mut layers = Vec::new();
        for a in 0..total {
            for b in a + 1..total {
                let l = self.layer_between(a, b);
                if !layers.contains(&l) {
                    layers.push(l);
                }
            }
        }
        layers.sort();
        layers
    }

    /// All unordered pairs among the first `n` cores (or all cores).
    pub fn pairs(&self, n: Option<usize>) -> Vec<(GlobalCore, GlobalCore)> {
        let total = n.unwrap_or(self.total_cores()).min(self.total_cores());
        let mut out = Vec::new();
        for a in 0..total {
            for b in a + 1..total {
                out.push((a, b));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn dunnington_layers() {
        let t = presets::dunnington_topology();
        t.validate().unwrap();
        assert_eq!(t.total_cores(), 24);
        // Paper Fig. 10(a): core 0 ↔ 12 share L2; 0 ↔ 1 share the hexa-core;
        // 0 ↔ 3 are on different processors.
        assert_eq!(t.layer_between(0, 12), Layer::SharedCache);
        assert_eq!(t.layer_between(0, 1), Layer::IntraProcessor);
        assert_eq!(t.layer_between(0, 13), Layer::IntraProcessor);
        assert_eq!(t.layer_between(0, 3), Layer::IntraNode);
        let layers = t.layers_present(None);
        assert_eq!(
            layers,
            vec![Layer::SharedCache, Layer::IntraProcessor, Layer::IntraNode]
        );
    }

    #[test]
    fn finis_terrae_layer_structure() {
        // Cores 0-7 in cell 0, 8-15 in cell 1, 16+ on node 1. The Itanium
        // dual-cores have private L2s, so a same-socket pair is
        // IntraProcessor, never SharedCache.
        let t = presets::finis_terrae_topology(2);
        t.validate().unwrap();
        assert_eq!(t.total_cores(), 32);
        assert_eq!(t.layer_between(0, 1), Layer::IntraProcessor);
        assert_eq!(t.layer_between(0, 2), Layer::IntraCell);
        assert_eq!(t.layer_between(0, 8), Layer::IntraNode);
        assert_eq!(t.layer_between(0, 16), Layer::InterNode);
        assert_eq!(t.layer_between(5, 21), Layer::InterNode);
        let layers = t.layers_present(None);
        assert_eq!(
            layers,
            vec![
                Layer::IntraProcessor,
                Layer::IntraCell,
                Layer::IntraNode,
                Layer::InterNode
            ]
        );
    }

    #[test]
    fn layer_is_symmetric() {
        let t = presets::finis_terrae_topology(2);
        for &(a, b) in t.pairs(Some(12)).iter() {
            assert_eq!(t.layer_between(a, b), t.layer_between(b, a));
        }
    }

    #[test]
    #[should_panic]
    fn self_layer_panics() {
        let t = presets::dunnington_topology();
        t.layer_between(3, 3);
    }

    #[test]
    fn pairs_count() {
        let t = presets::dunnington_topology();
        assert_eq!(t.pairs(None).len(), 276);
        assert_eq!(t.pairs(Some(4)).len(), 6);
    }

    #[test]
    fn node_and_local_math() {
        let t = presets::finis_terrae_topology(3);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(16), 1);
        assert_eq!(t.node_of(47), 2);
        assert_eq!(t.local_of(17), 1);
        assert_eq!(t.num_cells(), 2);
    }

    #[test]
    fn validation_catches_bad_lengths() {
        let mut t = presets::dunnington_topology();
        t.cell_of.pop();
        assert!(t.validate().is_err());
    }

    #[test]
    fn layer_names_are_stable() {
        assert_eq!(Layer::SharedCache.name(), "shared-cache");
        assert_eq!(Layer::InterNode.name(), "inter-node");
    }

    #[test]
    fn layer_ordering_fastest_first() {
        assert!(Layer::SharedCache < Layer::IntraProcessor);
        assert!(Layer::IntraProcessor < Layer::IntraCell);
        assert!(Layer::IntraCell < Layer::IntraNode);
        assert!(Layer::IntraNode < Layer::InterNode);
    }
}
