//! Cluster presets: the paper's two evaluation clusters.
//!
//! The latency parameters are representative of the middleware the paper
//! used (MPICH2 1.1.1 shared memory on Dunnington; HP MPI 2.2.5.1 with SHM
//! and InfiniBand IBV devices on Finis Terrae). As with the machine presets,
//! the *shape* is what matters: layer ordering, the ~2× intra/inter-node
//! gap, eager→rendezvous knees, and the contention coefficients that make
//! 32 concurrent InfiniBand messages ~7× slower.

use crate::cluster::VirtualCluster;
use crate::contention::ContentionModel;
use crate::model::{CommModel, LayerModel, ProtocolSegment};
use crate::topology::{ClusterTopology, Layer};

const KB: usize = 1024;
const MB: usize = 1024 * 1024;

fn seg(max_size: usize, base_us: f64, per_byte_ns: f64) -> ProtocolSegment {
    ProtocolSegment {
        max_size,
        base_us,
        per_byte_ns,
    }
}

/// Topology of the 24-core Dunnington node (a single-node "cluster").
///
/// Socket `p` holds cores `{3p..3p+2} ∪ {3p+12..3p+14}`; L2 pairs are
/// `(3p+i, 3p+12+i)` — matching the spec in `servet_sim::presets` and the
/// paper's Fig. 8(a).
pub fn dunnington_topology() -> ClusterTopology {
    let cores = 24;
    let mut proc_of = vec![0usize; cores];
    let mut l2_group_of = vec![0usize; cores];
    for p in 0..4 {
        for i in 0..3 {
            proc_of[3 * p + i] = p;
            proc_of[3 * p + 12 + i] = p;
            l2_group_of[3 * p + i] = 3 * p + i;
            l2_group_of[3 * p + 12 + i] = 3 * p + i;
        }
    }
    ClusterTopology {
        name: "dunnington".into(),
        num_nodes: 1,
        cores_per_node: cores,
        cell_of: vec![0; cores],
        proc_of,
        l2_group_of,
    }
}

/// Communication model of the Dunnington node (MPICH2 shared memory).
pub fn dunnington_comm_model() -> CommModel {
    CommModel::new(
        vec![
            (
                Layer::SharedCache,
                LayerModel::new(vec![
                    seg(64 * KB, 0.4, 0.15),
                    seg(2 * MB, 2.0, 0.25),
                    seg(usize::MAX, 3.0, 0.50),
                ]),
            ),
            (
                Layer::IntraProcessor,
                LayerModel::new(vec![
                    seg(64 * KB, 0.6, 0.20),
                    seg(8 * MB, 2.5, 0.30),
                    seg(usize::MAX, 3.5, 0.55),
                ]),
            ),
            (
                Layer::IntraNode,
                LayerModel::new(vec![seg(64 * KB, 0.9, 0.45), seg(usize::MAX, 3.0, 0.50)]),
            ),
        ],
        0.02,
    )
}

/// Topology of `nodes` Finis Terrae nodes: 16 cores per node in two cells
/// of four dual-core sockets; all caches private.
pub fn finis_terrae_topology(nodes: usize) -> ClusterTopology {
    let cores = 16;
    ClusterTopology {
        name: "finis_terrae".into(),
        num_nodes: nodes,
        cores_per_node: cores,
        cell_of: (0..cores).map(|c| c / 8).collect(),
        proc_of: (0..cores).map(|c| c / 2).collect(),
        // Private L2s: unique group per core.
        l2_group_of: (0..cores).collect(),
    }
}

/// Communication model of Finis Terrae (HP MPI: SHM intra-node, IBV
/// inter-node over 20 Gbps InfiniBand).
pub fn finis_terrae_comm_model() -> CommModel {
    CommModel::new(
        vec![
            (
                Layer::IntraProcessor,
                LayerModel::new(vec![seg(64 * KB, 0.5, 0.25), seg(usize::MAX, 2.0, 0.40)]),
            ),
            (
                Layer::IntraCell,
                LayerModel::new(vec![seg(64 * KB, 0.7, 0.33), seg(usize::MAX, 2.4, 0.45)]),
            ),
            (
                Layer::IntraNode,
                LayerModel::new(vec![seg(64 * KB, 0.9, 0.42), seg(usize::MAX, 3.0, 0.50)]),
            ),
            (
                Layer::InterNode,
                LayerModel::new(vec![seg(12 * KB, 3.0, 0.40), seg(usize::MAX, 8.0, 0.38)]),
            ),
        ],
        0.02,
    )
}

/// Default contention coefficients: `alpha_nic = 6/31` makes one of 32
/// concurrent InfiniBand messages exactly 7× slower (paper Fig. 10b);
/// buses degrade a little faster per extra message; shared-cache
/// transfers barely contend.
pub fn contention_default() -> ContentionModel {
    ContentionModel {
        alpha_bus: 0.25,
        alpha_nic: 6.0 / 31.0,
        alpha_cache: 0.01,
    }
}

/// The Dunnington node as a ready-to-measure cluster.
pub fn dunnington_cluster() -> VirtualCluster {
    VirtualCluster::new(
        dunnington_topology(),
        dunnington_comm_model(),
        contention_default(),
    )
}

/// `nodes` Finis Terrae nodes as a ready-to-measure cluster. The paper
/// uses 2 nodes (32 cores), "enough to characterize all the different
/// communication costs".
pub fn finis_terrae_cluster(nodes: usize) -> VirtualCluster {
    VirtualCluster::new(
        finis_terrae_topology(nodes),
        finis_terrae_comm_model(),
        contention_default(),
    )
}

/// A 2-node × 4-core toy cluster for fast tests: cores 0-1 share a cache,
/// all four cores of a node share the bus.
pub fn tiny_cluster() -> VirtualCluster {
    let topo = ClusterTopology {
        name: "tiny".into(),
        num_nodes: 2,
        cores_per_node: 4,
        cell_of: vec![0; 4],
        proc_of: vec![0, 0, 1, 1],
        l2_group_of: vec![0, 0, 1, 2],
    };
    let model = CommModel::new(
        vec![
            (
                Layer::SharedCache,
                LayerModel::new(vec![seg(16 * KB, 0.3, 0.1), seg(usize::MAX, 1.0, 0.2)]),
            ),
            (
                Layer::IntraProcessor,
                LayerModel::new(vec![seg(16 * KB, 0.5, 0.15), seg(usize::MAX, 1.5, 0.3)]),
            ),
            (
                Layer::IntraNode,
                LayerModel::new(vec![seg(16 * KB, 0.8, 0.3), seg(usize::MAX, 2.0, 0.45)]),
            ),
            (
                Layer::InterNode,
                LayerModel::new(vec![seg(8 * KB, 2.0, 0.4), seg(usize::MAX, 6.0, 0.4)]),
            ),
        ],
        0.02,
    );
    VirtualCluster::new(topo, model, contention_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dunnington_layer_latency_ordering_at_l1_size() {
        // Fig. 10(a): at the 32 KB (L1) message size, shared-L2 beats
        // intra-processor beats inter-processor.
        let m = dunnington_comm_model();
        let s = 32 * KB;
        let sc = m.latency_us(Layer::SharedCache, s);
        let ip = m.latency_us(Layer::IntraProcessor, s);
        let inode = m.latency_us(Layer::IntraNode, s);
        assert!(sc < ip && ip < inode, "{sc} {ip} {inode}");
        // Layers must be separable by the suite's clustering tolerance.
        assert!(ip / sc > 1.2, "ip/sc = {}", ip / sc);
        assert!(inode / ip > 1.2, "inode/ip = {}", inode / ip);
    }

    #[test]
    fn finis_terrae_inter_node_roughly_2x() {
        let m = finis_terrae_comm_model();
        let s = 16 * KB;
        let intra = [
            m.latency_us(Layer::IntraProcessor, s),
            m.latency_us(Layer::IntraCell, s),
            m.latency_us(Layer::IntraNode, s),
        ];
        let inter = m.latency_us(Layer::InterNode, s);
        let mean_intra: f64 = intra.iter().sum::<f64>() / 3.0;
        let ratio = inter / mean_intra;
        assert!((1.7..3.0).contains(&ratio), "ratio = {ratio}");
        // Adjacent intra layers separable at ≥ 20 %.
        assert!(intra[1] / intra[0] > 1.2);
        assert!(intra[2] / intra[1] > 1.2);
    }

    #[test]
    fn infiniband_asymptotic_bandwidth() {
        // 20 Gbps InfiniBand ≈ 2.5 GB/s effective.
        let m = finis_terrae_comm_model();
        let bw = m.layer(Layer::InterNode).bandwidth_gbs(16 * MB);
        assert!((2.0..3.0).contains(&bw), "bw = {bw}");
    }

    #[test]
    fn shared_cache_bandwidth_beats_bus_at_medium_sizes() {
        let m = dunnington_comm_model();
        let s = 1 * MB;
        let sc = m.layer(Layer::SharedCache).bandwidth_gbs(s);
        let inn = m.layer(Layer::IntraNode).bandwidth_gbs(s);
        assert!(sc > inn, "{sc} vs {inn}");
    }

    #[test]
    fn tiny_cluster_is_consistent() {
        let c = tiny_cluster();
        assert_eq!(c.num_ranks(), 8);
        assert_eq!(c.topology().layers_present(None).len(), 4);
    }

    #[test]
    fn preset_clusters_construct() {
        assert_eq!(dunnington_cluster().num_ranks(), 24);
        assert_eq!(finis_terrae_cluster(2).num_ranks(), 32);
        assert_eq!(
            finis_terrae_cluster(1)
                .topology()
                .layers_present(None)
                .len(),
            3
        );
    }
}
