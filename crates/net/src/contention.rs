//! Contention of concurrent messages on shared interconnect resources.
//!
//! §III-D: "Sending concurrently N messages of size S usually costs more
//! than sending one message of size N*S" — cluster networks and memory
//! buses serialize part of each transfer. The model here assigns every
//! message a bottleneck resource from its communication layer and applies a
//! linear slowdown `1 + alpha * (n - 1)` where `n` is the number of
//! concurrent messages on that resource. `alpha` is per-resource: an
//! InfiniBand link with `alpha ≈ 0.19` reproduces the paper's "32 concurrent
//! messages → 7× slower" observation; cache-to-cache transfers have no
//! shared resource and scale almost perfectly.

use crate::topology::{ClusterTopology, GlobalCore, Layer};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A shared interconnect resource, identified structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Resource {
    /// The memory bus / shared-memory path of a node.
    NodeBus(usize),
    /// The network interface of a node (inter-node messages consume the NIC
    /// of both endpoints' nodes; we charge the sender's).
    Nic(usize),
    /// The cluster switch fabric.
    Switch,
}

/// Per-resource-kind slowdown coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Slowdown slope for messages sharing a node's memory bus
    /// (intra-node transfers that leave the shared caches).
    pub alpha_bus: f64,
    /// Slowdown slope for messages sharing a NIC / network link.
    pub alpha_nic: f64,
    /// Slowdown slope for shared-cache transfers (near zero: no common
    /// resource beyond the cache itself).
    pub alpha_cache: f64,
}

impl ContentionModel {
    /// The resources a message between `a` and `b` contends on.
    pub fn resources_for(
        &self,
        topo: &ClusterTopology,
        a: GlobalCore,
        b: GlobalCore,
    ) -> Vec<Resource> {
        match topo.layer_between(a, b) {
            Layer::SharedCache => Vec::new(),
            Layer::IntraProcessor | Layer::IntraCell | Layer::IntraNode => {
                vec![Resource::NodeBus(topo.node_of(a))]
            }
            Layer::InterNode => vec![
                Resource::Nic(topo.node_of(a)),
                Resource::Nic(topo.node_of(b)),
                Resource::Switch,
            ],
        }
    }

    /// Slowdown slope of a resource.
    pub fn alpha(&self, r: Resource) -> f64 {
        match r {
            Resource::NodeBus(_) => self.alpha_bus,
            Resource::Nic(_) | Resource::Switch => self.alpha_nic,
        }
    }

    /// Slowdown factor for each of `pairs` when all send concurrently.
    ///
    /// Each message takes the worst slowdown over the resources it crosses;
    /// a message crossing no shared resource still pays `alpha_cache`.
    pub fn slowdowns(
        &self,
        topo: &ClusterTopology,
        pairs: &[(GlobalCore, GlobalCore)],
    ) -> Vec<f64> {
        // Count concurrent messages per resource.
        let mut load: HashMap<Resource, usize> = HashMap::new();
        let per_msg: Vec<Vec<Resource>> = pairs
            .iter()
            .map(|&(a, b)| {
                let rs = self.resources_for(topo, a, b);
                for &r in &rs {
                    *load.entry(r).or_insert(0) += 1;
                }
                rs
            })
            .collect();
        per_msg
            .iter()
            .map(|rs| {
                let mut slow: f64 = 1.0
                    + self.alpha_cache
                        * (pairs.len() as f64 - 1.0).max(0.0)
                        * if rs.is_empty() { 1.0 } else { 0.0 };
                for &r in rs {
                    let n = load[&r] as f64;
                    slow = slow.max(1.0 + self.alpha(r) * (n - 1.0));
                }
                slow
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn model() -> ContentionModel {
        ContentionModel {
            alpha_bus: 0.25,
            alpha_nic: 6.0 / 31.0,
            alpha_cache: 0.01,
        }
    }

    #[test]
    fn single_message_no_slowdown() {
        let topo = presets::finis_terrae_topology(2);
        let s = model().slowdowns(&topo, &[(0, 16)]);
        assert!((s[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infiniband_32_messages_roughly_7x() {
        // Paper Fig. 10(b): one of 32 concurrent InfiniBand messages is ~7×
        // slower than an isolated one.
        let topo = presets::finis_terrae_topology(2);
        let pairs: Vec<(usize, usize)> = (0..16).map(|i| (i, 16 + i)).collect();
        let pairs: Vec<(usize, usize)> = pairs
            .iter()
            .chain(
                pairs
                    .iter()
                    .map(|&(a, b)| (b, a))
                    .collect::<Vec<_>>()
                    .iter(),
            )
            .copied()
            .collect();
        assert_eq!(pairs.len(), 32);
        let s = model().slowdowns(&topo, &pairs);
        for &v in &s {
            assert!((v - 7.0).abs() < 0.5, "slowdown = {v}");
        }
    }

    #[test]
    fn shared_cache_messages_scale() {
        let topo = presets::dunnington_topology();
        // All L2-sharing pairs at once: (i, i+12) for i in 0..12.
        let pairs: Vec<(usize, usize)> = (0..12).map(|i| (i, i + 12)).collect();
        let s = model().slowdowns(&topo, &pairs);
        for &v in &s {
            assert!(v < 1.2, "cache-layer slowdown = {v}");
        }
    }

    #[test]
    fn bus_messages_contend() {
        let topo = presets::dunnington_topology();
        // Cross-processor messages share the node bus.
        let pairs: Vec<(usize, usize)> = vec![(0, 3), (1, 4), (2, 5), (12, 15)];
        let s = model().slowdowns(&topo, &pairs);
        let expect = 1.0 + 0.25 * 3.0;
        for &v in &s {
            assert!((v - expect).abs() < 1e-9, "{v} != {expect}");
        }
    }

    #[test]
    fn mixed_traffic_isolates_layers() {
        let topo = presets::dunnington_topology();
        // One shared-cache message plus three bus messages: the cache
        // message must stay near 1.
        let pairs = vec![(0, 12), (1, 4), (2, 5), (3, 6)];
        let s = model().slowdowns(&topo, &pairs);
        assert!(s[0] < 1.1, "cache message slowed: {}", s[0]);
        assert!(s[1] > 1.4, "bus message unslowed: {}", s[1]);
    }

    #[test]
    fn resources_for_layers() {
        let m = model();
        let topo = presets::finis_terrae_topology(2);
        assert_eq!(m.resources_for(&topo, 0, 1), vec![Resource::NodeBus(0)]);
        let inter = m.resources_for(&topo, 0, 16);
        assert!(inter.contains(&Resource::Nic(0)));
        assert!(inter.contains(&Resource::Nic(1)));
        assert!(inter.contains(&Resource::Switch));
        let dun = presets::dunnington_topology();
        assert!(m.resources_for(&dun, 0, 12).is_empty());
        assert!((m.alpha(Resource::Switch) - 6.0 / 31.0).abs() < 1e-12);
    }
}
