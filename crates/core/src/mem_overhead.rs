//! Memory access overhead characterization (paper Fig. 6).
//!
//! A STREAM-like copy on an isolated core gives the reference bandwidth;
//! then every pair of cores copies concurrently. Pairs whose bandwidth
//! drops below the reference are clustered by overhead magnitude (the
//! paper's `BW` / `Pm` arrays), the clusters' pair lists are folded into
//! core *groups* (cores that collide on the same resource), and the
//! effective bandwidth of each group is swept over the number of concurrent
//! cores — the memory-scalability curve autotuners use to decide whether to
//! limit the number of memory-bound threads (§III-C).

use crate::platform::{CoreId, Platform};
use serde::{Deserialize, Serialize};
use servet_stats::cluster::cluster_by_tolerance;
use servet_stats::groups::groups_from_pairs;

/// Configuration of the Fig. 6 benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemOverheadConfig {
    /// Relative tolerance when clustering similar bandwidths (the paper's
    /// "b is similar to a given BW\[i\]").
    pub cluster_tolerance: f64,
    /// Minimum relative drop below the reference to call a pair degraded
    /// (absorbs measurement noise).
    pub overhead_threshold: f64,
    /// Largest group size to sweep in the scalability characterization.
    pub max_group_sweep: usize,
}

impl Default for MemOverheadConfig {
    fn default() -> Self {
        Self {
            cluster_tolerance: 0.12,
            overhead_threshold: 0.05,
            max_group_sweep: 64,
        }
    }
}

/// One overhead magnitude and the pairs/groups that exhibit it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadClass {
    /// Representative per-core bandwidth under contention, GB/s — the
    /// paper's `BW[i]`.
    pub bandwidth_gbs: f64,
    /// Core pairs with this overhead — the paper's `Pm[i]`.
    pub pairs: Vec<(CoreId, CoreId)>,
    /// Core groups inferred from the pairs.
    pub groups: Vec<Vec<CoreId>>,
    /// Effective per-core bandwidth when `n` cores of the first group
    /// stream concurrently; entry `k` is for `k + 2` cores (paper
    /// Fig. 9b).
    pub scalability: Vec<(usize, f64)>,
}

/// Full result of the memory overhead benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemOverheadResult {
    /// Isolated-core bandwidth, GB/s (the paper's `ref`).
    pub reference_gbs: f64,
    /// Bandwidth of every pair tested (first core's view), for Fig. 9a.
    pub pair_bandwidth: Vec<((CoreId, CoreId), f64)>,
    /// Overhead classes, strongest (lowest bandwidth) first.
    pub overheads: Vec<OverheadClass>,
}

impl MemOverheadResult {
    /// Number of distinct overhead magnitudes — the paper's `n`.
    pub fn num_classes(&self) -> usize {
        self.overheads.len()
    }

    /// The per-core bandwidth expected when `cores` stream concurrently,
    /// estimated from the measured scalability curves: the strongest
    /// overhead class containing at least two of the cores governs.
    pub fn predicted_bandwidth(&self, cores: &[CoreId]) -> f64 {
        for class in &self.overheads {
            // Count how many of the requested cores fall in one group.
            let worst = class
                .groups
                .iter()
                .map(|g| cores.iter().filter(|c| g.contains(c)).count())
                .max()
                .unwrap_or(0);
            if worst >= 2 {
                if let Some(&(_, bw)) = class.scalability.iter().rev().find(|&&(n, _)| n <= worst) {
                    return bw;
                }
                return class.bandwidth_gbs;
            }
        }
        self.reference_gbs
    }
}

/// Run the Fig. 6 benchmark.
pub fn characterize_memory(
    platform: &mut dyn Platform,
    config: &MemOverheadConfig,
) -> MemOverheadResult {
    let cores = platform.num_cores();
    let reference = platform.copy_bandwidth_gbs(&[0])[0];
    let mut pair_bandwidth = Vec::new();
    let mut degraded: Vec<(f64, (CoreId, CoreId))> = Vec::new();
    for a in 0..cores {
        for b in a + 1..cores {
            let bw = platform.copy_bandwidth_gbs(&[a, b]);
            let b_a = bw[0];
            pair_bandwidth.push(((a, b), b_a));
            if b_a < reference * (1.0 - config.overhead_threshold) {
                degraded.push((b_a, (a, b)));
            }
        }
    }
    // Cluster similar bandwidths — the BW / Pm construction.
    let clusters = cluster_by_tolerance(degraded, config.cluster_tolerance);
    let mut overheads: Vec<OverheadClass> = clusters
        .into_iter()
        .map(|c| {
            let groups = groups_from_pairs(&c.members);
            OverheadClass {
                bandwidth_gbs: c.value,
                pairs: c.members,
                groups,
                scalability: Vec::new(),
            }
        })
        .collect();
    overheads.sort_by(|x, y| x.bandwidth_gbs.total_cmp(&y.bandwidth_gbs));
    // Scalability: "characterizing the effective bandwidth ... only
    // requires one group per overhead" — sweep the first group of each
    // class. Cores are added in an order that avoids the *stronger*
    // classes' bottlenecks for as long as possible (e.g. the cell sweep
    // spreads across buses before doubling up on one), so each curve
    // shows its own resource.
    for i in 0..overheads.len() {
        let Some(group) = overheads[i].groups.first().cloned() else {
            continue;
        };
        let stronger: Vec<Vec<CoreId>> = overheads[..i]
            .iter()
            .flat_map(|c| c.groups.iter().cloned())
            .collect();
        let order = diversity_order(&group, &stronger);
        let limit = order.len().min(config.max_group_sweep);
        for n in 2..=limit {
            let active: Vec<CoreId> = order[..n].to_vec();
            let bw = platform.copy_bandwidth_gbs(&active);
            overheads[i].scalability.push((n, bw[0]));
        }
    }
    MemOverheadResult {
        reference_gbs: reference,
        pair_bandwidth,
        overheads,
    }
}

/// Order `group` so that each successive core adds the least co-membership
/// with already-selected cores in any of the `stronger` groups.
fn diversity_order(group: &[CoreId], stronger: &[Vec<CoreId>]) -> Vec<CoreId> {
    let mut remaining: Vec<CoreId> = group.to_vec();
    let mut selected: Vec<CoreId> = Vec::with_capacity(group.len());
    while !remaining.is_empty() {
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let clashes: usize = stronger
                    .iter()
                    .filter(|g| g.contains(&c))
                    .map(|g| selected.iter().filter(|s| g.contains(s)).count())
                    .sum();
                (i, clashes)
            })
            .min_by_key(|&(_, clashes)| clashes)
            .expect("remaining non-empty");
        selected.push(remaining.remove(pos));
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_platform::SimPlatform;

    #[test]
    fn tiny_numa_finds_two_overhead_classes() {
        // tiny_numa ground truth: per-pair buses (2.5 GB/s for 2 cores →
        // 1.25 each) and per-cell controllers (3.5 GB/s for 4 cores).
        // Pair same bus: 1.25; pair same cell, different bus: 1.75;
        // pair cross-cell: 2.0 = reference (no overhead).
        let mut p = SimPlatform::tiny_numa().with_noise(0.003);
        let r = characterize_memory(&mut p, &MemOverheadConfig::default());
        assert!(
            (r.reference_gbs - 2.0).abs() < 0.1,
            "ref = {}",
            r.reference_gbs
        );
        assert_eq!(r.num_classes(), 2, "{:#?}", r.overheads);
        // Strongest overhead first.
        assert!(r.overheads[0].bandwidth_gbs < r.overheads[1].bandwidth_gbs);
        assert!((r.overheads[0].bandwidth_gbs - 1.25).abs() < 0.1);
        assert!((r.overheads[1].bandwidth_gbs - 1.75).abs() < 0.1);
        // Bus groups: {0,1},{2,3},{4,5},{6,7}; cell groups {0..4},{4..8}.
        assert_eq!(r.overheads[0].groups.len(), 4);
        assert_eq!(r.overheads[0].groups[0], vec![0, 1]);
        assert_eq!(r.overheads[1].groups.len(), 2);
        assert_eq!(r.overheads[1].groups[0], vec![0, 1, 2, 3]);
        // The cell sweep spreads across buses first, so its curve starts at
        // the cell-pair bandwidth and ends cell-bound: 3.5 GB/s / 4 cores.
        let cell_curve = &r.overheads[1].scalability;
        assert!((cell_curve[0].1 - 1.75).abs() < 0.1, "{cell_curve:?}");
        assert!(
            (cell_curve.last().unwrap().1 - 0.875).abs() < 0.05,
            "{cell_curve:?}"
        );
    }

    #[test]
    fn uniform_bus_yields_single_class() {
        // tiny_smp: one FSB — every pair degrades identically (the
        // Dunnington shape of Fig. 9a).
        let mut p = SimPlatform::tiny().with_noise(0.003);
        let r = characterize_memory(&mut p, &MemOverheadConfig::default());
        assert_eq!(r.num_classes(), 1, "{:#?}", r.overheads);
        assert_eq!(r.overheads[0].groups.len(), 1);
        assert_eq!(r.overheads[0].groups[0], vec![0, 1, 2, 3]);
        // 3.0 GB/s bus split two ways.
        assert!((r.overheads[0].bandwidth_gbs - 1.5).abs() < 0.1);
    }

    #[test]
    fn scalability_curve_decreases() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let r = characterize_memory(&mut p, &MemOverheadConfig::default());
        let curve = &r.overheads[0].scalability;
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "scalability not decreasing: {curve:?}"
            );
        }
        // 4 cores on a 3 GB/s bus → 0.75 each.
        let last = curve.last().unwrap();
        assert_eq!(last.0, 4);
        assert!((last.1 - 0.75).abs() < 0.05);
    }

    #[test]
    fn predicted_bandwidth_uses_classes() {
        let mut p = SimPlatform::tiny_numa().with_noise(0.0);
        let r = characterize_memory(&mut p, &MemOverheadConfig::default());
        // Two cores on one bus → strongest class.
        let bus_pair = r.predicted_bandwidth(&[0, 1]);
        assert!((bus_pair - 1.25).abs() < 0.1, "bus pair = {bus_pair}");
        // Cross-cell cores → no shared class → reference.
        let cross = r.predicted_bandwidth(&[0, 4]);
        assert!((cross - 2.0).abs() < 0.1, "cross = {cross}");
        // Single core → reference.
        assert!((r.predicted_bandwidth(&[3]) - r.reference_gbs).abs() < 1e-9);
    }

    #[test]
    fn pair_bandwidth_covers_all_pairs() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let r = characterize_memory(&mut p, &MemOverheadConfig::default());
        assert_eq!(r.pair_bandwidth.len(), 6);
    }
}
