//! False-sharing detection and the cache-mediated communication model.
//!
//! Two cores that write locations less than a cache line apart ping-pong
//! the line between their caches: every store upgrades or re-fetches the
//! line and invalidates the peer, so the per-access cost is dominated by
//! coherence transactions rather than the cache hierarchy itself. The
//! cure is padding — separating the hot locations by at least a line.
//!
//! This module sweeps the separation between two write streams over one
//! shared buffer ([`Platform::shared_stream_cycles`]) and reports the
//! smallest stride at which the ping-pong disappears — the padding a
//! code generator should insert between per-thread data. On platforms
//! that expose coherence traffic the sweep also records the
//! invalidation/upgrade counts behind each point, and a producer/consumer
//! handoff probe fits the §III-D cache-mediated communication model: the
//! cost, in cycles per line, of moving data between on-chip cores through
//! the coherence fabric instead of a message-passing layer.

use crate::platform::{CoreId, Platform, SharedStreamJob};
use serde::{Deserialize, Serialize};
use servet_sim::CoherenceTraffic;

/// Configuration of the false-sharing sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FalseSharingConfig {
    /// Separations (bytes) between the two cores' write streams,
    /// ascending. The advised padding is the smallest quiet one.
    pub strides: Vec<usize>,
    /// Lines touched per stream per pass.
    pub lines_per_stream: usize,
    /// Spacing (bytes) between consecutive accesses of one stream; must
    /// exceed the largest candidate stride and any plausible line size.
    pub base_spacing: usize,
    /// Ratio over the well-separated baseline above which a stride is
    /// considered to still be false sharing.
    pub ratio_threshold: f64,
    /// The two cores running the streams.
    pub cores: (CoreId, CoreId),
}

impl Default for FalseSharingConfig {
    fn default() -> Self {
        Self {
            strides: vec![8, 16, 32, 64, 128, 256],
            // Small enough that the quiet configuration stays
            // cache-resident on even the tiny presets: the sweep must
            // compare ping-pong cost against cheap hits, not against
            // capacity misses that drown the coherence signal.
            lines_per_stream: 16,
            base_spacing: 1024,
            ratio_threshold: 2.0,
            cores: (0, 1),
        }
    }
}

/// One point of the stride sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StridePoint {
    /// Separation (bytes) between the two write streams.
    pub stride: usize,
    /// Mean cycles per access over the two streams.
    pub cycles_per_access: f64,
    /// `cycles_per_access` relative to the well-separated baseline.
    pub ratio: f64,
    /// Coherence traffic behind this point, when the platform can
    /// observe it.
    #[serde(default)]
    pub traffic: Option<CoherenceTraffic>,
}

/// The §III-D cache-mediated communication model: cost of handing data
/// from a producer core to a consumer core through the shared coherence
/// fabric, fitted from a write-then-read probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheCommModel {
    /// Line size (bytes) assumed by the model — the advised padding,
    /// i.e. the coherence granularity the sweep observed.
    pub line_bytes: usize,
    /// Consumer-side cycles to pull one producer-written line.
    pub per_line_cycles: f64,
}

impl CacheCommModel {
    /// Predicted cycles to hand `bytes` of producer-written data to the
    /// consumer through the cache hierarchy.
    pub fn predicted_handoff_cycles(&self, bytes: usize) -> f64 {
        let lines = bytes.div_ceil(self.line_bytes.max(1)).max(1);
        lines as f64 * self.per_line_cycles
    }
}

/// Results of the false-sharing sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FalseSharingResult {
    /// Cycles per access with the streams separated by
    /// [`FalseSharingConfig::base_spacing`] / 2 — no line sharing.
    pub baseline_cycles: f64,
    /// The sweep, in ascending stride order.
    pub points: Vec<StridePoint>,
    /// Smallest stride whose cost fell back to the baseline — the
    /// padding to insert between per-thread data. `None` when every
    /// candidate still ping-pongs (padding must exceed the sweep).
    pub advised_padding: Option<usize>,
    /// The fitted on-chip communication model, when a quiet stride
    /// exists to anchor the line size.
    #[serde(default)]
    pub comm_model: Option<CacheCommModel>,
}

impl FalseSharingResult {
    /// Whether any candidate stride exhibited false sharing: invalidation
    /// traffic when the platform reports it, a cost blow-up otherwise.
    pub fn observed_false_sharing(&self) -> bool {
        self.points.iter().any(|p| match &p.traffic {
            Some(t) => t.invalidations > 0,
            None => p.ratio.is_finite() && p.ratio > 1.5,
        })
    }
}

/// Two write streams `separation` bytes apart, `spacing` bytes between
/// a stream's consecutive accesses.
fn pair_jobs(config: &FalseSharingConfig, separation: usize) -> [SharedStreamJob; 2] {
    let (a, b) = config.cores;
    let count = config.lines_per_stream;
    [
        SharedStreamJob {
            core: a,
            offset: 0,
            stride: config.base_spacing,
            count,
            write: true,
        },
        SharedStreamJob {
            core: b,
            offset: separation,
            stride: config.base_spacing,
            count,
            write: true,
        },
    ]
}

fn buffer_bytes(config: &FalseSharingConfig) -> usize {
    // Large enough for the farthest-apart pair of streams.
    config.lines_per_stream * config.base_spacing + config.base_spacing
}

/// Run the false-sharing sweep on `platform`.
///
/// Requires [`Platform::supports_coherence_probes`]; gate on it before
/// calling. Exports the total coherence traffic of the sweep through the
/// `coherence.*` observability counters when the platform reports it.
pub fn detect_false_sharing(
    platform: &mut dyn Platform,
    config: &FalseSharingConfig,
) -> FalseSharingResult {
    assert!(
        platform.supports_coherence_probes(),
        "platform {:?} cannot run the false-sharing sweep",
        platform.name()
    );
    assert!(!config.strides.is_empty(), "stride sweep must be non-empty");
    let max_stride = config.strides.iter().copied().max().unwrap_or(0);
    assert!(
        max_stride < config.base_spacing / 2,
        "candidate strides must stay below half the base spacing"
    );
    let buffer = buffer_bytes(config);

    // Baseline: the same two streams, separated by half the spacing —
    // far enough apart that no plausible line covers both.
    platform.take_coherence_traffic(); // drain earlier stages' traffic
    let base = platform.shared_stream_cycles(buffer, &pair_jobs(config, config.base_spacing / 2));
    let baseline_cycles = mean(&base);
    let mut total = platform.take_coherence_traffic().unwrap_or_default();

    let mut points = Vec::with_capacity(config.strides.len());
    for &stride in &config.strides {
        let cycles = platform.shared_stream_cycles(buffer, &pair_jobs(config, stride));
        let traffic = platform.take_coherence_traffic();
        if let Some(t) = &traffic {
            total.invalidations += t.invalidations;
            total.writebacks += t.writebacks;
            total.interventions += t.interventions;
            total.upgrades += t.upgrades;
            total.coherence_misses += t.coherence_misses;
            total.capacity_misses += t.capacity_misses;
        }
        let cycles_per_access = mean(&cycles);
        points.push(StridePoint {
            stride,
            cycles_per_access,
            ratio: cycles_per_access / baseline_cycles.max(f64::MIN_POSITIVE),
            traffic,
        });
    }

    servet_obs::counter("coherence.invalidations").add(total.invalidations);
    servet_obs::counter("coherence.writebacks").add(total.writebacks);
    servet_obs::counter("coherence.interventions").add(total.interventions);
    servet_obs::counter("coherence.upgrades").add(total.upgrades);
    servet_obs::counter("coherence.coherence_misses").add(total.coherence_misses);

    // Smallest stride at which the ping-pong stops. Platforms that
    // report coherence traffic give an exact signal — two write streams
    // on distinct lines generate no invalidations at all, however hard
    // capacity pressure distorts their cycle costs. Hardware platforms
    // fall back to the cost ratio against the separated baseline.
    // Either way, require every larger stride to be quiet as well, so a
    // noisy dip mid-sweep is not mistaken for the line boundary.
    let quiet = |p: &StridePoint| match &p.traffic {
        Some(t) => t.invalidations == 0,
        None => p.ratio <= config.ratio_threshold,
    };
    let advised_padding = (0..points.len())
        .find(|&i| points[i..].iter().all(quiet))
        .map(|i| points[i].stride);

    let comm_model = advised_padding.map(|line| CacheCommModel {
        line_bytes: line,
        per_line_cycles: handoff_per_line_cycles(platform, config),
    });

    FalseSharingResult {
        baseline_cycles,
        points,
        advised_padding,
        comm_model,
    }
}

/// Producer-write / consumer-read handoff over distinct lines: the
/// consumer's cycles per access is the per-line cost of pulling data the
/// producer dirtied — intervention plus bus transfer on the simulator,
/// a cache-to-cache fill on hardware.
fn handoff_per_line_cycles(platform: &mut dyn Platform, config: &FalseSharingConfig) -> f64 {
    let (producer, consumer) = config.cores;
    let count = config.lines_per_stream;
    let jobs = [
        SharedStreamJob {
            core: producer,
            offset: 0,
            stride: config.base_spacing,
            count,
            write: true,
        },
        SharedStreamJob {
            core: consumer,
            offset: 0,
            stride: config.base_spacing,
            count,
            write: false,
        },
    ];
    let cycles = platform.shared_stream_cycles(buffer_bytes(config), &jobs);
    platform.take_coherence_traffic(); // keep the sweep's ledger clean
    cycles.get(1).copied().unwrap_or_default()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_platform::SimPlatform;
    use servet_sim::{presets, Machine};

    fn sweep(spec: servet_sim::MachineSpec) -> FalseSharingResult {
        let mut platform = SimPlatform::new(Machine::with_seed(spec, 42), None);
        assert!(platform.supports_coherence_probes());
        detect_false_sharing(&mut platform, &FalseSharingConfig::default())
    }

    #[test]
    fn detects_line_padding_on_tiny_presets() {
        for spec in [
            presets::tiny_smp(),
            presets::tiny_shared_l2(),
            presets::tiny_numa(),
        ] {
            let name = spec.name.clone();
            let result = sweep(spec);
            assert!(
                result.observed_false_sharing(),
                "{name}: no ping-pong observed"
            );
            let padding = result
                .advised_padding
                .unwrap_or_else(|| panic!("{name}: no quiet stride found: {:?}", result.points));
            assert!(
                padding >= 64,
                "{name}: advised padding {padding} below the 64 B line"
            );
            let model = result.comm_model.expect("comm model fitted");
            assert!(model.per_line_cycles > 0.0);
            assert!(model.predicted_handoff_cycles(1024) > model.predicted_handoff_cycles(64));
        }
    }

    #[test]
    fn sub_line_strides_ping_pong_and_carry_traffic() {
        let result = sweep(presets::tiny_smp());
        let sub_line: Vec<&StridePoint> = result.points.iter().filter(|p| p.stride < 64).collect();
        assert!(!sub_line.is_empty());
        for p in sub_line {
            assert!(
                p.ratio > 2.0,
                "stride {} should ping-pong, ratio {}",
                p.stride,
                p.ratio
            );
            let t = p.traffic.as_ref().expect("sim reports traffic");
            assert!(
                t.invalidations > 0,
                "stride {} saw no invalidations",
                p.stride
            );
        }
    }

    #[test]
    fn quiet_strides_match_baseline_traffic_shape() {
        let result = sweep(presets::tiny_smp());
        let quiet = result
            .points
            .iter()
            .find(|p| p.stride >= 64)
            .expect("sweep covers at-line strides");
        let hot = result.points.iter().find(|p| p.stride < 64).unwrap();
        let qt = quiet.traffic.as_ref().unwrap();
        let ht = hot.traffic.as_ref().unwrap();
        assert!(ht.invalidations > qt.invalidations);
        assert!(ht.coherence_misses > qt.coherence_misses);
    }

    #[test]
    fn result_serde_round_trips() {
        let result = sweep(presets::tiny_smp());
        let json = serde_json::to_string(&result).unwrap();
        let back: FalseSharingResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, result);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = sweep(presets::tiny_smp());
        let b = sweep(presets::tiny_smp());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot run the false-sharing sweep")]
    fn unicore_platform_is_rejected() {
        let mut platform = SimPlatform::athlon3200();
        detect_false_sharing(&mut platform, &FalseSharingConfig::default());
    }

    #[test]
    fn comm_model_rounds_bytes_up_to_lines() {
        let model = CacheCommModel {
            line_bytes: 64,
            per_line_cycles: 100.0,
        };
        assert_eq!(model.predicted_handoff_cycles(1), 100.0);
        assert_eq!(model.predicted_handoff_cycles(64), 100.0);
        assert_eq!(model.predicted_handoff_cycles(65), 200.0);
    }
}
