//! The full Servet suite: run every benchmark and time each stage.
//!
//! Reproduces the paper's top-level flow — cache sizes first (their outputs
//! feed the shared-cache benchmark's array sizes and the communication
//! benchmark's probe size), then shared caches, memory overhead and
//! communication costs — and records per-stage execution time for Table I.

use crate::cache_detect::{detect_cache_levels, DetectConfig};
use crate::comm::{characterize_communication, CommConfig};
use crate::false_sharing::{detect_false_sharing, FalseSharingConfig};
use crate::mcalibrator::{mcalibrator, McalibratorConfig};
use crate::mem_overhead::{characterize_memory, MemOverheadConfig};
use crate::micro::{run_micro_probes, MicroConfig};
use crate::platform::Platform;
use crate::profile::MachineProfile;
use crate::shared_cache::{decompose_shared_misses, detect_shared_caches, SharedCacheConfig};
use serde::{Deserialize, Serialize};
use servet_sim::CoherenceTraffic;

/// Which benchmarks to run and with what parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteConfig {
    /// mcalibrator sweep parameters.
    pub mcalibrator: McalibratorConfig,
    /// Cache-level detection parameters.
    pub detect: DetectConfig,
    /// Shared-cache benchmark parameters.
    pub shared: SharedCacheConfig,
    /// Memory-overhead benchmark parameters.
    pub memory: MemOverheadConfig,
    /// Communication benchmark tolerance/sweep parameters; the probe size
    /// is replaced by the detected L1 size at run time.
    pub comm: CommConfig,
    /// Skip the shared-cache benchmark.
    pub skip_shared: bool,
    /// Skip the memory-overhead benchmark.
    pub skip_memory: bool,
    /// Skip the communication benchmark.
    pub skip_comm: bool,
    /// Run the micro-probe extensions (line size, L1 associativity) after
    /// the cache-size stage. Off by default: they are extensions beyond
    /// the paper's published suite.
    pub run_micro: bool,
    /// Micro-probe parameters.
    pub micro: MicroConfig,
    /// Run the false-sharing sweep after every other stage. Off by
    /// default: it is an extension beyond the paper's published suite and
    /// needs [`Platform::supports_coherence_probes`]. Older configs
    /// without the field read as off.
    #[serde(default)]
    pub run_false_sharing: bool,
    /// False-sharing sweep parameters.
    #[serde(default)]
    pub false_sharing: FalseSharingConfig,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            mcalibrator: McalibratorConfig::default(),
            detect: DetectConfig::default(),
            shared: SharedCacheConfig::default(),
            memory: MemOverheadConfig::default(),
            comm: CommConfig::with_l1_size(32 * 1024),
            skip_shared: false,
            skip_memory: false,
            skip_comm: false,
            run_micro: false,
            micro: MicroConfig::default(),
            run_false_sharing: false,
            false_sharing: FalseSharingConfig::default(),
        }
    }
}

impl SuiteConfig {
    /// A light configuration for small test machines.
    pub fn small(max_cache: usize) -> Self {
        Self {
            mcalibrator: McalibratorConfig::small(max_cache),
            detect: DetectConfig::small(),
            shared: SharedCacheConfig::default(),
            memory: MemOverheadConfig::default(),
            comm: CommConfig::small(8 * 1024),
            skip_shared: false,
            skip_memory: false,
            skip_comm: false,
            run_micro: false,
            micro: MicroConfig::default(),
            run_false_sharing: false,
            false_sharing: FalseSharingConfig::default(),
        }
    }
}

/// Wall (or virtual) seconds each stage of the suite consumed — the rows of
/// the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuiteTimings {
    /// Cache Size Estimate row. Exactly the mcalibrator sweep plus level
    /// detection — the paper's benchmark, nothing else.
    pub cache_size_s: f64,
    /// Time in the optional micro-probe extensions (line size, L1
    /// associativity). Zero unless [`SuiteConfig::run_micro`] is set.
    /// Kept out of [`cache_size_s`](Self::cache_size_s) so that row stays
    /// comparable with Table I; older reports without this field read as
    /// zero.
    #[serde(default)]
    pub micro_probes_s: f64,
    /// Determination of Shared Caches row.
    pub shared_caches_s: f64,
    /// Memory Access Overhead row.
    pub memory_overhead_s: f64,
    /// Communication Costs row.
    pub communication_s: f64,
    /// Time in the optional false-sharing sweep. Zero unless
    /// [`SuiteConfig::run_false_sharing`] is set; older reports without
    /// the field read as zero.
    #[serde(default)]
    pub false_sharing_s: f64,
}

impl SuiteTimings {
    /// Total seconds across every stage, extensions included.
    pub fn total_s(&self) -> f64 {
        self.cache_size_s
            + self.micro_probes_s
            + self.shared_caches_s
            + self.memory_overhead_s
            + self.communication_s
            + self.false_sharing_s
    }
}

/// The suite's full output: the machine profile plus stage timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// The measured machine profile.
    pub profile: MachineProfile,
    /// Per-stage execution times.
    pub timings: SuiteTimings,
}

/// Render a per-stage coherence-traffic delta for span annotations.
fn format_traffic(t: &CoherenceTraffic) -> String {
    format!(
        "coh inv={} wb={} intv={} upg={} miss={}coh/{}cap",
        t.invalidations,
        t.writebacks,
        t.interventions,
        t.upgrades,
        t.coherence_misses,
        t.capacity_misses
    )
}

/// Annotate `span` with the coherence traffic generated since `before`
/// (a [`Platform::coherence_traffic_total`] snapshot taken at stage
/// entry). No-op when the platform cannot observe traffic or the stage
/// generated none — private-traversal stages stay unannotated.
fn annotate_coherence(
    span: &mut servet_obs::SpanGuard,
    before: Option<CoherenceTraffic>,
    platform: &dyn Platform,
) {
    let (Some(before), Some(now)) = (before, platform.coherence_traffic_total()) else {
        return;
    };
    let delta = now.since(&before);
    if !delta.is_empty() {
        span.annotate(format_traffic(&delta));
    }
}

/// Run the complete Servet suite on a platform.
pub fn run_full_suite(platform: &mut dyn Platform, config: &SuiteConfig) -> SuiteReport {
    // Wall-clock spans for `servet --trace` and the run manifest; the
    // platform's own clock (virtual on the simulator) still feeds the
    // Table I timings below.
    let _suite_span = servet_obs::span("suite");
    let t0 = platform.elapsed_seconds();

    // Stage 1: cache size estimate (Figs. 1-4).
    let mut stage_span = servet_obs::span("suite.cache_size");
    let coh0 = platform.coherence_traffic_total();
    let sweep = mcalibrator(platform, 0, &config.mcalibrator);
    let cache_levels = detect_cache_levels(&sweep, platform.page_size(), &config.detect);
    annotate_coherence(&mut stage_span, coh0, platform);
    drop(stage_span);
    let t1 = platform.elapsed_seconds();

    // Stage 1b: optional micro-probe extensions, timed apart from the
    // cache-size stage so `cache_size_s` stays faithful to Table I.
    let micro = if config.run_micro {
        let mut micro_span = servet_obs::span("suite.micro_probes");
        let coh0 = platform.coherence_traffic_total();
        let micro = cache_levels
            .first()
            .map(|l1| run_micro_probes(platform, 0, l1.size, &config.micro));
        annotate_coherence(&mut micro_span, coh0, platform);
        micro
    } else {
        None
    };
    let t1m = platform.elapsed_seconds();

    // Stage 2: shared caches (Fig. 5).
    let mut stage_span = servet_obs::span("suite.shared_caches");
    let coh0 = platform.coherence_traffic_total();
    let mut shared = if config.skip_shared || platform.num_cores() < 2 {
        None
    } else {
        let sizes: Vec<usize> = cache_levels.iter().map(|c| c.size).collect();
        Some(detect_shared_caches(platform, &sizes, &config.shared))
    };
    annotate_coherence(&mut stage_span, coh0, platform);
    drop(stage_span);
    let t2 = platform.elapsed_seconds();

    let micro_probes_s = t1m - t1;
    let shared_caches_s = t2 - t1m;

    // Stage 3: memory access overhead (Fig. 6).
    let mut stage_span = servet_obs::span("suite.memory_overhead");
    let coh0 = platform.coherence_traffic_total();
    let memory = if config.skip_memory || platform.num_cores() < 2 {
        None
    } else {
        Some(characterize_memory(platform, &config.memory))
    };
    annotate_coherence(&mut stage_span, coh0, platform);
    drop(stage_span);
    let t3 = platform.elapsed_seconds();

    // Stage 4: communication costs (Fig. 7), probing with the detected L1
    // size.
    let mut stage_span = servet_obs::span("suite.communication");
    let coh0 = platform.coherence_traffic_total();
    let communication = if config.skip_comm || !platform.supports_messaging() {
        None
    } else {
        let mut comm_cfg = config.comm.clone();
        let fell_back = match cache_levels.first() {
            Some(l1) => {
                comm_cfg.probe_size = l1.size;
                false
            }
            // No detected L1 to probe with: keep the configured default,
            // but say so — a profile must distinguish "detected 32 KB"
            // from "fell back to 32 KB".
            None => {
                servet_obs::counter("suite.comm_probe_size_fallback").incr();
                true
            }
        };
        let mut result = characterize_communication(platform, &comm_cfg);
        result.probe_size_fallback = fell_back;
        Some(result)
    };
    annotate_coherence(&mut stage_span, coh0, platform);
    drop(stage_span);
    let t4 = platform.elapsed_seconds();

    // Stage 5: coherence extensions — the false-sharing sweep and the
    // §III-B miss decomposition. Last, so that platforms with seeded
    // measurement noise draw for the paper's own stages exactly as they
    // did before this stage existed.
    let false_sharing = if config.run_false_sharing && platform.supports_coherence_probes() {
        let mut fs_span = servet_obs::span("suite.false_sharing");
        // The stage drains machine counters internally (the sweep
        // classifies per-configuration traffic), which is exactly why
        // the annotation diffs the *monotone* lifetime total instead.
        let coh0 = platform.coherence_traffic_total();
        if let Some(shared) = shared.as_mut() {
            let sizes: Vec<usize> = cache_levels.iter().map(|c| c.size).collect();
            shared.miss_decomposition = decompose_shared_misses(platform, &sizes, &config.shared);
        }
        let fs = detect_false_sharing(platform, &config.false_sharing);
        annotate_coherence(&mut fs_span, coh0, platform);
        Some(fs)
    } else {
        None
    };
    let t5 = platform.elapsed_seconds();

    SuiteReport {
        profile: MachineProfile {
            schema_version: crate::profile::SCHEMA_VERSION,
            machine: platform.name().to_string(),
            cores_per_node: platform.num_cores(),
            total_cores: platform.total_cores(),
            page_size: platform.page_size(),
            mcalibrator: Some(sweep),
            cache_levels,
            shared_caches: shared,
            memory,
            communication,
            micro,
            false_sharing,
        },
        timings: SuiteTimings {
            cache_size_s: t1 - t0,
            micro_probes_s,
            shared_caches_s,
            memory_overhead_s: t3 - t2,
            communication_s: t4 - t3,
            false_sharing_s: t5 - t4,
        },
    }
}

/// Run the complete suite as a *pure* function of the platform and
/// config: every span and counter the run produces is collected into a
/// private per-run scope and returned inside an exact [`RunManifest`](crate::manifest::RunManifest),
/// untouched by whatever other runs execute concurrently in the process.
///
/// This is the entry point for batched drivers (the machine zoo) and for
/// anything that wants a manifest that is guaranteed to describe *this*
/// run only. [`run_full_suite`] remains for callers that manage
/// observability themselves. The scope still merges into the global view
/// on completion, so `servet --trace` output is unchanged.
pub fn run_suite(
    platform: &mut dyn Platform,
    config: &SuiteConfig,
) -> (SuiteReport, crate::manifest::RunManifest) {
    let scope = servet_obs::RunScope::begin();
    let report = run_full_suite(platform, config);
    let mut manifest = crate::manifest::RunManifest::from_scope(&report, config, scope.finish());
    manifest.coherence = platform.coherence_params();
    (report, manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_platform::SimPlatform;
    use servet_sim::KB;

    #[test]
    fn full_suite_on_tiny_cluster() {
        let mut p = SimPlatform::tiny_cluster().with_noise(0.003);
        let report = run_full_suite(&mut p, &SuiteConfig::small(256 * KB));
        let profile = &report.profile;
        // Caches: 8 KB L1, 64 KB L2.
        assert_eq!(profile.cache_size(1), Some(8 * KB));
        assert_eq!(profile.cache_size(2), Some(64 * KB));
        // Private caches on tiny_smp.
        assert!(!profile.shared_caches.as_ref().unwrap().any_shared());
        // One memory overhead class (single FSB).
        assert_eq!(profile.memory.as_ref().unwrap().num_classes(), 1);
        // Four communication layers.
        assert_eq!(profile.communication.as_ref().unwrap().num_layers(), 4);
        // Probe size followed the detected L1.
        assert_eq!(profile.communication.as_ref().unwrap().probe_size, 8 * KB);
        // Timings all positive, total consistent; no micro probes ran.
        let t = &report.timings;
        assert!(t.cache_size_s > 0.0);
        assert_eq!(t.micro_probes_s, 0.0);
        assert!(t.shared_caches_s > 0.0);
        assert!(t.memory_overhead_s > 0.0);
        assert!(t.communication_s > 0.0);
        assert!(
            (t.total_s()
                - (t.cache_size_s
                    + t.micro_probes_s
                    + t.shared_caches_s
                    + t.memory_overhead_s
                    + t.communication_s))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn false_sharing_stage_annotates_its_span_with_coherence_traffic() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let cfg = SuiteConfig {
            skip_comm: true,
            skip_memory: true,
            run_false_sharing: true,
            ..SuiteConfig::small(128 * KB)
        };
        let (_report, manifest) = run_suite(&mut p, &cfg);
        let fs = manifest
            .spans
            .iter()
            .find(|s| s.name == "suite.false_sharing")
            .expect("false-sharing stage span missing");
        let note = fs
            .annotation
            .as_deref()
            .expect("false-sharing span must carry its coherence traffic");
        assert!(note.starts_with("coh inv="), "unexpected annotation {note}");
        // Private-traversal stages generate no coherence traffic, so
        // their spans stay unannotated.
        let cs = manifest
            .spans
            .iter()
            .find(|s| s.name == "suite.cache_size")
            .unwrap();
        assert_eq!(cs.annotation, None);
    }

    #[test]
    fn micro_probes_are_timed_apart_from_the_cache_size_stage() {
        let cfg = SuiteConfig {
            skip_comm: true,
            ..SuiteConfig::small(128 * KB)
        };
        let without = run_full_suite(&mut SimPlatform::tiny().with_noise(0.0), &cfg);
        let with_micro = run_full_suite(
            &mut SimPlatform::tiny().with_noise(0.0),
            &SuiteConfig {
                run_micro: true,
                ..cfg
            },
        );
        assert_eq!(without.timings.micro_probes_s, 0.0);
        assert!(with_micro.timings.micro_probes_s > 0.0);
        // Table I's cache-size row must not absorb the micro-probe time:
        // the platform clock is virtual and noise-free, so the stage cost
        // is identical with and without the probes.
        assert!(
            (with_micro.timings.cache_size_s - without.timings.cache_size_s).abs()
                < 1e-9 * without.timings.cache_size_s.max(1.0),
            "cache_size_s {} vs {}",
            with_micro.timings.cache_size_s,
            without.timings.cache_size_s
        );
    }

    #[test]
    fn comm_probe_size_fallback_is_recorded() {
        // A sweep capped below the L1 size detects no cache levels, so the
        // comm stage cannot use a detected L1 as its probe size and must
        // fall back to the configured default — and say so.
        let mut p = SimPlatform::tiny_cluster().with_noise(0.0);
        let cfg = SuiteConfig {
            skip_shared: true,
            skip_memory: true,
            ..SuiteConfig::small(2 * KB)
        };
        let report = run_full_suite(&mut p, &cfg);
        assert!(
            report.profile.cache_levels.is_empty(),
            "expected no detected levels, got {:?}",
            report.profile.cache_levels
        );
        let comm = report.profile.communication.as_ref().unwrap();
        assert!(comm.probe_size_fallback);
        assert_eq!(comm.probe_size, cfg.comm.probe_size);
    }

    #[test]
    fn detected_probe_size_is_not_flagged_as_fallback() {
        let mut p = SimPlatform::tiny_cluster().with_noise(0.003);
        let report = run_full_suite(&mut p, &SuiteConfig::small(256 * KB));
        let comm = report.profile.communication.as_ref().unwrap();
        assert!(!comm.probe_size_fallback);
        assert_eq!(comm.probe_size, 8 * KB);
    }

    #[test]
    fn run_suite_returns_an_exact_manifest() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let cfg = SuiteConfig {
            skip_comm: true,
            ..SuiteConfig::small(128 * KB)
        };
        let (report, manifest) = run_suite(&mut p, &cfg);
        assert_eq!(manifest.machine, report.profile.machine);
        // Exactly this run's spans: one suite root, regardless of what
        // other tests in the process record concurrently.
        assert_eq!(
            manifest.spans.iter().filter(|s| s.name == "suite").count(),
            1
        );
        assert!(manifest.spans.iter().any(|s| s.name == "suite.cache_size"));
        assert!(
            manifest.counters.get("mcalibrator.samples").copied() >= Some(1),
            "{:?}",
            manifest.counters
        );
        // Satellite record: the coherence bus latencies travel with the
        // manifest so a zoo run is reproducible from it alone.
        assert!(manifest.coherence.is_some());
        assert_eq!(manifest.coherence, p.coherence_params());
    }

    #[test]
    fn unicore_machine_skips_parallel_stages() {
        let mut p = SimPlatform::athlon3200().with_noise(0.002);
        let cfg = SuiteConfig {
            mcalibrator: McalibratorConfig {
                max_size: 4 * 1024 * 1024,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = run_full_suite(&mut p, &cfg);
        let profile = &report.profile;
        assert_eq!(profile.cache_size(1), Some(64 * KB));
        assert_eq!(profile.cache_size(2), Some(512 * KB));
        assert!(profile.shared_caches.is_none());
        assert!(profile.memory.is_none());
        assert!(profile.communication.is_none());
        assert_eq!(report.timings.shared_caches_s, 0.0);
    }

    #[test]
    fn skip_flags_respected() {
        let mut p = SimPlatform::tiny_cluster().with_noise(0.0);
        let cfg = SuiteConfig {
            skip_shared: true,
            skip_memory: true,
            skip_comm: true,
            ..SuiteConfig::small(256 * KB)
        };
        let report = run_full_suite(&mut p, &cfg);
        assert!(report.profile.shared_caches.is_none());
        assert!(report.profile.memory.is_none());
        assert!(report.profile.communication.is_none());
    }

    #[test]
    fn false_sharing_stage_fills_the_profile_without_touching_other_stages() {
        let cfg = SuiteConfig {
            skip_comm: true,
            ..SuiteConfig::small(128 * KB)
        };
        let without = run_full_suite(&mut SimPlatform::tiny().with_noise(0.003), &cfg);
        let with_fs = run_full_suite(
            &mut SimPlatform::tiny().with_noise(0.003),
            &SuiteConfig {
                run_false_sharing: true,
                ..cfg
            },
        );
        assert!(without.profile.false_sharing.is_none());
        assert_eq!(without.timings.false_sharing_s, 0.0);
        let fs = with_fs.profile.false_sharing.as_ref().unwrap();
        assert!(
            fs.advised_padding.unwrap_or(0) >= 64,
            "advised padding {:?} below the 64 B line",
            fs.advised_padding
        );
        assert!(with_fs.timings.false_sharing_s > 0.0);
        // The miss decomposition rides along, one entry per level.
        let decomp = &with_fs
            .profile
            .shared_caches
            .as_ref()
            .unwrap()
            .miss_decomposition;
        assert_eq!(decomp.len(), with_fs.profile.cache_levels.len());
        // The coherence stage runs after every paper stage, so their
        // noisy measurements are identical with and without it.
        assert_eq!(with_fs.profile.cache_levels, without.profile.cache_levels);
        assert_eq!(with_fs.profile.mcalibrator, without.profile.mcalibrator);
        assert_eq!(
            with_fs.profile.shared_caches.as_ref().unwrap().levels,
            without.profile.shared_caches.as_ref().unwrap().levels
        );
    }

    #[test]
    fn unicore_machine_skips_the_false_sharing_stage() {
        let mut p = SimPlatform::athlon3200().with_noise(0.002);
        let cfg = SuiteConfig {
            run_false_sharing: true,
            mcalibrator: McalibratorConfig {
                max_size: 4 * 1024 * 1024,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = run_full_suite(&mut p, &cfg);
        assert!(report.profile.false_sharing.is_none());
        assert_eq!(report.timings.false_sharing_s, 0.0);
    }

    #[test]
    fn report_serializes() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let cfg = SuiteConfig {
            skip_comm: true,
            ..SuiteConfig::small(128 * KB)
        };
        let report = run_full_suite(&mut p, &cfg);
        let json = serde_json::to_string(&report).unwrap();
        let back: SuiteReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
