//! [`Platform`] implementation backed by the simulator substrate.
//!
//! A [`SimPlatform`] bundles one node's [`servet_sim::Machine`] (cache and
//! memory benchmarks run within a node, as in the paper) with an optional
//! [`servet_net::VirtualCluster`] spanning every node (communication
//! benchmarks). Measurements pick up a small deterministic multiplicative
//! noise so the suite's tolerance-based clustering is exercised the way a
//! real machine would exercise it.
//!
//! The platform also keeps the **virtual-time ledger**: every measurement
//! charges what the *real* benchmark would have cost — the simulated
//! operation time scaled by the repetition count a real implementation
//! needs for stable numbers, plus a fixed per-measurement setup overhead
//! (process spawn, affinity call, barrier). Table I of the paper is
//! reproduced from this ledger.

use crate::platform::{CoreId, Platform, SharedStreamJob, TraverseJob};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use servet_net::cluster::VirtualCluster;
use servet_sim::machine::{SharedJob, TraversalJob};
use servet_sim::membw::MemorySystem;
use servet_sim::{CoherenceSpec, CoherenceTraffic, Machine};

/// What one real-world measurement costs beyond the simulated operation
/// itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementCost {
    /// Fixed setup seconds per measurement (allocation, affinity,
    /// synchronization).
    pub setup_s: f64,
    /// How many times a real benchmark repeats a traversal measurement.
    pub traverse_reps: f64,
    /// Bytes a real STREAM-like copy moves per bandwidth measurement.
    pub copy_bytes: f64,
    /// Ping-pong iterations per latency measurement.
    pub message_reps: f64,
}

/// Trials for concurrent traversals (each trial re-allocates every job's
/// array).
const CONCURRENT_TRIALS: usize = 2;

/// How many freshly-allocated arrays a traversal measurement averages
/// over. Averaging across page mappings is what a real benchmark's
/// repetition loop achieves: the measured miss rate approaches the
/// binomial expectation of Fig. 3. Small arrays span few pages (noisy,
/// cheap to re-measure), so the trial count scales until several thousand
/// page samples back each estimate — the cost of a measurement is then
/// roughly constant across sizes, because trials × pages is capped.
fn traverse_trials(size: usize, page_size: usize) -> usize {
    let pages = (size / page_size).max(1);
    (4096usize.div_ceil(pages)).clamp(2, 16)
}

impl Default for MeasurementCost {
    fn default() -> Self {
        Self {
            setup_s: 0.4,
            traverse_reps: 128.0,
            copy_bytes: 8.0 * 1024.0 * 1024.0 * 1024.0,
            message_reps: 8_000.0,
        }
    }
}

/// Simulator-backed platform.
pub struct SimPlatform {
    machine: Machine,
    memsys: MemorySystem,
    cluster: Option<VirtualCluster>,
    /// Relative measurement noise (uniform ±noise).
    noise: f64,
    rng: ChaCha8Rng,
    cost: MeasurementCost,
    elapsed_s: f64,
    /// Coherence traffic already drained out of the machine via
    /// [`Platform::take_coherence_traffic`]; added back to the machine's
    /// live counters so [`Platform::coherence_traffic_total`] stays
    /// monotone across drains.
    drained_traffic: CoherenceTraffic,
}

impl SimPlatform {
    /// Wrap a machine (and optionally a cluster sharing its node type).
    pub fn new(machine: Machine, cluster: Option<VirtualCluster>) -> Self {
        let memsys = MemorySystem::new(&machine.spec().memory);
        Self {
            machine,
            memsys,
            cluster,
            noise: 0.005,
            rng: ChaCha8Rng::seed_from_u64(0xBEEF),
            cost: MeasurementCost::default(),
            elapsed_s: 0.0,
            drained_traffic: CoherenceTraffic::default(),
        }
    }

    /// The paper's Dunnington node with its 24-core single-node cluster.
    pub fn dunnington() -> Self {
        Self::new(
            Machine::new(servet_sim::presets::dunnington()),
            Some(servet_net::presets::dunnington_cluster()),
        )
    }

    /// `nodes` Finis Terrae nodes (the paper uses 2 for communications).
    pub fn finis_terrae(nodes: usize) -> Self {
        Self::new(
            Machine::new(servet_sim::presets::finis_terrae_node()),
            Some(servet_net::presets::finis_terrae_cluster(nodes)),
        )
    }

    /// The Dempsey dual-core (no cluster: cache benchmarks only in §IV-A).
    pub fn dempsey() -> Self {
        Self::new(Machine::new(servet_sim::presets::dempsey()), None)
    }

    /// The unicore Athlon 3200.
    pub fn athlon3200() -> Self {
        Self::new(Machine::new(servet_sim::presets::athlon3200()), None)
    }

    /// A fast small platform for tests.
    pub fn tiny() -> Self {
        Self::new(Machine::new(servet_sim::presets::tiny_smp()), None)
    }

    /// A fast small platform whose L2 is shared by core pairs.
    pub fn tiny_shared_l2() -> Self {
        Self::new(Machine::new(servet_sim::presets::tiny_shared_l2()), None)
    }

    /// A fast small NUMA platform with per-pair buses and per-cell
    /// controllers.
    pub fn tiny_numa() -> Self {
        Self::new(Machine::new(servet_sim::presets::tiny_numa()), None)
    }

    /// A fast 2×4-core cluster for communication tests.
    pub fn tiny_cluster() -> Self {
        let mut spec = servet_sim::presets::tiny_smp();
        spec.name = "tiny_cluster".into();
        Self::new(
            Machine::new(spec),
            Some(servet_net::presets::tiny_cluster()),
        )
    }

    /// Override the measurement noise (0 disables it).
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Override the RNG seed for noise.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = ChaCha8Rng::seed_from_u64(seed);
        self
    }

    /// Override the real-measurement cost model used by the Table I ledger.
    pub fn with_cost(mut self, cost: MeasurementCost) -> Self {
        self.cost = cost;
        self
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The underlying cluster, if any.
    pub fn cluster(&self) -> Option<&VirtualCluster> {
        self.cluster.as_ref()
    }

    fn noisy(&mut self, value: f64) -> f64 {
        if self.noise == 0.0 {
            value
        } else {
            value * (1.0 + self.noise * (self.rng.gen::<f64>() * 2.0 - 1.0))
        }
    }

    /// Charge the ledger for a traversal measurement covering `accesses`
    /// accesses at `cycles` each.
    fn charge_traverse(&mut self, accesses: f64, cycles: f64) {
        let secs = self
            .machine
            .spec()
            .cycles_to_seconds(accesses * cycles * self.cost.traverse_reps);
        self.elapsed_s += self.cost.setup_s + secs;
    }
}

impl Platform for SimPlatform {
    fn name(&self) -> &str {
        &self.machine.spec().name
    }

    fn num_cores(&self) -> usize {
        self.machine.spec().num_cores
    }

    fn total_cores(&self) -> usize {
        self.cluster
            .as_ref()
            .map_or(self.num_cores(), |c| c.topology().total_cores())
    }

    fn page_size(&self) -> usize {
        self.machine.spec().page_size
    }

    fn traverse_cycles(&mut self, core: CoreId, size: usize, stride: usize) -> f64 {
        let trials = traverse_trials(size, self.machine.spec().page_size);
        let mut total = 0.0;
        for _ in 0..trials {
            let array = self.machine.alloc_array(size);
            self.machine.reset();
            total += self.machine.traverse(core, &array, stride, 1, 2);
        }
        let cycles = total / trials as f64;
        self.charge_traverse((trials * (size / stride).max(1)) as f64, cycles);
        self.noisy(cycles)
    }

    fn traverse_concurrent_cycles(&mut self, jobs: &[TraverseJob], stride: usize) -> Vec<f64> {
        let mut totals = vec![0.0f64; jobs.len()];
        for _ in 0..CONCURRENT_TRIALS {
            let arrays: Vec<_> = jobs
                .iter()
                .map(|&(_, size)| self.machine.alloc_array(size))
                .collect();
            self.machine.reset();
            let sim_jobs: Vec<TraversalJob<'_>> = jobs
                .iter()
                .zip(&arrays)
                .map(|(&(core, _), array)| TraversalJob {
                    core,
                    array,
                    stride,
                })
                .collect();
            let cycles = self.machine.traverse_concurrent(&sim_jobs, 1, 2);
            for (t, c) in totals.iter_mut().zip(&cycles) {
                *t += c;
            }
        }
        let cycles: Vec<f64> = totals
            .iter()
            .map(|t| t / CONCURRENT_TRIALS as f64)
            .collect();
        let worst = cycles.iter().copied().fold(0.0, f64::max);
        let accesses = jobs
            .iter()
            .map(|&(_, s)| (CONCURRENT_TRIALS * (s / stride).max(1)) as f64)
            .fold(0.0, f64::max);
        self.charge_traverse(accesses, worst);
        cycles.into_iter().map(|c| self.noisy(c)).collect()
    }

    fn copy_bandwidth_gbs(&mut self, active: &[CoreId]) -> Vec<f64> {
        let bw = self.memsys.bandwidth(active);
        // A real measurement streams `copy_bytes` on each core; the run
        // lasts as long as the slowest core.
        let slowest = bw.iter().copied().fold(f64::INFINITY, f64::min);
        if slowest.is_finite() && slowest > 0.0 {
            self.elapsed_s += self.cost.setup_s + self.cost.copy_bytes / (slowest * 1e9);
        }
        bw.into_iter().map(|b| self.noisy(b)).collect()
    }

    fn traverse_pattern_cycles(&mut self, core: CoreId, size: usize, offsets: &[u64]) -> f64 {
        assert!(!offsets.is_empty());
        let trials = traverse_trials(size, self.machine.spec().page_size).min(4);
        let mut total = 0.0;
        for _ in 0..trials {
            let array = self.machine.alloc_array(size);
            self.machine.reset();
            // Warm-up pass, then one measured pass (run_trace replays the
            // exact sequence).
            self.machine.run_trace(core, &array, offsets);
            total += self.machine.run_trace(core, &array, offsets);
        }
        let cycles = total / trials as f64;
        self.charge_traverse((trials * offsets.len()) as f64, cycles);
        self.noisy(cycles)
    }

    fn message_latency_us(&mut self, a: CoreId, b: CoreId, size: usize) -> f64 {
        let cluster = self
            .cluster
            .as_mut()
            .expect("platform has no cluster: messaging unsupported");
        let t = cluster.ping_pong_us(a, b, size, 4);
        self.elapsed_s += self.cost.setup_s + 2.0 * t * 1e-6 * self.cost.message_reps;
        t
    }

    fn concurrent_message_latency_us(
        &mut self,
        pairs: &[(CoreId, CoreId)],
        size: usize,
    ) -> Vec<f64> {
        let cluster = self
            .cluster
            .as_mut()
            .expect("platform has no cluster: messaging unsupported");
        let lats = cluster.concurrent_send_latency_us(pairs, size);
        let worst = lats.iter().copied().fold(0.0, f64::max);
        self.elapsed_s += self.cost.setup_s + worst * 1e-6 * self.cost.message_reps;
        lats
    }

    fn supports_messaging(&self) -> bool {
        self.cluster.is_some() && self.total_cores() > 1
    }

    fn supports_coherence_probes(&self) -> bool {
        self.machine.spec().coherence.is_some() && self.num_cores() > 1
    }

    fn shared_stream_cycles(&mut self, buffer_bytes: usize, jobs: &[SharedStreamJob]) -> Vec<f64> {
        let array = self.machine.alloc_shared_array(buffer_bytes);
        self.machine.reset();
        let sim_jobs: Vec<SharedJob<'_>> = jobs
            .iter()
            .map(|j| SharedJob {
                core: j.core,
                array: &array,
                offset: j.offset,
                stride: j.stride,
                count: j.count,
                write: j.write,
            })
            .collect();
        let cycles = self.machine.traverse_shared(&sim_jobs, 1, 4);
        let worst = cycles.iter().copied().fold(0.0, f64::max);
        let accesses = jobs.iter().map(|j| j.count).max().unwrap_or(1) as f64 * 4.0;
        self.charge_traverse(accesses, worst);
        cycles.into_iter().map(|c| self.noisy(c)).collect()
    }

    fn take_coherence_traffic(&mut self) -> Option<CoherenceTraffic> {
        let taken = self.machine.take_coherence_traffic();
        if let Some(t) = &taken {
            self.drained_traffic = self.drained_traffic.plus(t);
        }
        taken
    }

    fn coherence_traffic_total(&self) -> Option<CoherenceTraffic> {
        self.machine
            .coherence_traffic()
            .map(|live| self.drained_traffic.plus(&live))
    }

    fn coherence_params(&self) -> Option<CoherenceSpec> {
        self.machine.spec().coherence
    }

    fn elapsed_seconds(&self) -> f64 {
        self.elapsed_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use servet_sim::KB;

    #[test]
    fn traverse_reflects_hierarchy() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let small = p.traverse_cycles(0, 4 * KB, KB);
        let large = p.traverse_cycles(0, 512 * KB, KB);
        assert!(small < large);
        assert!((small - 2.0).abs() < 0.5, "small = {small}");
    }

    #[test]
    fn noise_is_bounded() {
        let mut p = SimPlatform::tiny().with_noise(0.01).with_seed(7);
        let vals: Vec<f64> = (0..8).map(|_| p.traverse_cycles(0, 4 * KB, KB)).collect();
        for v in &vals {
            assert!((v - 2.0).abs() / 2.0 < 0.011, "v = {v}");
        }
        // And actually varies.
        assert!(vals.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn concurrent_traverse_matches_machine_behavior() {
        let mut p = SimPlatform::tiny_shared_l2().with_noise(0.0);
        let size = 2 * 128 * KB / 3;
        let reference = p.traverse_cycles(0, size, KB);
        let pair = p.traverse_concurrent_cycles(&[(0, size), (1, size)], KB);
        assert!(pair[0] / reference > 2.0);
    }

    #[test]
    fn copy_bandwidth_contends() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let solo = p.copy_bandwidth_gbs(&[0])[0];
        let both = p.copy_bandwidth_gbs(&[0, 1]);
        assert!(both[0] < solo);
    }

    #[test]
    fn messaging_requires_cluster() {
        let p = SimPlatform::tiny();
        assert!(!p.supports_messaging());
        let p = SimPlatform::dunnington();
        assert!(p.supports_messaging());
        assert_eq!(p.total_cores(), 24);
    }

    #[test]
    #[should_panic]
    fn message_without_cluster_panics() {
        let mut p = SimPlatform::tiny();
        p.message_latency_us(0, 1, 64);
    }

    #[test]
    fn message_latency_layers() {
        let mut p = SimPlatform::finis_terrae(2);
        let intra = p.message_latency_us(0, 1, 16 * KB);
        let inter = p.message_latency_us(0, 16, 16 * KB);
        assert!(inter > intra);
    }

    #[test]
    fn ledger_accumulates() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        assert_eq!(p.elapsed_seconds(), 0.0);
        p.traverse_cycles(0, 4 * KB, KB);
        let t1 = p.elapsed_seconds();
        assert!(t1 > 0.0);
        p.copy_bandwidth_gbs(&[0]);
        assert!(p.elapsed_seconds() > t1);
    }

    #[test]
    fn shared_stream_shows_false_sharing() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        assert!(p.supports_coherence_probes());
        let job = |core, offset| SharedStreamJob {
            core,
            offset,
            stride: 64,
            count: 8,
            write: true,
        };
        let hot = p.shared_stream_cycles(4 * KB, &[job(0, 0), job(1, 8)]);
        let hot_traffic = p.take_coherence_traffic().unwrap();
        let cold = p.shared_stream_cycles(4 * KB, &[job(0, 0), job(1, 1024)]);
        let cold_traffic = p.take_coherence_traffic().unwrap();
        assert!(hot[0] > 3.0 * cold[0], "hot {hot:?} vs cold {cold:?}");
        assert!(hot_traffic.invalidations > cold_traffic.invalidations);
        assert!(p.coherence_params().is_some());
    }

    #[test]
    fn presets_construct() {
        assert_eq!(SimPlatform::dunnington().num_cores(), 24);
        assert_eq!(SimPlatform::finis_terrae(2).total_cores(), 32);
        assert_eq!(SimPlatform::dempsey().num_cores(), 2);
        assert_eq!(SimPlatform::athlon3200().num_cores(), 1);
        assert!(!SimPlatform::athlon3200().supports_messaging());
        assert_eq!(SimPlatform::tiny_numa().num_cores(), 8);
        assert_eq!(SimPlatform::tiny_cluster().total_cores(), 8);
    }
}
