//! Shared-cache detection (paper Fig. 5).
//!
//! For each cache level, a single core traversing an array of `(2/3)·CS`
//! provides the reference cost; then every pair of cores traverses one such
//! array each, concurrently. Two arrays of that size cannot coexist in one
//! cache instance, so pairs that share the cache evict each other and their
//! cost ratio against the reference exceeds 2; pairs with private instances
//! stay near 1.

use crate::platform::{CoreId, Platform, SharedStreamJob};
use serde::{Deserialize, Serialize};
use servet_stats::groups::groups_from_pairs;

/// Configuration of the Fig. 5 benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedCacheConfig {
    /// Traversal stride in bytes (the mcalibrator stride).
    pub stride: usize,
    /// Ratio above which a pair is declared sharing (the paper's
    /// `ratio > 2`).
    pub ratio_threshold: f64,
    /// Array size as a fraction of the cache size (the paper's 2/3 — "a
    /// little larger than CS/2").
    pub size_fraction: f64,
}

impl Default for SharedCacheConfig {
    fn default() -> Self {
        Self {
            stride: 1024,
            ratio_threshold: 2.0,
            size_fraction: 2.0 / 3.0,
        }
    }
}

/// Results for one cache level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedLevel {
    /// 1-based cache level.
    pub level: u8,
    /// Cache size used to derive the array size, bytes.
    pub cache_size: usize,
    /// Single-core reference cost, cycles per access.
    pub reference_cycles: f64,
    /// Measured ratio for every pair tested.
    pub pair_ratios: Vec<((CoreId, CoreId), f64)>,
    /// Pairs whose ratio exceeded the threshold — the paper's `Psc[i]`.
    pub sharing_pairs: Vec<(CoreId, CoreId)>,
    /// Core groups inferred from the sharing pairs (each group shares one
    /// cache instance).
    pub groups: Vec<Vec<CoreId>>,
}

/// Coherence-vs-capacity split of the misses of a two-core write probe
/// at one cache level's working-set size — §III-B's interference, seen
/// through the MESI layer instead of a cost ratio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelMissDecomposition {
    /// 1-based cache level whose size set the probe's working set.
    pub level: u8,
    /// Cache size the working set was derived from, bytes.
    pub cache_size: usize,
    /// Misses to lines the peer core had invalidated (true sharing and
    /// ping-pong — the coherence component of the Fig. 5 slowdown).
    pub coherence_misses: u64,
    /// Misses to lines simply evicted (the capacity component).
    pub capacity_misses: u64,
    /// `coherence_misses / (coherence_misses + capacity_misses)`.
    pub coherence_fraction: f64,
}

/// Results for all levels — the paper's `Psc[0..l-1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedCacheResult {
    /// One entry per cache level, in level order.
    pub levels: Vec<SharedLevel>,
    /// Per-level miss decomposition, when the platform exposes coherence
    /// traffic (filled by the suite's coherence stage; empty otherwise,
    /// and in profiles written before the field existed).
    #[serde(default)]
    pub miss_decomposition: Vec<LevelMissDecomposition>,
}

impl SharedCacheResult {
    /// Whether any level is shared between any cores.
    pub fn any_shared(&self) -> bool {
        self.levels.iter().any(|l| !l.sharing_pairs.is_empty())
    }

    /// The cores sharing the given level with `core` (excluding itself).
    pub fn cores_sharing_with(&self, level: u8, core: CoreId) -> Vec<CoreId> {
        self.levels
            .iter()
            .find(|l| l.level == level)
            .map(|l| {
                l.groups
                    .iter()
                    .find(|g| g.contains(&core))
                    .map(|g| g.iter().copied().filter(|&c| c != core).collect())
                    .unwrap_or_default()
            })
            .unwrap_or_default()
    }
}

/// Run the Fig. 5 benchmark for every detected cache level.
///
/// `cache_sizes[i]` is the size of level `i + 1` as estimated by the
/// cache-size benchmark.
pub fn detect_shared_caches(
    platform: &mut dyn Platform,
    cache_sizes: &[usize],
    config: &SharedCacheConfig,
) -> SharedCacheResult {
    let cores = platform.num_cores();
    let mut levels = Vec::with_capacity(cache_sizes.len());
    for (i, &cs) in cache_sizes.iter().enumerate() {
        let size = ((cs as f64) * config.size_fraction) as usize;
        let size = size.max(config.stride);
        let reference = platform.traverse_cycles(0, size, config.stride);
        let mut pair_ratios = Vec::new();
        let mut sharing_pairs = Vec::new();
        for a in 0..cores {
            for b in a + 1..cores {
                let costs =
                    platform.traverse_concurrent_cycles(&[(a, size), (b, size)], config.stride);
                // Both cores run the same workload; judge the pair by the
                // mean of the two costs.
                let pair_cost = (costs[0] + costs[1]) / 2.0;
                let ratio = pair_cost / reference;
                pair_ratios.push(((a, b), ratio));
                if ratio > config.ratio_threshold {
                    sharing_pairs.push((a, b));
                }
            }
        }
        let groups = groups_from_pairs(&sharing_pairs);
        levels.push(SharedLevel {
            level: (i + 1) as u8,
            cache_size: cs,
            reference_cycles: reference,
            pair_ratios,
            sharing_pairs,
            groups,
        });
    }
    SharedCacheResult {
        levels,
        miss_decomposition: Vec::new(),
    }
}

/// Decompose the misses behind each level's Fig. 5 interference into
/// coherence and capacity misses.
///
/// Two cores write one shared buffer sized like the level's Fig. 5
/// arrays, touching the *same* lines: line steals show up as coherence
/// misses, while cold first-touches and plain evictions land in the
/// capacity bucket. A high coherence fraction says the interference at
/// that working-set size is line ping-pong, not eviction pressure.
///
/// Runs as part of the suite's coherence stage — after the paper's own
/// benchmarks — so their measurements are untouched. Requires
/// [`Platform::supports_coherence_probes`].
pub fn decompose_shared_misses(
    platform: &mut dyn Platform,
    cache_sizes: &[usize],
    config: &SharedCacheConfig,
) -> Vec<LevelMissDecomposition> {
    assert!(
        platform.supports_coherence_probes(),
        "platform {:?} cannot observe coherence traffic",
        platform.name()
    );
    cache_sizes
        .iter()
        .enumerate()
        .map(|(i, &cs)| {
            let size = (((cs as f64) * config.size_fraction) as usize).max(config.stride);
            let count = (size / config.stride).max(1);
            let jobs: Vec<SharedStreamJob> = [0, 1]
                .into_iter()
                .map(|core| SharedStreamJob {
                    core,
                    offset: 0,
                    stride: config.stride,
                    count,
                    write: true,
                })
                .collect();
            platform.take_coherence_traffic(); // drain unrelated traffic
            platform.shared_stream_cycles(size, &jobs);
            let t = platform.take_coherence_traffic().unwrap_or_default();
            LevelMissDecomposition {
                level: (i + 1) as u8,
                cache_size: cs,
                coherence_misses: t.coherence_misses,
                capacity_misses: t.capacity_misses,
                coherence_fraction: t.coherence_miss_fraction(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_platform::SimPlatform;
    use servet_sim::KB;

    #[test]
    fn tiny_shared_l2_topology_recovered() {
        // Ground truth: L1 private, L2 shared by {0,1} and {2,3}.
        let mut p = SimPlatform::tiny_shared_l2().with_noise(0.003);
        let result =
            detect_shared_caches(&mut p, &[8 * KB, 128 * KB], &SharedCacheConfig::default());
        assert_eq!(result.levels.len(), 2);
        assert!(
            result.levels[0].sharing_pairs.is_empty(),
            "L1 must be private"
        );
        assert_eq!(result.levels[1].sharing_pairs, vec![(0, 1), (2, 3)]);
        assert_eq!(result.levels[1].groups, vec![vec![0, 1], vec![2, 3]]);
        assert!(result.any_shared());
        assert_eq!(result.cores_sharing_with(2, 0), vec![1]);
        assert_eq!(result.cores_sharing_with(2, 3), vec![2]);
        assert!(result.cores_sharing_with(1, 0).is_empty());
        assert!(result.cores_sharing_with(9, 0).is_empty());
    }

    #[test]
    fn private_caches_yield_no_pairs() {
        let mut p = SimPlatform::tiny().with_noise(0.003);
        let result =
            detect_shared_caches(&mut p, &[8 * KB, 64 * KB], &SharedCacheConfig::default());
        assert!(!result.any_shared());
        // Every measured ratio should be near 1.
        for level in &result.levels {
            for &(_, r) in &level.pair_ratios {
                assert!(r < 1.6, "ratio {r} too high for private caches");
            }
        }
    }

    #[test]
    fn pair_count_is_all_pairs() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let result = detect_shared_caches(&mut p, &[8 * KB], &SharedCacheConfig::default());
        assert_eq!(result.levels[0].pair_ratios.len(), 6); // C(4,2)
    }

    #[test]
    fn decomposition_shows_ping_pong_as_coherence_misses() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let decomp =
            decompose_shared_misses(&mut p, &[8 * KB, 64 * KB], &SharedCacheConfig::default());
        assert_eq!(decomp.len(), 2);
        for d in &decomp {
            // Same-line writers: every steady-state miss is a line steal.
            assert!(
                d.coherence_misses > d.capacity_misses,
                "level {}: {} coherence vs {} capacity",
                d.level,
                d.coherence_misses,
                d.capacity_misses
            );
            assert!(d.coherence_fraction > 0.5);
        }
        assert_eq!(decomp[0].level, 1);
        assert_eq!(decomp[1].cache_size, 64 * KB);
    }

    #[test]
    #[should_panic(expected = "cannot observe coherence traffic")]
    fn decomposition_requires_coherence_probes() {
        let mut p = SimPlatform::athlon3200();
        decompose_shared_misses(&mut p, &[8 * KB], &SharedCacheConfig::default());
    }

    #[test]
    fn reference_cycles_reasonable() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let result = detect_shared_caches(&mut p, &[8 * KB], &SharedCacheConfig::default());
        // (2/3)·8 KB fits the 8 KB L1: the reference is the L1 hit cost.
        let r = result.levels[0].reference_cycles;
        assert!((r - 2.0).abs() < 0.5, "reference = {r}");
    }
}
