//! mcalibrator — the strided-traversal measurement kernel (paper Fig. 1).
//!
//! Arrays of growing size are traversed with a fixed stride and the average
//! number of cycles per access is recorded. The paper's choices, kept here:
//!
//! * **1 KB stride** — "big enough to avoid influences of the hardware
//!   prefetcher … larger than any existing cache line size and … a divisor
//!   of any cache size";
//! * sizes **double up to 2 MB** and then grow **by 1 MB**, so the small
//!   caches are sampled geometrically and the large ones densely enough for
//!   the probabilistic algorithm;
//! * the real kernel reads its stride *from the array* (`j += A[j]`) to
//!   defeat compiler optimization — a concern for the host backend;
//!   the simulator backend performs the same address sequence directly.

use crate::platform::{CoreId, Platform};
use serde::{Deserialize, Serialize};
use servet_stats::gradient::gradient;

const KB: usize = 1024;
const MB: usize = 1024 * 1024;

/// Sweep configuration (the paper's `MIN_CACHE` / `MAX_CACHE` loop).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McalibratorConfig {
    /// First array size tested, bytes.
    pub min_size: usize,
    /// Last array size tested (inclusive), bytes. Must comfortably exceed
    /// the largest cache.
    pub max_size: usize,
    /// Traversal stride, bytes.
    pub stride: usize,
    /// Sizes double until this threshold, then grow by `linear_step`.
    pub double_until: usize,
    /// Linear increment beyond `double_until`, bytes.
    pub linear_step: usize,
}

impl Default for McalibratorConfig {
    fn default() -> Self {
        Self {
            min_size: 4 * KB,
            max_size: 64 * MB,
            stride: KB,
            double_until: 2 * MB,
            linear_step: MB,
        }
    }
}

impl McalibratorConfig {
    /// A reduced sweep for small machines (tests): up to `max_size`,
    /// keeping the paper's proportions (sampling step no finer than the
    /// caches' size gaps, so page-coloring transitions stay sharp).
    pub fn small(max_size: usize) -> Self {
        Self {
            min_size: KB,
            max_size,
            stride: KB,
            double_until: 32 * KB,
            linear_step: 32 * KB,
        }
    }

    /// The sequence of array sizes this configuration visits.
    pub fn sizes(&self) -> Vec<usize> {
        assert!(self.min_size > 0 && self.min_size <= self.max_size);
        assert!(self.stride > 0);
        let mut out = Vec::new();
        let mut s = self.min_size;
        while s <= self.max_size {
            out.push(s);
            s = if s < self.double_until {
                s * 2
            } else {
                s + self.linear_step
            };
        }
        out
    }
}

/// The output arrays `S` and `C` of the paper's Fig. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McalibratorOutput {
    /// Array sizes tested, bytes.
    pub sizes: Vec<usize>,
    /// Average cycles per access during the traversal of each size.
    pub cycles: Vec<f64>,
    /// Stride used, bytes.
    pub stride: usize,
}

impl McalibratorOutput {
    /// The gradient series `C[k+1] / C[k]` (paper Fig. 2b).
    pub fn gradients(&self) -> Vec<f64> {
        gradient(&self.cycles)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }
}

/// Run the mcalibrator sweep on `core`.
pub fn mcalibrator(
    platform: &mut dyn Platform,
    core: CoreId,
    config: &McalibratorConfig,
) -> McalibratorOutput {
    let _span = servet_obs::span("mcalibrator.sweep");
    let sizes = config.sizes();
    servet_obs::counter("mcalibrator.samples").add(sizes.len() as u64);
    let cycles = sizes
        .iter()
        .map(|&s| platform.traverse_cycles(core, s, config.stride))
        .collect();
    McalibratorOutput {
        sizes,
        cycles,
        stride: config.stride,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_platform::SimPlatform;

    #[test]
    fn default_config_matches_paper_shape() {
        let sizes = McalibratorConfig::default().sizes();
        assert_eq!(sizes[0], 4 * KB);
        // Doubling: 4K 8K ... 2M = 10 points.
        assert_eq!(sizes[9], 2 * MB);
        assert_eq!(sizes[10], 3 * MB);
        assert_eq!(*sizes.last().unwrap(), 64 * MB);
        // Strictly increasing.
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn small_config_is_dense() {
        let sizes = McalibratorConfig::small(128 * KB).sizes();
        assert!(sizes.len() >= 8, "{sizes:?}");
        assert!(*sizes.last().unwrap() <= 128 * KB);
    }

    #[test]
    fn sweep_on_tiny_machine_shows_plateaus() {
        // tiny_smp: 8 KB L1 (2 cy), 64 KB L2 (10 cy), memory (100+ cy).
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let out = mcalibrator(&mut p, 0, &McalibratorConfig::small(256 * KB));
        assert_eq!(out.len(), out.sizes.len());
        assert!(!out.is_empty());
        // Cost at 4 KB is the L1 hit; at the top it is memory-bound.
        let first = out.cycles[0];
        let last = *out.cycles.last().unwrap();
        assert!((first - 2.0).abs() < 0.5, "first = {first}");
        assert!(last > 50.0, "last = {last}");
        // Gradient has at least one clear peak (the L1 exhaustion).
        let g = out.gradients();
        assert!(g.iter().copied().fold(0.0, f64::max) > 1.5);
    }

    #[test]
    fn cycles_trend_upward() {
        // Random page mapping makes individual samples of the transition
        // region noisy (each size draws a fresh mapping), so the series is
        // only required to avoid large dips and to end far above its start.
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let out = mcalibrator(&mut p, 0, &McalibratorConfig::small(256 * KB));
        for w in out.cycles.windows(2) {
            assert!(w[1] >= w[0] * 0.80, "cycles dipped: {:?}", w);
        }
        assert!(*out.cycles.last().unwrap() > out.cycles[0] * 10.0);
    }

    #[test]
    #[should_panic]
    fn degenerate_config_panics() {
        let cfg = McalibratorConfig {
            min_size: 0,
            ..Default::default()
        };
        cfg.sizes();
    }
}
