//! The machine zoo: batched suite runs over a randomized machine
//! population.
//!
//! The paper validates Servet on four hand-picked machines (§IV). The zoo
//! scales that validation: it generates a seeded population of perturbed
//! [`MachineSpec`]s from the small presets (cache sizes, associativities,
//! sharing topologies, bus capacities and noise all vary — see
//! [`servet_sim::perturb()`]), fans the full suite out across worker
//! threads, optionally streams every profile into a registry through a
//! [`ProfileSink`], and aggregates a [`ZooReport`]: per-field detection
//! accuracy against each spec's ground truth plus per-stage virtual-time
//! distributions.
//!
//! Everything is deterministic in `(seed, machines)`: per-machine RNG
//! streams are derived from the zoo seed, each run goes through the
//! scope-pure [`run_suite`], results land in
//! index-ordered slots, and the report holds only virtual (ledger) times —
//! so the same seed yields a byte-identical report **regardless of the
//! worker count**.
//!
//! The driver lives in `servet-core` and therefore cannot name the
//! registry client (`servet-registry` depends on this crate); the
//! [`ProfileSink`] trait inverts that edge, and the `servet` CLI plugs a
//! retrying registry client in.

use crate::manifest::RunManifest;
use crate::sim_platform::SimPlatform;
use crate::suite::{run_suite, SuiteConfig, SuiteReport, SuiteTimings};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use servet_sim::perturb::{perturb, PerturbConfig};
use servet_sim::spec::MachineSpec;
use servet_sim::Machine;
use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parameters of one zoo run.
#[derive(Debug, Clone)]
pub struct ZooConfig {
    /// Population size.
    pub machines: usize,
    /// Worker threads running suites concurrently (min 1).
    pub workers: usize,
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Suite configuration every machine runs with.
    pub suite: SuiteConfig,
    /// Perturbation knobs for the population generator.
    pub perturb: PerturbConfig,
    /// Range the per-machine measurement noise is drawn from.
    pub noise: (f64, f64),
    /// Extra MB-range machines (perturbations of
    /// [`servet_sim::presets::mb_smp`]) appended *after* the `machines`
    /// standard members, so enabling them never shifts the standard
    /// population's derived seeds. Zero by default.
    pub mb_machines: usize,
    /// Suite the MB-range members run with — a wider, coarser
    /// mcalibrator sweep sized for multi-megabyte caches (see
    /// [`ZooConfig::mb_suite`]).
    pub mb_suite: SuiteConfig,
}

impl ZooConfig {
    /// A zoo of `machines` machines with the default suite (shared-cache
    /// detection on, memory/comm stages off for speed — zoo machines are
    /// single nodes, so comm would be skipped anyway).
    ///
    /// The mcalibrator sweep keeps the paper's proportions at zoo scale:
    /// the paper samples 3–12 MB caches every 1 MB (8–33 % of the cache
    /// size), so the zoo's 16–256 KB perturbed caches are sampled every
    /// 8 KB. The stock `small()` step of 32 KB leaves a 64 KB L2's
    /// transition window with barely two interior points — too few for
    /// the Fig. 3 fit to separate the true size from its multiplier
    /// neighbors under noise.
    pub fn new(machines: usize, workers: usize, seed: u64) -> Self {
        const KB: usize = 1024;
        Self {
            machines,
            workers,
            seed,
            suite: SuiteConfig {
                skip_memory: true,
                mcalibrator: crate::mcalibrator::McalibratorConfig {
                    min_size: KB,
                    max_size: 1024 * KB,
                    stride: KB,
                    double_until: 16 * KB,
                    linear_step: 8 * KB,
                },
                detect: crate::cache_detect::DetectConfig {
                    gradient_threshold: 1.10,
                    merge_gap: 5,
                    ..crate::cache_detect::DetectConfig::small()
                },
                // The coherence extension runs after the paper's stages,
                // so enabling it cannot move their noise draws.
                run_false_sharing: true,
                ..SuiteConfig::small(1024 * KB)
            },
            perturb: PerturbConfig::default(),
            noise: (0.001, 0.006),
            mb_machines: 0,
            mb_suite: Self::mb_suite(),
        }
    }

    /// Suite configuration for the MB-range members: the same stages as
    /// the standard zoo suite, but with the mcalibrator sweep rescaled
    /// for caches in the 16 KB – 4 MB band the perturbed
    /// [`servet_sim::presets::mb_smp`] spans. Doubling ends at 64 KB
    /// (so every perturbed L1 — 16/32/64 KB — sits in the dense region)
    /// and the linear tail steps 64 KB up to 8 MB (every perturbed L2 —
    /// 1/2/4 MB — lands on the grid with plenty of interior points).
    /// Affordable only on the packed fast-path engine: the sweep
    /// replays ~10⁸ simulated accesses per machine.
    pub fn mb_suite() -> SuiteConfig {
        const KB: usize = 1024;
        const MB: usize = 1024 * KB;
        SuiteConfig {
            skip_memory: true,
            mcalibrator: crate::mcalibrator::McalibratorConfig {
                min_size: 4 * KB,
                max_size: 8 * MB,
                stride: KB,
                double_until: 64 * KB,
                linear_step: 64 * KB,
            },
            detect: crate::cache_detect::DetectConfig {
                gradient_threshold: 1.10,
                merge_gap: 5,
                ..crate::cache_detect::DetectConfig::small()
            },
            run_false_sharing: true,
            ..SuiteConfig::small(8 * MB)
        }
    }

    /// Total population size: standard members plus MB-range members.
    pub fn population_size(&self) -> usize {
        self.machines + self.mb_machines
    }

    /// The suite configuration population member `index` runs with.
    pub fn suite_for(&self, index: usize) -> &SuiteConfig {
        if index < self.machines {
            &self.suite
        } else {
            &self.mb_suite
        }
    }
}

/// One member of the population: the ground-truth spec plus the derived
/// per-machine seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooMachine {
    /// Position in the population (stable across worker counts).
    pub index: usize,
    /// Name of the preset the spec was perturbed from.
    pub base: String,
    /// Ground-truth machine description.
    pub spec: MachineSpec,
    /// Seed for the simulator's page allocator and measurement noise.
    pub sim_seed: u64,
    /// Relative measurement noise of this machine.
    pub noise: f64,
}

/// Mix a machine index into the master seed (splitmix64-style) so each
/// machine gets an independent, reproducible stream.
fn derive_seed(master: u64, index: usize) -> u64 {
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate the deterministic population for `config`: machine `i` is a
/// perturbation of preset `i % 3` under a seed derived from the zoo seed.
/// When [`ZooConfig::mb_machines`] is non-zero, that many perturbations
/// of the MB-range [`servet_sim::presets::mb_smp`] preset follow at
/// indices `machines..machines + mb_machines`; because their seeds
/// derive from those later indices, the standard prefix is byte-identical
/// with MB members on or off.
pub fn generate_population(config: &ZooConfig) -> Vec<ZooMachine> {
    let bases = [
        servet_sim::presets::tiny_smp(),
        servet_sim::presets::tiny_shared_l2(),
        servet_sim::presets::tiny_numa(),
    ];
    let mb_base = servet_sim::presets::mb_smp();
    (0..config.population_size())
        .map(|index| {
            let machine_seed = derive_seed(config.seed, index);
            let base = if index < config.machines {
                &bases[index % bases.len()]
            } else {
                &mb_base
            };
            let spec = perturb(base, machine_seed, &config.perturb);
            let mut rng = ChaCha8Rng::seed_from_u64(machine_seed ^ 0x004E_015E);
            let noise = if config.noise.0 < config.noise.1 {
                rng.gen_range(config.noise.0..config.noise.1)
            } else {
                config.noise.0
            };
            ZooMachine {
                index,
                base: base.name.clone(),
                spec,
                sim_seed: machine_seed ^ 0x5EED,
                noise,
            }
        })
        .collect()
}

/// Where a zoo run streams each finished profile. Implementations are
/// per-worker (created by the sink factory passed to [`run_zoo`]), so
/// they need no internal synchronization.
pub trait ProfileSink: Send {
    /// Publish one machine's results. An error aborts the zoo run.
    fn publish(
        &mut self,
        machine: &ZooMachine,
        report: &SuiteReport,
        manifest: &RunManifest,
    ) -> io::Result<()>;
}

/// Ground-truth comparison of one machine's run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineEval {
    /// True number of cache levels.
    pub true_levels: usize,
    /// Detected number of cache levels.
    pub detected_levels: usize,
    /// Per true level: `(level, true size, detected size)`; the detected
    /// entry is `None` when the level was missed entirely.
    pub level_sizes: Vec<(u8, usize, Option<usize>)>,
    /// Per evaluated level `> 1`: `(level, sharing pairs correct)`.
    /// Empty when the shared-cache stage was skipped or level counts
    /// disagree (pairs would compare against the wrong level).
    pub sharing_levels: Vec<(u8, bool)>,
    /// The comm stage fell back to the configured probe size because no
    /// cache level was detected.
    pub probe_size_fallback: bool,
    /// `(true innermost line size, advised padding)` when the
    /// false-sharing stage ran; the advice is correct when it is at
    /// least the line size. Absent (and in pre-coherence reports) when
    /// the stage was off or unsupported.
    #[serde(default)]
    pub padding: Option<(usize, Option<usize>)>,
}

impl MachineEval {
    /// True size of every level recovered exactly.
    pub fn all_sizes_correct(&self) -> bool {
        self.true_levels == self.detected_levels
            && self.level_sizes.iter().all(|(_, t, d)| Some(*t) == *d)
    }

    /// The advised padding cures false sharing on this machine: at least
    /// the true line size. `None` when the stage did not run.
    pub fn padding_correct(&self) -> Option<bool> {
        self.padding
            .map(|(line, advised)| advised.is_some_and(|p| p >= line))
    }
}

/// Compare what the suite measured against what the spec declares.
pub fn evaluate(spec: &MachineSpec, report: &SuiteReport) -> MachineEval {
    let profile = &report.profile;
    let level_sizes: Vec<(u8, usize, Option<usize>)> = spec
        .caches
        .iter()
        .map(|c| (c.level, c.size, profile.cache_size(c.level)))
        .collect();
    let mut sharing_levels = Vec::new();
    if let Some(shared) = &profile.shared_caches {
        if profile.cache_levels.len() == spec.num_levels() {
            for c in spec.caches.iter().filter(|c| c.level > 1) {
                let truth = spec.sharing_pairs(c.level);
                let detected = shared
                    .levels
                    .iter()
                    .find(|l| l.level == c.level)
                    .map(|l| l.sharing_pairs.clone())
                    .unwrap_or_default();
                sharing_levels.push((c.level, detected == truth));
            }
        }
    }
    let padding = profile.false_sharing.as_ref().and_then(|fs| {
        spec.caches
            .first()
            .map(|l1| (l1.line_size, fs.advised_padding))
    });
    MachineEval {
        true_levels: spec.num_levels(),
        detected_levels: profile.cache_levels.len(),
        level_sizes,
        sharing_levels,
        probe_size_fallback: profile
            .communication
            .as_ref()
            .is_some_and(|c| c.probe_size_fallback),
        padding,
    }
}

/// One machine's row in the [`ZooReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineRow {
    /// Population index.
    pub index: usize,
    /// Perturbed machine name.
    pub name: String,
    /// Preset the machine derives from.
    pub base: String,
    /// Ground-truth comparison.
    pub eval: MachineEval,
    /// Virtual per-stage times of the run.
    pub timings: SuiteTimings,
    /// Spans the run's own manifest holds (scope-pure: only this run's).
    pub manifest_spans: usize,
}

/// Population-level detection-accuracy counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ZooAccuracy {
    /// Machines in the population.
    pub machines: usize,
    /// Machines whose detected level count matches the truth.
    pub level_count_correct: usize,
    /// True cache levels across the population.
    pub cache_sizes_total: usize,
    /// True cache levels whose size was detected exactly.
    pub cache_sizes_correct: usize,
    /// Sharing-topology comparisons performed.
    pub sharing_total: usize,
    /// Sharing-topology comparisons that matched the ground truth.
    pub sharing_correct: usize,
    /// Runs whose comm stage fell back to the configured probe size —
    /// counted apart so a fallback never masquerades as a detection.
    pub probe_fallbacks: usize,
    /// Machines whose false-sharing stage ran.
    #[serde(default)]
    pub padding_total: usize,
    /// Machines whose advised padding was at least the true line size.
    #[serde(default)]
    pub padding_correct: usize,
}

impl ZooAccuracy {
    /// Fraction of true cache levels whose size was recovered exactly.
    pub fn cache_size_accuracy(&self) -> f64 {
        if self.cache_sizes_total == 0 {
            return 1.0;
        }
        self.cache_sizes_correct as f64 / self.cache_sizes_total as f64
    }

    /// Fraction of sharing comparisons that matched.
    pub fn sharing_accuracy(&self) -> f64 {
        if self.sharing_total == 0 {
            return 1.0;
        }
        self.sharing_correct as f64 / self.sharing_total as f64
    }

    /// Fraction of false-sharing stages whose advised padding cures the
    /// ping-pong (at least the true line size).
    pub fn padding_accuracy(&self) -> f64 {
        if self.padding_total == 0 {
            return 1.0;
        }
        self.padding_correct as f64 / self.padding_total as f64
    }
}

/// Distribution of one suite stage's virtual time over the population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTimeStats {
    /// Minimum seconds.
    pub min_s: f64,
    /// Maximum seconds.
    pub max_s: f64,
    /// Arithmetic mean seconds.
    pub mean_s: f64,
    /// Sum over the population.
    pub total_s: f64,
}

impl StageTimeStats {
    fn from_samples(samples: impl Iterator<Item = f64>) -> Option<Self> {
        let mut n = 0usize;
        let (mut min, mut max, mut total) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        for s in samples {
            n += 1;
            min = min.min(s);
            max = max.max(s);
            total += s;
        }
        (n > 0).then(|| Self {
            min_s: min,
            max_s: max,
            mean_s: total / n as f64,
            total_s: total,
        })
    }
}

/// The zoo run's aggregate output, written as `zoo_report.json`.
/// Deterministic in `(seed, machines)` — it holds no wall-clock data and
/// every collection is ordered by population index or name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZooReport {
    /// Master seed of the run.
    pub seed: u64,
    /// Population size, MB-range members included.
    pub machines: usize,
    /// Aggregate detection accuracy.
    pub accuracy: ZooAccuracy,
    /// Stage name → virtual-time distribution over the population.
    pub stage_times: BTreeMap<String, StageTimeStats>,
    /// Per-machine rows, in population order.
    pub per_machine: Vec<MachineRow>,
}

impl ZooReport {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("zoo report serializes")
    }
}

/// Run one machine of the zoo: a scope-pure suite run on a fresh
/// simulator seeded from the machine's derived seeds.
pub fn run_machine(machine: &ZooMachine, suite: &SuiteConfig) -> (SuiteReport, RunManifest) {
    let sim = Machine::with_seed(machine.spec.clone(), machine.sim_seed);
    let mut platform = SimPlatform::new(sim, None)
        .with_noise(machine.noise)
        .with_seed(machine.sim_seed);
    run_suite(&mut platform, suite)
}

/// Run the whole zoo: generate the population, fan suite runs out across
/// `config.workers` threads, stream each result through the sink the
/// factory creates for its worker (`make_sink(worker)` returning
/// `Ok(None)` disables streaming for that worker), and aggregate the
/// report.
///
/// The report is identical for any worker count: work items are claimed
/// from a shared counter but every row lands in its population slot, and
/// all aggregation happens afterwards in index order.
pub fn run_zoo<F>(config: &ZooConfig, make_sink: F) -> io::Result<ZooReport>
where
    F: Fn(usize) -> io::Result<Option<Box<dyn ProfileSink>>> + Sync,
{
    let _zoo_span = servet_obs::span("zoo");
    let population = generate_population(config);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<MachineRow>>> =
        population.iter().map(|_| Mutex::new(None)).collect();
    let workers = config.workers.max(1).min(population.len().max(1));

    let worker_results: Vec<io::Result<()>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let population = &population;
                let next = &next;
                let slots = &slots;
                let make_sink = &make_sink;
                scope.spawn(move || -> io::Result<()> {
                    let mut sink = make_sink(worker)?;
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(machine) = population.get(index) else {
                            return Ok(());
                        };
                        let (report, manifest) = run_machine(machine, config.suite_for(index));
                        if let Some(sink) = sink.as_mut() {
                            sink.publish(machine, &report, &manifest)?;
                        }
                        let row = MachineRow {
                            index,
                            name: machine.spec.name.clone(),
                            base: machine.base.clone(),
                            eval: evaluate(&machine.spec, &report),
                            timings: report.timings,
                            manifest_spans: manifest.spans.len(),
                        };
                        *slots[index].lock().unwrap_or_else(|e| e.into_inner()) = Some(row);
                        servet_obs::counter("zoo.machines_run").incr();
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("zoo worker panicked"))
            .collect()
    });
    for result in worker_results {
        result?;
    }

    let per_machine: Vec<MachineRow> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every population slot filled")
        })
        .collect();
    Ok(aggregate(config, per_machine))
}

/// Fold per-machine rows into the population report. Separated from
/// [`run_zoo`] so tests can aggregate synthetic rows.
fn aggregate(config: &ZooConfig, per_machine: Vec<MachineRow>) -> ZooReport {
    let mut accuracy = ZooAccuracy {
        machines: per_machine.len(),
        ..ZooAccuracy::default()
    };
    for row in &per_machine {
        let eval = &row.eval;
        if eval.true_levels == eval.detected_levels {
            accuracy.level_count_correct += 1;
        }
        accuracy.cache_sizes_total += eval.level_sizes.len();
        accuracy.cache_sizes_correct += eval
            .level_sizes
            .iter()
            .filter(|(_, t, d)| Some(*t) == *d)
            .count();
        accuracy.sharing_total += eval.sharing_levels.len();
        accuracy.sharing_correct += eval.sharing_levels.iter().filter(|(_, ok)| *ok).count();
        if eval.probe_size_fallback {
            accuracy.probe_fallbacks += 1;
        }
        if let Some(correct) = eval.padding_correct() {
            accuracy.padding_total += 1;
            if correct {
                accuracy.padding_correct += 1;
            }
        }
    }

    type StageTime = fn(&SuiteTimings) -> f64;
    let mut stage_times = BTreeMap::new();
    let stages: [(&str, StageTime); 6] = [
        ("cache_size", |t| t.cache_size_s),
        ("micro_probes", |t| t.micro_probes_s),
        ("shared_caches", |t| t.shared_caches_s),
        ("memory_overhead", |t| t.memory_overhead_s),
        ("communication", |t| t.communication_s),
        ("false_sharing", |t| t.false_sharing_s),
    ];
    for (name, pick) in stages {
        if let Some(stats) =
            StageTimeStats::from_samples(per_machine.iter().map(|r| pick(&r.timings)))
        {
            if stats.total_s > 0.0 {
                stage_times.insert(name.to_string(), stats);
            }
        }
    }

    ZooReport {
        seed: config.seed,
        machines: per_machine.len(),
        accuracy,
        stage_times,
        per_machine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_zoo(machines: usize, workers: usize, seed: u64) -> ZooConfig {
        let mut cfg = ZooConfig::new(machines, workers, seed);
        // Keep unit tests fast: size detection only.
        cfg.suite.skip_shared = true;
        cfg
    }

    #[test]
    fn population_is_deterministic_and_valid() {
        let a = generate_population(&ZooConfig::new(12, 1, 7));
        let b = generate_population(&ZooConfig::new(12, 4, 7));
        assert_eq!(a, b, "population must not depend on worker count");
        for m in &a {
            m.spec
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", m.spec.name));
            assert!(m.noise >= 0.001 && m.noise < 0.006);
        }
        let distinct: std::collections::BTreeSet<&str> =
            a.iter().map(|m| m.spec.name.as_str()).collect();
        assert_eq!(distinct.len(), 12, "names must be unique");
    }

    #[test]
    fn different_seeds_give_different_populations() {
        let a = generate_population(&ZooConfig::new(6, 1, 1));
        let b = generate_population(&ZooConfig::new(6, 1, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn mb_members_append_without_shifting_the_standard_prefix() {
        let plain = ZooConfig::new(6, 1, 9);
        let mut with_mb = ZooConfig::new(6, 1, 9);
        with_mb.mb_machines = 2;
        let a = generate_population(&plain);
        let b = generate_population(&with_mb);
        assert_eq!(b.len(), 8);
        assert_eq!(a, b[..6], "standard members must not move");
        for m in &b[6..] {
            assert_eq!(m.base, "mb_smp");
            m.spec
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", m.spec.name));
            assert!(
                m.spec.caches.iter().any(|c| c.size >= 1024 * 1024),
                "{} should keep an MB-range cache after perturbation",
                m.spec.name
            );
            assert_eq!(with_mb.suite_for(m.index).mcalibrator.max_size, 8 << 20);
        }
        assert_eq!(with_mb.suite_for(0).mcalibrator.max_size, 1024 * 1024);
    }

    #[test]
    fn zoo_report_is_worker_count_invariant() {
        let report1 = run_zoo(&tiny_zoo(6, 1, 11), |_| Ok(None)).unwrap();
        let report4 = run_zoo(&tiny_zoo(6, 4, 11), |_| Ok(None)).unwrap();
        assert_eq!(report1, report4);
        assert_eq!(report1.to_json(), report4.to_json());
        assert_eq!(report1.per_machine.len(), 6);
        // Index order regardless of completion order.
        for (i, row) in report1.per_machine.iter().enumerate() {
            assert_eq!(row.index, i);
        }
    }

    #[test]
    fn sink_receives_every_machine_and_errors_abort() {
        struct Counting(std::sync::Arc<AtomicUsize>);
        impl ProfileSink for Counting {
            fn publish(
                &mut self,
                _machine: &ZooMachine,
                report: &SuiteReport,
                manifest: &RunManifest,
            ) -> io::Result<()> {
                assert_eq!(report.profile.machine, manifest.machine);
                self.0.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
        let published = std::sync::Arc::new(AtomicUsize::new(0));
        let report = run_zoo(&tiny_zoo(5, 2, 3), |_| {
            Ok(Some(
                Box::new(Counting(published.clone())) as Box<dyn ProfileSink>
            ))
        })
        .unwrap();
        assert_eq!(published.load(Ordering::Relaxed), 5);
        assert_eq!(report.per_machine.len(), 5);

        struct Failing;
        impl ProfileSink for Failing {
            fn publish(
                &mut self,
                _machine: &ZooMachine,
                _report: &SuiteReport,
                _manifest: &RunManifest,
            ) -> io::Result<()> {
                Err(io::Error::other("sink down"))
            }
        }
        let err = run_zoo(&tiny_zoo(3, 2, 3), |_| {
            Ok(Some(Box::new(Failing) as Box<dyn ProfileSink>))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "sink down");
    }

    #[test]
    fn false_sharing_advice_is_scored_against_the_true_line_size() {
        let report = run_zoo(&tiny_zoo(6, 2, 21), |_| Ok(None)).unwrap();
        assert_eq!(report.accuracy.padding_total, 6);
        assert_eq!(
            report.accuracy.padding_correct,
            6,
            "{:#?}",
            report
                .per_machine
                .iter()
                .map(|r| (&r.name, r.eval.padding))
                .collect::<Vec<_>>()
        );
        assert_eq!(report.accuracy.padding_accuracy(), 1.0);
        assert!(report.stage_times.contains_key("false_sharing"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_zoo(&tiny_zoo(3, 2, 5), |_| Ok(None)).unwrap();
        let back: ZooReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn manifests_hold_only_their_own_runs() {
        // Even with concurrent workers, each run's manifest has exactly
        // one suite root span — the per-run scope keeps runs apart.
        struct SpanCheck;
        impl ProfileSink for SpanCheck {
            fn publish(
                &mut self,
                machine: &ZooMachine,
                _report: &SuiteReport,
                manifest: &RunManifest,
            ) -> io::Result<()> {
                let roots = manifest.spans.iter().filter(|s| s.name == "suite").count();
                assert_eq!(roots, 1, "{}: {roots} suite roots", machine.spec.name);
                Ok(())
            }
        }
        run_zoo(&tiny_zoo(8, 4, 13), |_| {
            Ok(Some(Box::new(SpanCheck) as Box<dyn ProfileSink>))
        })
        .unwrap();
    }
}
