//! Micro-benchmark extensions: cache line size and L1 associativity.
//!
//! The paper's related work (X-Ray, P-Ray — §II) measures these two
//! parameters as well; Servet's published scope stops at sizes, sharing,
//! memory and communication. This module adds the missing probes in
//! Servet's own style — portable timing experiments over the
//! [`Platform`] trait — so a [`crate::profile::MachineProfile`] can carry
//! the full picture a code generator needs (line size for padding and
//! false-sharing avoidance, associativity for conflict-aware layouts).
//!
//! Both probes use *irregular* access patterns
//! ([`Platform::traverse_pattern_cycles`]) because a fixed small stride
//! would be hidden by the hardware prefetcher — the same concern that
//! drives mcalibrator's 1 KB stride choice in §III-A.

use crate::platform::{CoreId, Platform};
use serde::{Deserialize, Serialize};

/// Results of the micro probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroProfile {
    /// Detected cache line size, bytes.
    pub line_size: Option<usize>,
    /// Detected L1 associativity (ways).
    pub l1_associativity: Option<usize>,
    /// Detected data-TLB entry count (grid granularity).
    #[serde(default)]
    pub tlb_entries: Option<usize>,
}

/// Configuration for the micro probes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroConfig {
    /// Candidate line sizes (bytes), ascending powers of two.
    pub line_candidates: Vec<usize>,
    /// Largest associativity probed.
    pub max_associativity: usize,
    /// Number of probe bases for the line-size experiment.
    pub line_probe_bases: usize,
    /// Candidate page counts for the TLB probe, ascending.
    pub tlb_candidates: Vec<usize>,
}

impl Default for MicroConfig {
    fn default() -> Self {
        Self {
            line_candidates: vec![16, 32, 64, 128, 256, 512],
            max_associativity: 32,
            line_probe_bases: 512,
            tlb_candidates: vec![8, 16, 32, 48, 64, 96, 128, 192, 256],
        }
    }
}

/// Detect the cache line size with the pair-probe pattern.
///
/// For each candidate stride `s`, pairs `(base, base + s)` are visited
/// with the bases in a scrambled order. When `s` is smaller than a line
/// the second access of each pair hits the line just fetched; once `s`
/// reaches the line size both accesses miss — the average cost jumps by
/// roughly 2× at exactly the line size.
pub fn detect_line_size(
    platform: &mut dyn Platform,
    core: CoreId,
    config: &MicroConfig,
) -> Option<usize> {
    let bases = config.line_probe_bases;
    let spacing = 1024u64; // bases on distinct, well-separated lines
    let size = (bases as u64 * spacing) as usize + 1024;
    let mut costs = Vec::with_capacity(config.line_candidates.len());
    for &s in &config.line_candidates {
        assert!(
            (s as u64) < spacing,
            "candidate stride must stay below the base spacing"
        );
        let offsets = pair_probe_pattern(bases, spacing, s as u64);
        let cycles = platform.traverse_pattern_cycles(core, size, &offsets);
        costs.push(cycles);
    }
    // The *first* knee above the small-stride plateau is the innermost
    // (L1 / coherence) line size. Outer levels may use longer lines —
    // Itanium's L2/L3 move 128 B — which show up as further knees that
    // must not be confused with it.
    let lo = costs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = costs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if hi < lo * 1.2 {
        return None; // no knee: line size outside the candidate range
    }
    config
        .line_candidates
        .iter()
        .zip(&costs)
        .find(|&(_, &c)| c > lo * 1.2)
        .map(|(&s, _)| s)
}

/// Scrambled pair-probe offsets: for each base (visited in a scrambled
/// order), `[base, base + delta]`.
fn pair_probe_pattern(bases: usize, spacing: u64, delta: u64) -> Vec<u64> {
    let mut offsets = Vec::with_capacity(2 * bases);
    // Visit bases in the order (i * STEP) mod bases with STEP coprime to
    // any power of two, so consecutive pairs are far apart and stride
    // prefetchers never see two equal strides in a row.
    const STEP: usize = 241;
    for i in 0..bases {
        let b = ((i * STEP) % bases) as u64 * spacing;
        offsets.push(b);
        offsets.push(b + delta);
    }
    offsets
}

/// Detect the associativity of the (virtually indexed) L1 cache.
///
/// `k` lines spaced exactly `l1_size` bytes apart map to the same set
/// regardless of the actual way count; accessed cyclically under LRU they
/// all hit while `k ≤ ways` and all miss once `k > ways`. The detected
/// associativity is the largest `k` still served at the L1 hit cost.
pub fn detect_l1_associativity(
    platform: &mut dyn Platform,
    core: CoreId,
    l1_size: usize,
    config: &MicroConfig,
) -> Option<usize> {
    let max_k = config.max_associativity;
    let mut costs = Vec::with_capacity(max_k);
    for k in 1..=max_k {
        let cycle: Vec<u64> = (0..k as u64).map(|i| i * l1_size as u64).collect();
        // Repeat the cycle so the measured pass is long enough to average.
        let reps = 512usize.div_ceil(k).max(2);
        let offsets: Vec<u64> = std::iter::repeat_with(|| cycle.iter().copied())
            .take(reps)
            .flatten()
            .collect();
        let size = k * l1_size + 64;
        costs.push(platform.traverse_pattern_cycles(core, size, &offsets));
    }
    // The L1 ways are exhausted at the *first* clear jump above the
    // single-line cost; later rises (the next level thrashing at large k)
    // must not be confused with it.
    let base = costs[0];
    // position() returns k-1 for the first thrashing k, i.e. the way count.
    costs
        .iter()
        .position(|&c| c > base * 2.0)
        .filter(|&ways| ways >= 1)
}

/// Detect the number of data-TLB entries.
///
/// One access per page over `k` pages, cyclically: while `k` fits the TLB
/// every translation hits; beyond it, LRU thrashes and every access pays
/// the miss penalty. Returns the largest candidate page count that still
/// ran at the base cost — the TLB's capacity at the candidate grid's
/// granularity. `None` when no jump is visible (TLB larger than the
/// largest candidate, or no TLB cost at all).
pub fn detect_tlb_entries(
    platform: &mut dyn Platform,
    core: CoreId,
    config: &MicroConfig,
) -> Option<usize> {
    let page = platform.page_size() as u64;
    // One access per page, but offset by one extra cache line per page so
    // the accessed lines spread across cache sets instead of aliasing
    // into the page-stride sets — the Saavedra & Smith trick that keeps
    // the cache out of the TLB measurement's way.
    let stride = page + 64;
    let mut costs = Vec::with_capacity(config.tlb_candidates.len());
    for &k in &config.tlb_candidates {
        let cycle: Vec<u64> = (0..k as u64).map(|i| i * stride).collect();
        let reps = 1024usize.div_ceil(k).max(2);
        let offsets: Vec<u64> = std::iter::repeat_with(|| cycle.iter().copied())
            .take(reps)
            .flatten()
            .collect();
        let size = k * stride as usize + 64;
        costs.push(platform.traverse_pattern_cycles(core, size, &offsets));
    }
    // First jump above the small-working-set plateau. The baseline drifts
    // as k crosses cache capacities too, so the jump must be sharp
    // (double) to count as the TLB edge.
    let base = costs[0];
    let jump = costs.iter().position(|&c| c > base * 2.0)?;
    if jump == 0 {
        return None; // already thrashing at the smallest candidate
    }
    Some(config.tlb_candidates[jump - 1])
}

/// Run both micro probes. `l1_size` comes from the cache-size benchmark.
pub fn run_micro_probes(
    platform: &mut dyn Platform,
    core: CoreId,
    l1_size: usize,
    config: &MicroConfig,
) -> MicroProfile {
    MicroProfile {
        line_size: detect_line_size(platform, core, config),
        l1_associativity: detect_l1_associativity(platform, core, l1_size, config),
        tlb_entries: detect_tlb_entries(platform, core, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_platform::SimPlatform;
    use servet_sim::KB;

    #[test]
    fn line_size_detected_on_tiny() {
        let mut p = SimPlatform::tiny().with_noise(0.003);
        let line = detect_line_size(&mut p, 0, &MicroConfig::default());
        assert_eq!(line, Some(64));
    }

    #[test]
    fn line_size_detected_on_dunnington() {
        let mut p = SimPlatform::dunnington().with_noise(0.003);
        let line = detect_line_size(&mut p, 0, &MicroConfig::default());
        assert_eq!(line, Some(64));
    }

    #[test]
    fn l1_associativity_detected_on_tiny() {
        // tiny_smp L1: 8 KB 2-way.
        let mut p = SimPlatform::tiny().with_noise(0.003);
        let ways = detect_l1_associativity(&mut p, 0, 8 * KB, &MicroConfig::default());
        assert_eq!(ways, Some(2));
    }

    #[test]
    fn l1_associativity_detected_on_paper_machines() {
        // Dunnington L1: 32 KB 8-way; Finis Terrae L1: 16 KB 4-way.
        let mut dun = SimPlatform::dunnington().with_noise(0.003);
        assert_eq!(
            detect_l1_associativity(&mut dun, 0, 32 * KB, &MicroConfig::default()),
            Some(8)
        );
        let mut ft = SimPlatform::finis_terrae(1).with_noise(0.003);
        assert_eq!(
            detect_l1_associativity(&mut ft, 0, 16 * KB, &MicroConfig::default()),
            Some(4)
        );
    }

    #[test]
    fn combined_probe_struct() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let micro = run_micro_probes(&mut p, 0, 8 * KB, &MicroConfig::default());
        assert_eq!(micro.line_size, Some(64));
        assert_eq!(micro.l1_associativity, Some(2));
        let json = serde_json::to_string(&micro).unwrap();
        let back: MicroProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(micro, back);
    }

    /// Candidates for the tiny machines: their 8 KB L1 holds only 128
    /// distinct lines, so the sweep must stay below that.
    fn tiny_tlb_config() -> MicroConfig {
        MicroConfig {
            tlb_candidates: vec![8, 16, 32, 48, 64, 96],
            ..Default::default()
        }
    }

    #[test]
    fn tlb_entries_detected() {
        let machine = servet_sim::Machine::new(servet_sim::presets::tiny_with_tlb());
        let mut p = SimPlatform::new(machine, None).with_noise(0.003);
        let entries = detect_tlb_entries(&mut p, 0, &tiny_tlb_config());
        assert_eq!(entries, Some(64));
    }

    #[test]
    fn tlb_probe_none_without_tlb() {
        let mut p = SimPlatform::tiny().with_noise(0.003);
        assert_eq!(detect_tlb_entries(&mut p, 0, &tiny_tlb_config()), None);
    }

    #[test]
    fn pair_probe_offsets_are_distinct() {
        let offsets = pair_probe_pattern(512, 1024, 64);
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), offsets.len());
        assert_eq!(offsets.len(), 1024);
    }

    #[test]
    fn line_probe_none_when_flat() {
        // With candidates all below the line size, no knee appears.
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let config = MicroConfig {
            line_candidates: vec![8, 16, 32],
            ..Default::default()
        };
        assert_eq!(detect_line_size(&mut p, 0, &config), None);
    }
}
