//! The per-run measurement manifest: *how* a profile was measured.
//!
//! A [`crate::profile::MachineProfile`] records what Servet concluded; a
//! [`RunManifest`] records how the conclusion was reached — the exact
//! [`SuiteConfig`] used, the per-stage timings (Table I), the observed
//! span tree of the run (wall-clock, from `servet-obs`), and the event
//! counters (samples swept, candidates scored). Tørring et al. and
//! Cooper & Xu both argue that benchmark-derived parameters are only
//! trustworthy when the measurement methodology travels with them; the
//! manifest is that record, written by `servet simulate/probe --out` as a
//! `<profile>.manifest.json` sibling of the profile file.

use crate::profile::write_atomic;
use crate::suite::{SuiteConfig, SuiteReport, SuiteTimings};
use serde::{Deserialize, Serialize};
use servet_sim::CoherenceSpec;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Manifest schema version written by this build.
pub const MANIFEST_VERSION: u32 = 1;

/// One completed measurement span (the serde mirror of
/// `servet_obs::SpanRecord`, so manifests stay readable without the obs
/// crate in scope).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEntry {
    /// Span name, dot-separated (`"suite.cache_size"`).
    pub name: String,
    /// Nesting depth at open time (0 = top level).
    pub depth: usize,
    /// Start, nanoseconds since the run's span epoch.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub duration_ns: u64,
    /// Span payload (e.g. per-stage coherence traffic). Absent in
    /// manifests written before the field existed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub annotation: Option<String>,
}

/// The measurement record of one suite run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Manifest schema version ([`MANIFEST_VERSION`]).
    pub manifest_version: u32,
    /// Machine the profile describes.
    pub machine: String,
    /// `schema_version` of the profile this manifest accompanies.
    pub profile_schema_version: u32,
    /// Per-stage suite timings (platform clock — virtual on simulators).
    pub timings: SuiteTimings,
    /// The full configuration the suite ran with.
    pub config: SuiteConfig,
    /// Wall-clock span tree of the run, in completion order.
    #[serde(default)]
    pub spans: Vec<SpanEntry>,
    /// Event counters at capture time (process-wide totals).
    #[serde(default)]
    pub counters: BTreeMap<String, u64>,
    /// Coherence bus/snoop transaction latencies of the measured
    /// platform, when known — the simulator parameters a zoo run needs
    /// to be reproducible from the manifest alone. Absent for platforms
    /// that cannot report them and in manifests from before the field.
    #[serde(default)]
    pub coherence: Option<CoherenceSpec>,
}

impl RunManifest {
    /// Capture a manifest for `report`: the config plus the current
    /// global span log and counters.
    ///
    /// Spans and counters are process-wide, so a process running several
    /// suites back to back captures the union; the `servet` CLI runs one
    /// suite per process, where the capture is exact.
    pub fn capture(report: &SuiteReport, config: &SuiteConfig) -> Self {
        let spans = servet_obs::spans_snapshot()
            .into_iter()
            .map(|s| SpanEntry {
                name: s.name,
                depth: s.depth,
                start_ns: s.start_ns,
                duration_ns: s.duration_ns,
                annotation: s.annotation,
            })
            .collect();
        Self {
            manifest_version: MANIFEST_VERSION,
            machine: report.profile.machine.clone(),
            profile_schema_version: report.profile.schema_version,
            timings: report.timings,
            config: config.clone(),
            spans,
            counters: servet_obs::metrics::global().counters_snapshot(),
            coherence: None,
        }
    }

    /// Build a manifest from a finished per-run scope
    /// ([`servet_obs::RunScope`]): spans and counters are exactly the
    /// run's own, no matter how many suites the process runs
    /// concurrently. This is what [`crate::suite::run_suite`] returns;
    /// [`Self::capture`] remains for single-run-per-process callers.
    pub fn from_scope(
        report: &SuiteReport,
        config: &SuiteConfig,
        data: servet_obs::ScopeData,
    ) -> Self {
        Self {
            manifest_version: MANIFEST_VERSION,
            machine: report.profile.machine.clone(),
            profile_schema_version: report.profile.schema_version,
            timings: report.timings,
            config: config.clone(),
            spans: data
                .spans
                .into_iter()
                .map(|s| SpanEntry {
                    name: s.name,
                    depth: s.depth,
                    start_ns: s.start_ns,
                    duration_ns: s.duration_ns,
                    annotation: s.annotation,
                })
                .collect(),
            counters: data.counters,
            coherence: None,
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Write the manifest atomically (same guarantee as profile saves).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        write_atomic(path, self.to_json().as_bytes())
    }

    /// Load a manifest previously written by [`Self::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// The manifest path that accompanies a profile path: the profile's
/// extension (if any) is replaced by `manifest.json` —
/// `dun.json` → `dun.manifest.json`, `dun` → `dun.manifest.json`.
pub fn manifest_path(profile_path: impl AsRef<Path>) -> PathBuf {
    let mut path = profile_path.as_ref().to_path_buf();
    path.set_extension("manifest.json");
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_platform::SimPlatform;
    use crate::suite::run_full_suite;

    #[test]
    fn manifest_path_replaces_extension() {
        assert_eq!(
            manifest_path("out/dun.json"),
            PathBuf::from("out/dun.manifest.json")
        );
        assert_eq!(manifest_path("dun"), PathBuf::from("dun.manifest.json"));
    }

    #[test]
    fn capture_records_config_spans_and_counters() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let config = SuiteConfig {
            skip_comm: true,
            ..SuiteConfig::small(128 * 1024)
        };
        let report = run_full_suite(&mut p, &config);
        let manifest = RunManifest::capture(&report, &config);
        assert_eq!(manifest.manifest_version, MANIFEST_VERSION);
        assert_eq!(manifest.machine, report.profile.machine);
        assert_eq!(manifest.config, config);
        // The suite's stage spans must be present (the global log may hold
        // more from concurrently running tests).
        for name in ["suite", "suite.cache_size", "mcalibrator.sweep"] {
            assert!(
                manifest.spans.iter().any(|s| s.name == name),
                "missing span {name}: {:?}",
                manifest.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
            );
        }
        assert!(
            manifest.counters.get("mcalibrator.samples").copied() >= Some(1),
            "{:?}",
            manifest.counters
        );
    }

    #[test]
    fn manifest_round_trips_through_file() {
        let mut p = SimPlatform::tiny().with_noise(0.0);
        let config = SuiteConfig {
            skip_comm: true,
            ..SuiteConfig::small(128 * 1024)
        };
        let report = run_full_suite(&mut p, &config);
        let manifest = RunManifest::capture(&report, &config);
        let dir = std::env::temp_dir().join("servet-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = manifest_path(dir.join("tiny.json"));
        manifest.save(&path).unwrap();
        assert_eq!(RunManifest::load(&path).unwrap(), manifest);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_optional_fields_default() {
        let json = r#"{
            "manifest_version": 1,
            "machine": "m",
            "profile_schema_version": 1,
            "timings": {"cache_size_s": 1.0, "shared_caches_s": 0.0,
                        "memory_overhead_s": 0.0, "communication_s": 0.0},
            "config": null
        }"#;
        // `config: null` is invalid — only spans/counters may be absent.
        assert!(RunManifest::from_json(json).is_err());
    }
}
