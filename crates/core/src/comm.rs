//! Communication cost determination (paper §III-D, Fig. 7).
//!
//! Three stages, as in the paper:
//!
//! 1. **Layer discovery** — the latency of an L1-sized message is measured
//!    for every pair of cores; pairs with similar latencies are grouped
//!    into *communication layers* (the `L` / `Pl` arrays of Fig. 7). The
//!    L1 message size is chosen "because it allows to find differences in
//!    communications when sharing other cache levels".
//! 2. **Point-to-point characterization** — one representative pair per
//!    layer is micro-benchmarked across message sizes; every other pair of
//!    the layer is assumed to perform like its representative.
//! 3. **Scalability** — all cores of a layer send concurrently; comparing
//!    with the isolated latency quantifies the interconnect's degradation
//!    (e.g. the paper's 7× for 32 concurrent InfiniBand messages), which
//!    autotuned codes use to decide whether to gather messages.

use crate::platform::{CoreId, Platform};
use serde::{Deserialize, Serialize};
use servet_stats::cluster::cluster_by_tolerance;

/// Configuration of the communication benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommConfig {
    /// Message size of the layer-discovery probe; the paper uses the L1
    /// cache size.
    pub probe_size: usize,
    /// Relative tolerance when clustering similar latencies.
    pub cluster_tolerance: f64,
    /// Message sizes of the point-to-point sweep.
    pub p2p_sizes: Vec<usize>,
    /// Concurrent message counts probed per layer (capped by the layer's
    /// population).
    pub scalability_counts: Vec<usize>,
    /// Optional cap on the number of cores examined (the paper uses 2 of
    /// Finis Terrae's 142 nodes — "enough to characterize all the
    /// different communication costs").
    pub max_cores: Option<usize>,
}

impl CommConfig {
    /// Default configuration given a detected L1 size.
    pub fn with_l1_size(l1: usize) -> Self {
        Self {
            probe_size: l1,
            cluster_tolerance: 0.15,
            p2p_sizes: (4..=24).map(|e| 1usize << e).collect(), // 16 B .. 16 MB
            scalability_counts: vec![1, 2, 4, 8, 16, 24, 32],
            max_cores: None,
        }
    }

    /// A light configuration for tests.
    pub fn small(l1: usize) -> Self {
        Self {
            probe_size: l1,
            cluster_tolerance: 0.15,
            p2p_sizes: (6..=18).step_by(3).map(|e| 1usize << e).collect(),
            scalability_counts: vec![1, 2, 4, 8],
            max_cores: None,
        }
    }
}

/// One point of a point-to-point sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct P2pPoint {
    /// Message size, bytes.
    pub size: usize,
    /// One-way latency, µs.
    pub latency_us: f64,
    /// Effective bandwidth, GB/s.
    pub bandwidth_gbs: f64,
}

/// One discovered communication layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommLayer {
    /// Representative probe latency, µs — the paper's `L[i]`.
    pub latency_us: f64,
    /// Core pairs in this layer — the paper's `Pl[i]`.
    pub pairs: Vec<(CoreId, CoreId)>,
    /// The pair micro-benchmarked on behalf of the layer.
    pub representative: (CoreId, CoreId),
    /// Point-to-point sweep of the representative pair.
    pub p2p: Vec<P2pPoint>,
    /// `(concurrent messages, mean latency µs, slowdown vs isolated)`.
    pub scalability: Vec<(usize, f64, f64)>,
}

impl CommLayer {
    /// Interpolated one-way latency for an arbitrary message size, from
    /// the p2p sweep (log-linear between sampled sizes, linear
    /// extrapolation at the ends).
    pub fn latency_for_size(&self, size: usize) -> f64 {
        assert!(!self.p2p.is_empty(), "layer has no p2p sweep");
        let pts = &self.p2p;
        if size <= pts[0].size {
            return pts[0].latency_us;
        }
        if let Some(last) = pts.last() {
            if size >= last.size {
                // Extrapolate with the tail's per-byte cost.
                if pts.len() >= 2 {
                    let a = &pts[pts.len() - 2];
                    let per_byte =
                        (last.latency_us - a.latency_us) / (last.size - a.size).max(1) as f64;
                    return last.latency_us + per_byte * (size - last.size) as f64;
                }
                return last.latency_us;
            }
        }
        let hi = pts.iter().position(|p| p.size >= size).expect("covered");
        let (a, b) = (&pts[hi - 1], &pts[hi]);
        let frac = (size - a.size) as f64 / (b.size - a.size) as f64;
        a.latency_us + frac * (b.latency_us - a.latency_us)
    }
}

/// Full result of the communication benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommResult {
    /// Probe message size used for layer discovery, bytes.
    pub probe_size: usize,
    /// `true` when the probe size is the configured default rather than a
    /// detected L1 size — the suite fell back because cache detection
    /// returned no levels. A consumer comparing profiles must not read a
    /// fallback size as a detection result.
    #[serde(default)]
    pub probe_size_fallback: bool,
    /// Latency of every probed pair, for Fig. 10a.
    pub pair_latency: Vec<((CoreId, CoreId), f64)>,
    /// Discovered layers, fastest first.
    pub layers: Vec<CommLayer>,
}

impl CommResult {
    /// Number of layers — the paper's `n`.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Index of the layer containing the pair, if it was probed.
    pub fn layer_of(&self, a: CoreId, b: CoreId) -> Option<usize> {
        let key = (a.min(b), a.max(b));
        self.layers.iter().position(|l| l.pairs.contains(&key))
    }

    /// Estimated one-way latency between two cores for any message size:
    /// the pair's layer performs like its representative (§III-D).
    pub fn predicted_latency_us(&self, a: CoreId, b: CoreId, size: usize) -> Option<f64> {
        self.layer_of(a, b)
            .map(|i| self.layers[i].latency_for_size(size))
    }
}

/// Run the full communication benchmark.
pub fn characterize_communication(platform: &mut dyn Platform, config: &CommConfig) -> CommResult {
    assert!(platform.supports_messaging(), "platform cannot message");
    let total = config
        .max_cores
        .unwrap_or(platform.total_cores())
        .min(platform.total_cores());

    // Stage 1: probe every pair and cluster latencies (Fig. 7).
    let mut pair_latency = Vec::new();
    let mut measurements = Vec::new();
    for a in 0..total {
        for b in a + 1..total {
            let l = platform.message_latency_us(a, b, config.probe_size);
            pair_latency.push(((a, b), l));
            measurements.push((l, (a, b)));
        }
    }
    let mut clusters = cluster_by_tolerance(measurements, config.cluster_tolerance);
    clusters.sort_by(|x, y| x.value.total_cmp(&y.value));

    // Stages 2 and 3 per layer.
    let mut layers = Vec::with_capacity(clusters.len());
    for c in clusters {
        let representative = c.members[0];
        let p2p = config
            .p2p_sizes
            .iter()
            .map(|&size| {
                let latency_us =
                    platform.message_latency_us(representative.0, representative.1, size);
                P2pPoint {
                    size,
                    latency_us,
                    bandwidth_gbs: if latency_us > 0.0 {
                        size as f64 / (latency_us * 1000.0)
                    } else {
                        0.0
                    },
                }
            })
            .collect();
        let messages = layer_messages(&c.members);
        let isolated =
            platform.message_latency_us(representative.0, representative.1, config.probe_size);
        let mut scalability = Vec::new();
        for &n in &config.scalability_counts {
            if n > messages.len() {
                break;
            }
            let lats = platform.concurrent_message_latency_us(&messages[..n], config.probe_size);
            let mean = lats.iter().sum::<f64>() / lats.len() as f64;
            scalability.push((n, mean, mean / isolated));
        }
        layers.push(CommLayer {
            latency_us: c.value,
            pairs: c.members,
            representative,
            p2p,
            scalability,
        });
    }
    CommResult {
        probe_size: config.probe_size,
        probe_size_fallback: false,
        pair_latency,
        layers,
    }
}

/// Build the concurrent-message set of a layer: every core involved in the
/// layer sends one message to a partner it shares the layer with — `N`
/// cores yield `N` concurrent messages, matching the paper's "all the cores
/// in a given layer concurrently sending one message".
fn layer_messages(pairs: &[(CoreId, CoreId)]) -> Vec<(CoreId, CoreId)> {
    let mut cores: Vec<CoreId> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
    cores.sort_unstable();
    cores.dedup();
    let mut messages = Vec::with_capacity(cores.len());
    for &c in &cores {
        if let Some(&(a, b)) = pairs.iter().find(|&&(a, b)| a == c || b == c) {
            let partner = if a == c { b } else { a };
            messages.push((c, partner));
        }
    }
    messages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_platform::SimPlatform;
    use servet_sim::KB;

    fn tiny() -> SimPlatform {
        SimPlatform::tiny_cluster()
    }

    #[test]
    fn tiny_cluster_layers_discovered() {
        // tiny cluster ground truth: SharedCache {0,1}, IntraProcessor
        // {2,3}, IntraNode (cross-socket), InterNode.
        let mut p = tiny();
        let r = characterize_communication(&mut p, &CommConfig::small(8 * KB));
        assert_eq!(
            r.num_layers(),
            4,
            "{:#?}",
            r.layers.iter().map(|l| l.latency_us).collect::<Vec<_>>()
        );
        // Fastest layer holds exactly the shared-cache pairs (0,1), (4,5).
        assert_eq!(r.layers[0].pairs, vec![(0, 1), (4, 5)]);
        // Slowest layer is inter-node, 4×4 = 16 pairs.
        assert_eq!(r.layers.last().unwrap().pairs.len(), 16);
        // Latencies strictly ordered.
        for w in r.layers.windows(2) {
            assert!(w[0].latency_us < w[1].latency_us);
        }
    }

    #[test]
    fn layer_lookup_and_prediction() {
        let mut p = tiny();
        let r = characterize_communication(&mut p, &CommConfig::small(8 * KB));
        assert_eq!(r.layer_of(0, 1), Some(0));
        assert_eq!(r.layer_of(1, 0), Some(0));
        let inter = r.layer_of(0, 4).unwrap();
        assert_eq!(inter, r.num_layers() - 1);
        let small = r.predicted_latency_us(0, 4, 64).unwrap();
        let large = r.predicted_latency_us(0, 4, 256 * KB).unwrap();
        assert!(small < large);
        assert!(r.predicted_latency_us(0, 1, 64).unwrap() < small);
    }

    #[test]
    fn p2p_bandwidth_grows_with_size() {
        let mut p = tiny();
        let r = characterize_communication(&mut p, &CommConfig::small(8 * KB));
        for layer in &r.layers {
            let first = layer.p2p.first().unwrap().bandwidth_gbs;
            let last = layer.p2p.last().unwrap().bandwidth_gbs;
            assert!(last > first, "bandwidth should grow: {first} -> {last}");
        }
    }

    #[test]
    fn scalability_reports_slowdown() {
        let mut p = tiny();
        let r = characterize_communication(&mut p, &CommConfig::small(8 * KB));
        let inter = r.layers.last().unwrap();
        let last = inter.scalability.last().unwrap();
        assert!(last.0 >= 4);
        assert!(last.2 > 1.3, "inter-node slowdown = {}", last.2);
        // Isolated message has slowdown ≈ 1.
        let first = inter.scalability.first().unwrap();
        assert_eq!(first.0, 1);
        assert!((first.2 - 1.0).abs() < 0.15, "{}", first.2);
    }

    #[test]
    fn layer_messages_one_per_core() {
        let msgs = layer_messages(&[(0, 1), (0, 2), (3, 4)]);
        assert_eq!(msgs.len(), 5);
        // Each core appears exactly once as a sender.
        let senders: Vec<usize> = msgs.iter().map(|&(a, _)| a).collect();
        assert_eq!(senders, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn interpolation_brackets() {
        let layer = CommLayer {
            latency_us: 1.0,
            pairs: vec![(0, 1)],
            representative: (0, 1),
            p2p: vec![
                P2pPoint {
                    size: 64,
                    latency_us: 1.0,
                    bandwidth_gbs: 0.064,
                },
                P2pPoint {
                    size: 1024,
                    latency_us: 2.0,
                    bandwidth_gbs: 0.512,
                },
            ],
            scalability: Vec::new(),
        };
        assert_eq!(layer.latency_for_size(16), 1.0);
        assert_eq!(layer.latency_for_size(64), 1.0);
        let mid = layer.latency_for_size(544);
        assert!(mid > 1.0 && mid < 2.0);
        // Extrapolation beyond the last point keeps the tail slope.
        assert!(layer.latency_for_size(2048) > 2.0);
    }

    #[test]
    #[should_panic]
    fn messaging_unsupported_panics() {
        let mut p = SimPlatform::tiny(); // no cluster
        characterize_communication(&mut p, &CommConfig::small(8 * KB));
    }
}
