//! The platform abstraction the benchmarks run against.
//!
//! Every Servet benchmark (Figs. 1, 5, 6, 7 of the paper) is written once
//! against [`Platform`] and runs unchanged on:
//!
//! * [`crate::sim_platform::SimPlatform`] — the simulated machines and
//!   clusters of `servet-sim` / `servet-net` (used by every experiment
//!   reproduction in this repository), and
//! * `servet_host::HostPlatform` — real timed loops on the machine the
//!   program runs on.
//!
//! The trait's operations are exactly the measurement primitives the
//! paper's benchmarks need — a strided traversal timed in cycles, a
//! concurrent traversal, a STREAM-like copy bandwidth, a message latency,
//! and a concurrent-message latency — plus an elapsed-time ledger used to
//! reproduce Table I.

/// A core index. For cache and memory benchmarks, cores `0..num_cores()`
/// of one shared-memory node; for communication benchmarks, global cores
/// `0..total_cores()` across the cluster.
pub type CoreId = usize;

/// One concurrent-traversal job: `(core, array_size_bytes)`.
pub type TraverseJob = (CoreId, usize);

/// The measurement surface of a machine under test.
pub trait Platform {
    /// Machine name, used in reports.
    fn name(&self) -> &str;

    /// Cores of one shared-memory node (cache and memory benchmarks).
    fn num_cores(&self) -> usize;

    /// Cores across the whole cluster (communication benchmarks). Equals
    /// [`Self::num_cores`] for a single node.
    fn total_cores(&self) -> usize {
        self.num_cores()
    }

    /// OS page size in bytes, an input to the probabilistic cache-size
    /// algorithm (Fig. 3).
    fn page_size(&self) -> usize;

    /// Average cycles per access of a strided traversal of a fresh
    /// `size`-byte array on `core` — the measured body of mcalibrator
    /// (Fig. 1).
    fn traverse_cycles(&mut self, core: CoreId, size: usize, stride: usize) -> f64;

    /// Run one traversal per job concurrently; returns average cycles per
    /// access for each job, in order (Fig. 5's concurrent invocation).
    fn traverse_concurrent_cycles(&mut self, jobs: &[TraverseJob], stride: usize) -> Vec<f64>;

    /// STREAM-like copy bandwidth in GB/s of each core in `active` while
    /// all of them stream concurrently (Fig. 6's measurement).
    fn copy_bandwidth_gbs(&mut self, active: &[CoreId]) -> Vec<f64>;

    /// Average cycles per access of an *arbitrary* access pattern over a
    /// fresh `size`-byte array: `offsets` are byte offsets visited in
    /// order (one warm-up pass, then measured passes).
    ///
    /// The paper's benchmarks only need fixed strides; the micro-benchmark
    /// extensions ([`crate::micro`]) use irregular patterns to defeat the
    /// prefetcher when probing line size and associativity.
    fn traverse_pattern_cycles(&mut self, core: CoreId, size: usize, offsets: &[u64]) -> f64;

    /// Whether message-passing benchmarks are available (false on a
    /// unicore machine such as the Athlon).
    fn supports_messaging(&self) -> bool {
        self.total_cores() > 1
    }

    /// Mean one-way latency in µs of a `size`-byte message between global
    /// cores `a` and `b` (Fig. 7's measurement).
    fn message_latency_us(&mut self, a: CoreId, b: CoreId, size: usize) -> f64;

    /// Latencies when every pair sends a `size`-byte message concurrently
    /// (the scalability probe of §III-D).
    fn concurrent_message_latency_us(
        &mut self,
        pairs: &[(CoreId, CoreId)],
        size: usize,
    ) -> Vec<f64>;

    /// Wall-clock (or virtual) seconds consumed by all measurements so far.
    /// The suite reads deltas of this to reproduce Table I.
    fn elapsed_seconds(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially fake platform exercising the trait's defaults.
    struct Fake {
        cores: usize,
    }

    impl Platform for Fake {
        fn name(&self) -> &str {
            "fake"
        }
        fn num_cores(&self) -> usize {
            self.cores
        }
        fn page_size(&self) -> usize {
            4096
        }
        fn traverse_cycles(&mut self, _c: CoreId, _s: usize, _st: usize) -> f64 {
            1.0
        }
        fn traverse_concurrent_cycles(&mut self, jobs: &[TraverseJob], _st: usize) -> Vec<f64> {
            vec![1.0; jobs.len()]
        }
        fn copy_bandwidth_gbs(&mut self, active: &[CoreId]) -> Vec<f64> {
            vec![1.0; active.len()]
        }
        fn traverse_pattern_cycles(&mut self, _c: CoreId, _s: usize, _o: &[u64]) -> f64 {
            1.0
        }
        fn message_latency_us(&mut self, _a: CoreId, _b: CoreId, _s: usize) -> f64 {
            1.0
        }
        fn concurrent_message_latency_us(
            &mut self,
            pairs: &[(CoreId, CoreId)],
            _s: usize,
        ) -> Vec<f64> {
            vec![1.0; pairs.len()]
        }
        fn elapsed_seconds(&self) -> f64 {
            0.0
        }
    }

    #[test]
    fn default_total_cores_equals_num_cores() {
        let f = Fake { cores: 4 };
        assert_eq!(f.total_cores(), 4);
    }

    #[test]
    fn default_messaging_support() {
        assert!(Fake { cores: 2 }.supports_messaging());
        assert!(!Fake { cores: 1 }.supports_messaging());
    }
}
