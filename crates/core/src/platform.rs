//! The platform abstraction the benchmarks run against.
//!
//! Every Servet benchmark (Figs. 1, 5, 6, 7 of the paper) is written once
//! against [`Platform`] and runs unchanged on:
//!
//! * [`crate::sim_platform::SimPlatform`] — the simulated machines and
//!   clusters of `servet-sim` / `servet-net` (used by every experiment
//!   reproduction in this repository), and
//! * `servet_host::HostPlatform` — real timed loops on the machine the
//!   program runs on.
//!
//! The trait's operations are exactly the measurement primitives the
//! paper's benchmarks need — a strided traversal timed in cycles, a
//! concurrent traversal, a STREAM-like copy bandwidth, a message latency,
//! and a concurrent-message latency — plus an elapsed-time ledger used to
//! reproduce Table I.

use servet_sim::{CoherenceSpec, CoherenceTraffic};

/// A core index. For cache and memory benchmarks, cores `0..num_cores()`
/// of one shared-memory node; for communication benchmarks, global cores
/// `0..total_cores()` across the cluster.
pub type CoreId = usize;

/// One concurrent-traversal job: `(core, array_size_bytes)`.
pub type TraverseJob = (CoreId, usize);

/// One access stream of a shared-buffer coherence probe: `count`
/// accesses per pass over one buffer shared by every stream of the
/// probe, starting at byte `offset`, `stride` bytes apart.
///
/// This is the primitive under the false-sharing sweep (two cores
/// writing a sub-line distance apart) and the cache-mediated
/// communication model (§III-D): producer writes, consumer reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedStreamJob {
    /// Core executing the stream.
    pub core: CoreId,
    /// Byte offset of the stream's first access within the buffer.
    pub offset: usize,
    /// Stride in bytes between accesses.
    pub stride: usize,
    /// Accesses per pass.
    pub count: usize,
    /// Whether the accesses are stores.
    pub write: bool,
}

/// The measurement surface of a machine under test.
pub trait Platform {
    /// Machine name, used in reports.
    fn name(&self) -> &str;

    /// Cores of one shared-memory node (cache and memory benchmarks).
    fn num_cores(&self) -> usize;

    /// Cores across the whole cluster (communication benchmarks). Equals
    /// [`Self::num_cores`] for a single node.
    fn total_cores(&self) -> usize {
        self.num_cores()
    }

    /// OS page size in bytes, an input to the probabilistic cache-size
    /// algorithm (Fig. 3).
    fn page_size(&self) -> usize;

    /// Average cycles per access of a strided traversal of a fresh
    /// `size`-byte array on `core` — the measured body of mcalibrator
    /// (Fig. 1).
    fn traverse_cycles(&mut self, core: CoreId, size: usize, stride: usize) -> f64;

    /// Run one traversal per job concurrently; returns average cycles per
    /// access for each job, in order (Fig. 5's concurrent invocation).
    fn traverse_concurrent_cycles(&mut self, jobs: &[TraverseJob], stride: usize) -> Vec<f64>;

    /// STREAM-like copy bandwidth in GB/s of each core in `active` while
    /// all of them stream concurrently (Fig. 6's measurement).
    fn copy_bandwidth_gbs(&mut self, active: &[CoreId]) -> Vec<f64>;

    /// Average cycles per access of an *arbitrary* access pattern over a
    /// fresh `size`-byte array: `offsets` are byte offsets visited in
    /// order (one warm-up pass, then measured passes).
    ///
    /// The paper's benchmarks only need fixed strides; the micro-benchmark
    /// extensions ([`crate::micro`]) use irregular patterns to defeat the
    /// prefetcher when probing line size and associativity.
    fn traverse_pattern_cycles(&mut self, core: CoreId, size: usize, offsets: &[u64]) -> f64;

    /// Whether message-passing benchmarks are available (false on a
    /// unicore machine such as the Athlon).
    fn supports_messaging(&self) -> bool {
        self.total_cores() > 1
    }

    /// Mean one-way latency in µs of a `size`-byte message between global
    /// cores `a` and `b` (Fig. 7's measurement).
    fn message_latency_us(&mut self, a: CoreId, b: CoreId, size: usize) -> f64;

    /// Latencies when every pair sends a `size`-byte message concurrently
    /// (the scalability probe of §III-D).
    fn concurrent_message_latency_us(
        &mut self,
        pairs: &[(CoreId, CoreId)],
        size: usize,
    ) -> Vec<f64>;

    /// Whether shared-buffer coherence probes ([`Self::shared_stream_cycles`])
    /// are available. False by default: only platforms that can run
    /// read/write streams over one shared buffer — and tell the cost
    /// apart from noise — should opt in.
    fn supports_coherence_probes(&self) -> bool {
        false
    }

    /// Average cycles per access for each stream of a shared-buffer
    /// probe over a fresh `buffer_bytes` buffer (one warm-up pass, then
    /// measured passes), in job order.
    ///
    /// Only meaningful when [`Self::supports_coherence_probes`] is true;
    /// the default implementation panics so that unsupported platforms
    /// fail loudly rather than return fabricated numbers.
    fn shared_stream_cycles(&mut self, buffer_bytes: usize, jobs: &[SharedStreamJob]) -> Vec<f64> {
        let _ = (buffer_bytes, jobs);
        panic!(
            "platform {:?} does not support coherence probes (gate on supports_coherence_probes)",
            self.name()
        );
    }

    /// Coherence traffic accumulated by shared-buffer probes since the
    /// last call, when the platform can observe it (hardware platforms
    /// usually cannot; the simulator can).
    fn take_coherence_traffic(&mut self) -> Option<CoherenceTraffic> {
        None
    }

    /// Running total of coherence traffic observed over the platform's
    /// whole lifetime, *without* draining anything — monotone even
    /// across [`Self::take_coherence_traffic`] calls, so callers can
    /// snapshot it around a suite stage and diff
    /// ([`CoherenceTraffic::since`]) to attribute traffic to the stage.
    /// `None` when the platform cannot observe coherence traffic.
    fn coherence_traffic_total(&self) -> Option<CoherenceTraffic> {
        None
    }

    /// The machine's coherence transaction latencies, when known. Run
    /// manifests record these so a zoo run is reproducible from the
    /// manifest alone.
    fn coherence_params(&self) -> Option<CoherenceSpec> {
        None
    }

    /// Wall-clock (or virtual) seconds consumed by all measurements so far.
    /// The suite reads deltas of this to reproduce Table I.
    fn elapsed_seconds(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially fake platform exercising the trait's defaults.
    struct Fake {
        cores: usize,
    }

    impl Platform for Fake {
        fn name(&self) -> &str {
            "fake"
        }
        fn num_cores(&self) -> usize {
            self.cores
        }
        fn page_size(&self) -> usize {
            4096
        }
        fn traverse_cycles(&mut self, _c: CoreId, _s: usize, _st: usize) -> f64 {
            1.0
        }
        fn traverse_concurrent_cycles(&mut self, jobs: &[TraverseJob], _st: usize) -> Vec<f64> {
            vec![1.0; jobs.len()]
        }
        fn copy_bandwidth_gbs(&mut self, active: &[CoreId]) -> Vec<f64> {
            vec![1.0; active.len()]
        }
        fn traverse_pattern_cycles(&mut self, _c: CoreId, _s: usize, _o: &[u64]) -> f64 {
            1.0
        }
        fn message_latency_us(&mut self, _a: CoreId, _b: CoreId, _s: usize) -> f64 {
            1.0
        }
        fn concurrent_message_latency_us(
            &mut self,
            pairs: &[(CoreId, CoreId)],
            _s: usize,
        ) -> Vec<f64> {
            vec![1.0; pairs.len()]
        }
        fn elapsed_seconds(&self) -> f64 {
            0.0
        }
    }

    #[test]
    fn default_total_cores_equals_num_cores() {
        let f = Fake { cores: 4 };
        assert_eq!(f.total_cores(), 4);
    }

    #[test]
    fn default_messaging_support() {
        assert!(Fake { cores: 2 }.supports_messaging());
        assert!(!Fake { cores: 1 }.supports_messaging());
    }

    #[test]
    fn coherence_probes_default_to_unsupported() {
        let mut f = Fake { cores: 4 };
        assert!(!f.supports_coherence_probes());
        assert!(f.take_coherence_traffic().is_none());
        assert!(f.coherence_params().is_none());
    }

    #[test]
    #[should_panic(expected = "does not support coherence probes")]
    fn default_shared_stream_panics() {
        let mut f = Fake { cores: 4 };
        f.shared_stream_cycles(
            1024,
            &[SharedStreamJob {
                core: 0,
                offset: 0,
                stride: 64,
                count: 4,
                write: true,
            }],
        );
    }
}
