//! The machine profile: everything Servet learned, in one serializable
//! value.
//!
//! §IV-E of the paper: the benchmarks "must be run only once at
//! installation time … The information obtained can be stored in a file to
//! be consulted by the applications to guide optimizations when needed."
//! [`MachineProfile`] is that file's schema; `servet-autotune` consumes it.

use crate::cache_detect::CacheLevelEstimate;
use crate::comm::CommResult;
use crate::false_sharing::FalseSharingResult;
use crate::mcalibrator::McalibratorOutput;
use crate::mem_overhead::MemOverheadResult;
use crate::micro::MicroProfile;
use crate::platform::CoreId;
use crate::shared_cache::SharedCacheResult;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The profile schema version written by this build. Older files (which
/// predate the field and deserialize as `0`) still load; files written by
/// a *newer* Servet are rejected with a clear error instead of being
/// silently misread.
pub const SCHEMA_VERSION: u32 = 1;

/// Write `contents` to `path` atomically: the bytes land in a unique
/// sibling temporary file first and are `rename`d into place, so a crash
/// mid-write can never leave a torn file behind. The registry store and
/// [`MachineProfile::save`] share this helper.
pub fn write_atomic(path: impl AsRef<Path>, contents: &[u8]) -> io::Result<()> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let path = path.as_ref();
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(format!(".{}.{seq}.tmp", std::process::id()));
    let tmp = PathBuf::from(tmp_name);
    fs::write(&tmp, contents)?;
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

/// The complete output of one Servet run on one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineProfile {
    /// Profile schema version; absent in pre-versioning files (reads as 0).
    #[serde(default)]
    pub schema_version: u32,
    /// Machine name.
    pub machine: String,
    /// Cores per shared-memory node.
    pub cores_per_node: usize,
    /// Total cores measured by the communication benchmark.
    pub total_cores: usize,
    /// Page size used by the probabilistic algorithm, bytes.
    pub page_size: usize,
    /// Raw mcalibrator sweep (kept for plots and re-analysis).
    pub mcalibrator: Option<McalibratorOutput>,
    /// Detected cache levels, innermost first.
    pub cache_levels: Vec<CacheLevelEstimate>,
    /// Shared-cache topology per level.
    pub shared_caches: Option<SharedCacheResult>,
    /// Memory overhead characterization.
    pub memory: Option<MemOverheadResult>,
    /// Communication characterization (absent on unicore machines).
    pub communication: Option<CommResult>,
    /// Micro-probe extensions: line size and L1 associativity.
    #[serde(default)]
    pub micro: Option<MicroProfile>,
    /// False-sharing sweep and cache-mediated communication model
    /// (absent on unicore machines and platforms without coherence
    /// probes).
    #[serde(default)]
    pub false_sharing: Option<FalseSharingResult>,
}

impl MachineProfile {
    /// Detected size of cache level `level` (1-based), bytes.
    pub fn cache_size(&self, level: u8) -> Option<usize> {
        self.cache_levels
            .iter()
            .find(|c| c.level == level)
            .map(|c| c.size)
    }

    /// Number of detected cache levels.
    pub fn num_cache_levels(&self) -> usize {
        self.cache_levels.len()
    }

    /// Cores that share cache level `level` with `core` (excluding
    /// itself), as measured by the Fig. 5 benchmark.
    pub fn cores_sharing_cache(&self, level: u8, core: CoreId) -> Vec<CoreId> {
        self.shared_caches
            .as_ref()
            .map(|s| s.cores_sharing_with(level, core))
            .unwrap_or_default()
    }

    /// Estimated one-way message latency between two cores, µs.
    pub fn latency_us(&self, a: CoreId, b: CoreId, size: usize) -> Option<f64> {
        self.communication
            .as_ref()
            .and_then(|c| c.predicted_latency_us(a, b, size))
    }

    /// Expected per-core memory bandwidth when `cores` stream
    /// concurrently, GB/s.
    pub fn memory_bandwidth_gbs(&self, cores: &[CoreId]) -> Option<f64> {
        self.memory.as_ref().map(|m| m.predicted_bandwidth(cores))
    }

    /// Isolated-core memory bandwidth, GB/s.
    pub fn reference_bandwidth_gbs(&self) -> Option<f64> {
        self.memory.as_ref().map(|m| m.reference_gbs)
    }

    /// Detected cache line size, bytes (micro probe).
    pub fn line_size(&self) -> Option<usize> {
        self.micro.and_then(|m| m.line_size)
    }

    /// Detected L1 associativity (micro probe).
    pub fn l1_associativity(&self) -> Option<usize> {
        self.micro.and_then(|m| m.l1_associativity)
    }

    /// Padding (bytes) to insert between per-thread data so concurrent
    /// writers never false-share a line, as measured by the
    /// false-sharing sweep.
    pub fn advised_padding(&self) -> Option<usize> {
        self.false_sharing.as_ref().and_then(|f| f.advised_padding)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile serializes")
    }

    /// Parse from JSON. Files written by a newer Servet (a
    /// `schema_version` above [`SCHEMA_VERSION`]) are rejected; files from
    /// before the field existed load with version 0.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let profile: Self = serde_json::from_str(json)?;
        if profile.schema_version > SCHEMA_VERSION {
            use serde::de::Error as _;
            return Err(serde_json::Error::custom(format!(
                "profile schema_version {} is newer than the supported version {}; \
                 upgrade servet to read this file",
                profile.schema_version, SCHEMA_VERSION
            )));
        }
        Ok(profile)
    }

    /// Write the profile to a file (the paper's installation-time output).
    /// The write is atomic ([`write_atomic`]): a crash mid-save cannot
    /// leave a torn profile on disk.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        write_atomic(path, self.to_json().as_bytes())
    }

    /// Load a profile previously written by [`Self::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_detect::DetectionMethod;

    fn minimal_profile() -> MachineProfile {
        MachineProfile {
            schema_version: SCHEMA_VERSION,
            machine: "test".into(),
            cores_per_node: 4,
            total_cores: 4,
            page_size: 4096,
            mcalibrator: None,
            cache_levels: vec![
                CacheLevelEstimate {
                    level: 1,
                    size: 8 * 1024,
                    method: DetectionMethod::GradientPeak,
                },
                CacheLevelEstimate {
                    level: 2,
                    size: 64 * 1024,
                    method: DetectionMethod::Probabilistic,
                },
            ],
            shared_caches: None,
            memory: None,
            communication: None,
            micro: None,
            false_sharing: None,
        }
    }

    #[test]
    fn cache_queries() {
        let p = minimal_profile();
        assert_eq!(p.cache_size(1), Some(8 * 1024));
        assert_eq!(p.cache_size(2), Some(64 * 1024));
        assert_eq!(p.cache_size(3), None);
        assert_eq!(p.num_cache_levels(), 2);
    }

    #[test]
    fn absent_sections_answer_none() {
        let p = minimal_profile();
        assert!(p.cores_sharing_cache(2, 0).is_empty());
        assert_eq!(p.latency_us(0, 1, 64), None);
        assert_eq!(p.memory_bandwidth_gbs(&[0, 1]), None);
        assert_eq!(p.reference_bandwidth_gbs(), None);
        assert_eq!(p.advised_padding(), None);
    }

    #[test]
    fn json_round_trip() {
        let p = minimal_profile();
        let json = p.to_json();
        let back = MachineProfile::from_json(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn file_round_trip() {
        let p = minimal_profile();
        let dir = std::env::temp_dir().join("servet-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        p.save(&path).unwrap();
        let back = MachineProfile::load(&path).unwrap();
        assert_eq!(p, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_errors() {
        assert!(MachineProfile::from_json("{not json").is_err());
        assert!(MachineProfile::load("/nonexistent/servet.json").is_err());
    }

    #[test]
    fn missing_schema_version_defaults_to_zero() {
        // A pre-versioning file has no schema_version field at all.
        let mut p = minimal_profile();
        p.schema_version = SCHEMA_VERSION;
        let json = p
            .to_json()
            .replace(&format!("\"schema_version\": {SCHEMA_VERSION},"), "");
        assert!(!json.contains("schema_version"));
        let back = MachineProfile::from_json(&json).unwrap();
        assert_eq!(back.schema_version, 0);
        assert_eq!(back.machine, p.machine);
    }

    #[test]
    fn newer_schema_version_is_rejected() {
        let mut p = minimal_profile();
        p.schema_version = SCHEMA_VERSION + 7;
        let err = MachineProfile::from_json(&p.to_json()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("newer"), "unhelpful error: {msg}");
        assert!(
            msg.contains(&(SCHEMA_VERSION + 7).to_string()),
            "error should name the offending version: {msg}"
        );
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_files() {
        let p = minimal_profile();
        let dir = std::env::temp_dir().join("servet-profile-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        // Overwrite an existing (corrupt) file: the reader must never see
        // a torn state, and no *.tmp residue may remain.
        std::fs::write(&path, "{torn").unwrap();
        p.save(&path).unwrap();
        assert_eq!(MachineProfile::load(&path).unwrap(), p);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp residue: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_atomic_concurrent_writers_never_tear() {
        let dir = std::env::temp_dir().join("servet-write-atomic-race");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("contended.json");
        let payload_a = "a".repeat(64 * 1024);
        let payload_b = "b".repeat(64 * 1024);
        std::thread::scope(|s| {
            for payload in [&payload_a, &payload_b] {
                s.spawn(|| {
                    for _ in 0..50 {
                        write_atomic(&path, payload.as_bytes()).unwrap();
                    }
                });
            }
        });
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(
            content == payload_a || content == payload_b,
            "torn read of {} bytes",
            content.len()
        );
        std::fs::remove_file(&path).ok();
    }
}
