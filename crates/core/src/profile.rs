//! The machine profile: everything Servet learned, in one serializable
//! value.
//!
//! §IV-E of the paper: the benchmarks "must be run only once at
//! installation time … The information obtained can be stored in a file to
//! be consulted by the applications to guide optimizations when needed."
//! [`MachineProfile`] is that file's schema; `servet-autotune` consumes it.

use crate::cache_detect::CacheLevelEstimate;
use crate::comm::CommResult;
use crate::mcalibrator::McalibratorOutput;
use crate::mem_overhead::MemOverheadResult;
use crate::micro::MicroProfile;
use crate::platform::CoreId;
use crate::shared_cache::SharedCacheResult;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// The complete output of one Servet run on one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineProfile {
    /// Machine name.
    pub machine: String,
    /// Cores per shared-memory node.
    pub cores_per_node: usize,
    /// Total cores measured by the communication benchmark.
    pub total_cores: usize,
    /// Page size used by the probabilistic algorithm, bytes.
    pub page_size: usize,
    /// Raw mcalibrator sweep (kept for plots and re-analysis).
    pub mcalibrator: Option<McalibratorOutput>,
    /// Detected cache levels, innermost first.
    pub cache_levels: Vec<CacheLevelEstimate>,
    /// Shared-cache topology per level.
    pub shared_caches: Option<SharedCacheResult>,
    /// Memory overhead characterization.
    pub memory: Option<MemOverheadResult>,
    /// Communication characterization (absent on unicore machines).
    pub communication: Option<CommResult>,
    /// Micro-probe extensions: line size and L1 associativity.
    #[serde(default)]
    pub micro: Option<MicroProfile>,
}

impl MachineProfile {
    /// Detected size of cache level `level` (1-based), bytes.
    pub fn cache_size(&self, level: u8) -> Option<usize> {
        self.cache_levels
            .iter()
            .find(|c| c.level == level)
            .map(|c| c.size)
    }

    /// Number of detected cache levels.
    pub fn num_cache_levels(&self) -> usize {
        self.cache_levels.len()
    }

    /// Cores that share cache level `level` with `core` (excluding
    /// itself), as measured by the Fig. 5 benchmark.
    pub fn cores_sharing_cache(&self, level: u8, core: CoreId) -> Vec<CoreId> {
        self.shared_caches
            .as_ref()
            .map(|s| s.cores_sharing_with(level, core))
            .unwrap_or_default()
    }

    /// Estimated one-way message latency between two cores, µs.
    pub fn latency_us(&self, a: CoreId, b: CoreId, size: usize) -> Option<f64> {
        self.communication
            .as_ref()
            .and_then(|c| c.predicted_latency_us(a, b, size))
    }

    /// Expected per-core memory bandwidth when `cores` stream
    /// concurrently, GB/s.
    pub fn memory_bandwidth_gbs(&self, cores: &[CoreId]) -> Option<f64> {
        self.memory.as_ref().map(|m| m.predicted_bandwidth(cores))
    }

    /// Isolated-core memory bandwidth, GB/s.
    pub fn reference_bandwidth_gbs(&self) -> Option<f64> {
        self.memory.as_ref().map(|m| m.reference_gbs)
    }

    /// Detected cache line size, bytes (micro probe).
    pub fn line_size(&self) -> Option<usize> {
        self.micro.and_then(|m| m.line_size)
    }

    /// Detected L1 associativity (micro probe).
    pub fn l1_associativity(&self) -> Option<usize> {
        self.micro.and_then(|m| m.l1_associativity)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile serializes")
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Write the profile to a file (the paper's installation-time output).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Load a profile previously written by [`Self::save`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache_detect::DetectionMethod;

    fn minimal_profile() -> MachineProfile {
        MachineProfile {
            machine: "test".into(),
            cores_per_node: 4,
            total_cores: 4,
            page_size: 4096,
            mcalibrator: None,
            cache_levels: vec![
                CacheLevelEstimate {
                    level: 1,
                    size: 8 * 1024,
                    method: DetectionMethod::GradientPeak,
                },
                CacheLevelEstimate {
                    level: 2,
                    size: 64 * 1024,
                    method: DetectionMethod::Probabilistic,
                },
            ],
            shared_caches: None,
            memory: None,
            communication: None,
            micro: None,
        }
    }

    #[test]
    fn cache_queries() {
        let p = minimal_profile();
        assert_eq!(p.cache_size(1), Some(8 * 1024));
        assert_eq!(p.cache_size(2), Some(64 * 1024));
        assert_eq!(p.cache_size(3), None);
        assert_eq!(p.num_cache_levels(), 2);
    }

    #[test]
    fn absent_sections_answer_none() {
        let p = minimal_profile();
        assert!(p.cores_sharing_cache(2, 0).is_empty());
        assert_eq!(p.latency_us(0, 1, 64), None);
        assert_eq!(p.memory_bandwidth_gbs(&[0, 1]), None);
        assert_eq!(p.reference_bandwidth_gbs(), None);
    }

    #[test]
    fn json_round_trip() {
        let p = minimal_profile();
        let json = p.to_json();
        let back = MachineProfile::from_json(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn file_round_trip() {
        let p = minimal_profile();
        let dir = std::env::temp_dir().join("servet-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.json");
        p.save(&path).unwrap();
        let back = MachineProfile::load(&path).unwrap();
        assert_eq!(p, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_errors() {
        assert!(MachineProfile::from_json("{not json").is_err());
        assert!(MachineProfile::load("/nonexistent/servet.json").is_err());
    }
}
