//! # servet-core
//!
//! The Servet benchmark suite (González-Domínguez et al., *Servet: A
//! Benchmark Suite for Autotuning on Multicore Clusters*, IPDPS 2010),
//! reproduced in Rust.
//!
//! Servet measures — rather than reads from vendor specifications — the
//! hardware parameters that matter to autotuned parallel codes on multicore
//! clusters:
//!
//! 1. **cache sizes** of every level ([`mcalibrator()`](mcalibrator::mcalibrator) + [`cache_detect`],
//!    paper Figs. 1–4), portable across page-coloring and
//!    randomly-allocating OSes thanks to the probabilistic algorithm;
//! 2. **which cores share which caches** ([`shared_cache`], Fig. 5);
//! 3. **memory-access bottlenecks and their magnitudes** ([`mem_overhead`],
//!    Fig. 6), including the scalability of concurrent accesses;
//! 4. **communication layers, per-layer point-to-point performance and
//!    interconnect scalability** ([`comm`], Fig. 7).
//!
//! All benchmarks are written against the [`platform::Platform`] trait;
//! [`sim_platform::SimPlatform`] runs them on the simulated machines of
//! `servet-sim`/`servet-net`, and `servet-host` runs them on real hardware.
//! [`suite::run_full_suite`] executes everything and produces a
//! [`profile::MachineProfile`] that can be stored "in a file to be consulted
//! by the applications" (§IV-E), which the `servet-autotune` crate consumes.
//! Each run can also emit a [`manifest::RunManifest`] — the measurement
//! methodology (config, span tree, counters) that produced the profile.
//!
//! The hot paths are instrumented with `servet-obs` spans and counters;
//! `servet --trace` renders the resulting span tree.

#![warn(missing_docs)]

pub mod cache_detect;
pub mod comm;
pub mod false_sharing;
pub mod manifest;
pub mod mcalibrator;
pub mod mem_overhead;
pub mod micro;
pub mod platform;
pub mod profile;
pub mod shared_cache;
pub mod sim_platform;
pub mod suite;
pub mod zoo;

pub use cache_detect::{detect_cache_levels, CacheLevelEstimate, DetectConfig, DetectionMethod};
pub use comm::{characterize_communication, CommConfig, CommResult};
pub use false_sharing::{
    detect_false_sharing, CacheCommModel, FalseSharingConfig, FalseSharingResult, StridePoint,
};
pub use manifest::{manifest_path, RunManifest, SpanEntry, MANIFEST_VERSION};
pub use mcalibrator::{mcalibrator, McalibratorConfig, McalibratorOutput};
pub use mem_overhead::{characterize_memory, MemOverheadConfig, MemOverheadResult};
pub use micro::{run_micro_probes, MicroConfig, MicroProfile};
pub use platform::{CoreId, Platform};
pub use profile::{write_atomic, MachineProfile, SCHEMA_VERSION};
pub use shared_cache::{detect_shared_caches, SharedCacheConfig, SharedCacheResult};
pub use sim_platform::SimPlatform;
pub use suite::{run_full_suite, run_suite, SuiteConfig, SuiteReport};
pub use zoo::{generate_population, run_zoo, ProfileSink, ZooConfig, ZooMachine, ZooReport};
